//! Failure injection: the framework's recovery machinery under
//! transient bit flips the offline characterization never saw.

use approxit::prelude::*;
use iter_solvers::datasets::gaussian_blobs;
use iter_solvers::metrics::hamming_distance;
use iter_solvers::GaussianMixture;

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

fn workload() -> (iter_solvers::datasets::ClusterDataset, GaussianMixture) {
    let data = gaussian_blobs(
        "fault",
        &[60, 60, 60],
        &[vec![0.0, 0.0], vec![4.8, 0.8], vec![1.8, 4.4]],
        &[1.0, 1.0, 1.0],
        55,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 500, 5);
    (data, gmm)
}

#[test]
fn low_rate_soft_errors_do_not_break_the_guarantee() {
    let (_, gmm) = workload();
    let table = characterize(&gmm, &profile(), 4);

    // Clean truth reference.
    let mut clean_ctx = QcsContext::with_profile(profile());
    let truth = RunConfig::new(&gmm, &mut clean_ctx).execute(&mut SingleMode::accurate());
    assert!(truth.report.converged);
    let truth_labels = gmm.assignments(&truth.state);

    // Reconfigured run on a datapath with occasional low-bit upsets.
    let mut faulty = FaultInjector::new(
        QcsContext::with_profile(profile()),
        0.001, // one upset per ~1000 adds
        8,     // in the low 8 bits (sub-resolution noise)
        1234,
    );
    let mut strategy = IncrementalStrategy::from_characterization(&table);
    let outcome = RunConfig::new(&gmm, &mut faulty).execute(&mut strategy);
    assert!(faulty.faults_injected() > 0, "no faults were injected");
    assert!(outcome.report.converged, "faulty run did not converge");
    let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
    assert_eq!(qem, 0, "soft errors broke the quality guarantee");
}

#[test]
fn heavy_faults_trigger_recovery_machinery() {
    let (_, gmm) = workload();
    let table = characterize(&gmm, &profile(), 4);
    let mut clean_ctx = QcsContext::with_profile(profile());
    let truth = RunConfig::new(&gmm, &mut clean_ctx).execute(&mut SingleMode::accurate());
    let truth_labels = gmm.assignments(&truth.state);

    // Aggressive upsets in meaningful bit positions (up to bit 20 of
    // Q15.16, i.e. value flips up to ±16).
    let mut faulty = FaultInjector::new(QcsContext::with_profile(profile()), 0.0005, 20, 99);
    let mut strategy = IncrementalStrategy::from_characterization(&table);
    let outcome = RunConfig::new(&gmm, &mut faulty).execute(&mut strategy);
    assert!(faulty.faults_injected() > 0);
    // The run must end in a truth-quality state or at worst have kept
    // iterating to the budget — but never silently accept a corrupted
    // result: if it reports convergence, quality must hold.
    if outcome.report.converged {
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
        assert_eq!(
            qem, 0,
            "a converged run under faults must still match Truth"
        );
    }
}

#[test]
fn identical_seeds_reproduce_identical_fault_and_level_schedules() {
    let (_, gmm) = workload();
    let table = characterize(&gmm, &profile(), 4);
    let run_once = |seed: u64| {
        let mut faulty = FaultInjector::new(QcsContext::with_profile(profile()), 0.002, 16, seed);
        let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
        let outcome = RunConfig::new(&gmm, &mut faulty)
            .with_watchdog(WatchdogConfig::resilient())
            .execute(&mut strategy);
        (
            faulty.faults_injected(),
            outcome.report.level_schedule.clone(),
            outcome.report.iterations,
            outcome.report.rollbacks,
            outcome.report.final_objective.to_bits(),
        )
    };
    // The whole pipeline is a pure function of the seed: the fault
    // stream, the level schedule, and the final iterate all replay.
    assert_eq!(run_once(42), run_once(42));
    // A different seed yields a different fault stream and trajectory.
    assert_ne!(run_once(42), run_once(43));
}

#[test]
fn single_mode_truth_absorbs_subresolution_faults() {
    // Sanity: sub-resolution upsets at the accurate level do not keep
    // the method from freezing.
    let (_, gmm) = workload();
    let mut faulty = FaultInjector::new(
        QcsContext::with_profile(profile()),
        0.01,
        4, // flips of at most 2^-13
        7,
    );
    faulty.set_level(AccuracyLevel::Accurate);
    let outcome = RunConfig::new(&gmm, &mut faulty).execute(&mut SingleMode::accurate());
    assert!(outcome.report.converged || outcome.report.iterations == 500);
    assert!(faulty.faults_injected() > 0);
}
