//! The paper's central claim: ApproxIt guarantees final output quality
//! while single-mode approximation and the PID baseline do not.

use approxit::prelude::*;
use approxit::PidStrategy;
use iter_solvers::datasets::gaussian_blobs;
use iter_solvers::metrics::hamming_distance;
use iter_solvers::GaussianMixture;

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

fn workload(seed: u64) -> (iter_solvers::datasets::ClusterDataset, GaussianMixture) {
    let data = gaussian_blobs(
        "qg",
        &[60, 60, 60],
        &[vec![0.0, 0.0], vec![4.8, 0.8], vec![1.8, 4.4]],
        &[1.05, 1.05, 1.05],
        seed,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 400, seed ^ 0xA5);
    (data, gmm)
}

#[test]
fn reconfiguration_matches_truth_across_seeds() {
    for seed in [11u64, 29, 47] {
        let (_, gmm) = workload(seed);
        let table = characterize(&gmm, &profile(), 4);
        let mut ctx = QcsContext::with_profile(profile());
        let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
        assert!(truth.report.converged, "seed {seed}: truth stuck");
        let truth_labels = gmm.assignments(&truth.state);

        let strategies: Vec<Box<dyn ReconfigStrategy>> = vec![
            Box::new(IncrementalStrategy::from_characterization(&table)),
            Box::new(AdaptiveAngleStrategy::from_characterization(&table, 1)),
        ];
        for mut strategy in strategies {
            let outcome = RunConfig::new(&gmm, &mut ctx).execute(strategy.as_mut());
            assert!(
                outcome.report.converged,
                "seed {seed}: {} stuck",
                outcome.report.strategy
            );
            let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
            assert_eq!(
                qem, 0,
                "seed {seed}: {} broke the quality guarantee",
                outcome.report.strategy
            );
        }
    }
}

#[test]
fn adaptive_meets_truth_quality_under_soft_errors() {
    // The guarantee must survive a realistic soft-error environment:
    // SEU rates up to 1e-3 per operation on the datapath, with the
    // resilient watchdog active. The Truth-convergence criterion is the
    // same one the clean runs are held to.
    let (_, gmm) = workload(11);
    let table = characterize(&gmm, &profile(), 4);
    let mut ctx = QcsContext::with_profile(profile());
    let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
    let truth_labels = gmm.assignments(&truth.state);

    for rate in [1e-4, 1e-3] {
        let mut faulty = FaultInjector::new(QcsContext::with_profile(profile()), rate, 8, 321);
        let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
        let outcome = RunConfig::new(&gmm, &mut faulty)
            .with_watchdog(WatchdogConfig::resilient())
            .execute(&mut strategy);
        assert!(
            faulty.faults_injected() > 0,
            "rate {rate}: no faults were injected"
        );
        assert!(outcome.report.converged, "rate {rate}: adaptive stuck");
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
        assert_eq!(qem, 0, "rate {rate}: adaptive broke the quality guarantee");
    }
}

#[test]
fn level1_single_mode_breaks_quality() {
    // The contrast case: the same hardware without reconfiguration
    // produces garbage (the paper's Figure 3(e)).
    let (_, gmm) = workload(11);
    let mut ctx = QcsContext::with_profile(profile());
    let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
    let truth_labels = gmm.assignments(&truth.state);
    let l1 = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::new(AccuracyLevel::Level1));
    let qem = hamming_distance(&gmm.assignments(&l1.state), &truth_labels, 3);
    assert!(qem > 0, "level1 unexpectedly matched Truth");
    // Level 1 freezes almost immediately (the truncation quantum exceeds
    // the data scale), leaving the mixture far from the optimum in
    // objective terms even when the lucky initial Voronoi cells happen
    // to cover many points.
    assert!(
        l1.report.final_objective > truth.report.final_objective + 0.1,
        "level1 objective {} vs truth {}",
        l1.report.final_objective,
        truth.report.final_objective
    );
    assert!(
        l1.report.iterations < truth.report.iterations / 2,
        "level1 should falsely stop early"
    );
}

#[test]
fn reconfiguration_never_ends_below_its_starting_accuracy() {
    let (_, gmm) = workload(29);
    let table = characterize(&gmm, &profile(), 4);
    let mut ctx = QcsContext::with_profile(profile());
    let mut strategy = IncrementalStrategy::from_characterization(&table);
    let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut strategy);
    // Incremental may only raise accuracy.
    for w in outcome.report.level_schedule.windows(2) {
        assert!(w[0] <= w[1]);
    }
    assert_eq!(
        outcome.report.level_schedule.first().copied(),
        Some(AccuracyLevel::Level1)
    );
}

#[test]
fn pid_baseline_lacks_the_guarantee_mechanisms() {
    // The PID controller has no rollback and no convergence veto: its
    // runs may stop at whatever point the plant happens to freeze. We
    // don't assert it *fails* (gains could luck out on a given dataset)
    // — we assert the structural difference: it never rolls back even
    // when the objective rises.
    let (_, gmm) = workload(47);
    let mut ctx = QcsContext::with_profile(profile());
    let mut pid = PidStrategy::default();
    let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut pid);
    assert_eq!(outcome.report.rollbacks, 0, "PID should never roll back");
}

#[test]
fn energy_accounting_cannot_be_negative_or_free() {
    let (_, gmm) = workload(11);
    let table = characterize(&gmm, &profile(), 3);
    let mut ctx = QcsContext::with_profile(profile());
    let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
    let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut strategy);
    assert!(outcome.report.approx_energy > 0.0);
    assert!(outcome.report.total_energy >= outcome.report.approx_energy);
    assert!(outcome.report.energy_per_iteration.iter().all(|&e| e > 0.0));
}
