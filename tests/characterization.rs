//! The offline characterization stage: invariants of the quality-error
//! tables across applications, and their interaction with the LP.

use approxit::lp::solve_effort_allocation;
use approxit::prelude::*;
use iter_solvers::datasets::{ar_series, gaussian_blobs};
use iter_solvers::{AutoRegression, GaussianMixture};

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

fn gmm() -> GaussianMixture {
    let data = gaussian_blobs(
        "char-gmm",
        &[50, 50],
        &[vec![0.0, 0.0], vec![6.0, 5.0]],
        &[1.0, 1.0],
        21,
    );
    GaussianMixture::from_dataset(&data, 1e-7, 200, 9)
}

fn ar() -> AutoRegression {
    let series = ar_series("char-ar", 400, &[0.5, 0.2], 1.0, 33);
    AutoRegression::from_series(&series, 0.2, 1e-12, 500)
}

#[test]
fn quality_errors_are_monotone_for_both_applications() {
    for table in [
        characterize(&gmm(), &profile(), 4),
        characterize(&ar(), &profile(), 4),
    ] {
        let e = table.quality_errors;
        assert_eq!(e[4], 0.0, "accurate mode must have zero error");
        assert!(
            e[0] >= e[2] && e[2] >= e[3],
            "quality errors not monotone: {e:?}"
        );
        assert!(e[0] > 0.0, "level1 must show error");
        let u = table.update_errors;
        assert_eq!(u[4], 0.0);
        assert!(u[0] > u[3], "update errors not ordered: {u:?}");
    }
}

#[test]
fn characterized_budget_is_positive_and_reasonable() {
    let table = characterize(&gmm(), &profile(), 4);
    assert!(table.initial_objective_drop > 0.0);
    // A relative first-iteration improvement beyond 10x would indicate a
    // normalization bug.
    assert!(table.initial_objective_drop < 10.0);
}

#[test]
fn lp_accepts_characterized_tables() {
    for table in [
        characterize(&gmm(), &profile(), 3),
        characterize(&ar(), &profile(), 3),
    ] {
        for budget in [0.0, table.initial_objective_drop, 1.0] {
            let w =
                solve_effort_allocation(&table.relative_energies, &table.quality_errors, budget);
            let total: f64 = w.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            let err: f64 = w
                .iter()
                .zip(&table.quality_errors)
                .map(|(a, b)| a * b)
                .sum();
            assert!(err <= budget + 1e-9);
        }
    }
}

#[test]
fn characterization_iteration_count_is_recorded() {
    let table = characterize(&gmm(), &profile(), 6);
    assert_eq!(table.iterations, 6);
}

#[test]
fn more_iterations_stabilize_the_estimate() {
    // The estimate from many iterations is in the same ballpark as the
    // estimate from few — characterization is stable, not chaotic.
    let short = characterize(&ar(), &profile(), 2);
    let long = characterize(&ar(), &profile(), 8);
    for level in AccuracyLevel::APPROXIMATE {
        let a = short.quality_error(level).max(1e-12);
        let b = long.quality_error(level).max(1e-12);
        let ratio = (a / b).max(b / a);
        assert!(ratio < 100.0, "level {level}: unstable estimate {a} vs {b}");
    }
}

#[test]
fn definition1_metric_behaves() {
    // Spot-check the quality error metric directly against the
    // characterization pipeline's use of it.
    assert_eq!(quality_error(1.0, 1.0), 0.0);
    assert!(quality_error(1.0, 2.0) > quality_error(1.0, 1.1));
    // Sign-insensitive in the deviation.
    assert_eq!(quality_error(10.0, 9.0), quality_error(10.0, 11.0));
}
