//! Representation-independence guarantees for the sparse stack: a
//! `CsrMatrix` is the *same operator* as its dense image at every
//! accuracy level (bit-identical values, compared through
//! `f64::to_bits`), and the sparse workloads run end to end under the
//! ApproxIt controller at debug-feasible sizes.

use approx_arith::{AccuracyLevel, LowPartPolicy, QFormat, QcsAdder};
use approxit::prelude::*;
use iter_solvers::datasets::ring_with_chords;
use iter_solvers::rng::Pcg32;
use iter_solvers::ConjugateGradient;

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

const LEVELS: [AccuracyLevel; 5] = [
    AccuracyLevel::Level1,
    AccuracyLevel::Level2,
    AccuracyLevel::Level3,
    AccuracyLevel::Level4,
    AccuracyLevel::Accurate,
];

/// The format sweep: narrow, paper-default, and wide fixed point. The
/// wide format's approx-bit schedule is scaled to its 32 fraction bits.
fn formats() -> Vec<(QFormat, [u32; 4])> {
    vec![
        (QFormat::Q15_16, [20, 15, 10, 5]),
        (QFormat::Q31_16, [20, 15, 10, 5]),
        (QFormat::Q31_32, [36, 24, 12, 6]),
    ]
}

fn ctx_for(format: QFormat, approx_bits: [u32; 4], level: AccuracyLevel) -> QcsContext {
    let adder = QcsAdder::with_policy(format.width(), approx_bits, LowPartPolicy::Zero);
    let mut ctx = QcsContext::new(adder, format, profile());
    ctx.set_level(level);
    ctx
}

/// A random sparse matrix with a few entries per row, including
/// explicitly stored zeros (legal in CSR, and a case where a naive
/// "skip zeros" shortcut would change operation counts).
fn random_sparse(rows: usize, cols: usize, per_row: usize, rng: &mut Pcg32) -> Matrix {
    let mut dense = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for _ in 0..per_row {
            let j = rng.uniform(0.0, cols as f64) as usize % cols;
            let v = if rng.uniform(0.0, 1.0) < 0.1 {
                0.0
            } else {
                rng.uniform(-2.0, 2.0)
            };
            dense[(i, j)] = v;
        }
    }
    dense
}

#[test]
fn csr_matvec_is_bit_identical_to_dense_across_formats_and_levels() {
    let mut rng = Pcg32::seeded(0x5fa11, 1);
    for case in 0..4 {
        let rows = 5 + 3 * case;
        let cols = 4 + 2 * case;
        let dense = random_sparse(rows, cols, 3, &mut rng);
        let csr = CsrMatrix::from_dense(&dense);
        assert!(csr.check_invariants());
        let x: Vec<f64> = (0..cols).map(|_| rng.uniform(-1.5, 1.5)).collect();
        for (format, approx_bits) in formats() {
            for level in LEVELS {
                let mut dctx = ctx_for(format, approx_bits, level);
                let mut sctx = ctx_for(format, approx_bits, level);
                let yd = dense.matvec(&mut dctx, &x);
                let ys = csr.matvec(&mut sctx, &x);
                for (i, (a, b)) in yd.iter().zip(&ys).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "case {case} {format} {level:?} row {i}: dense {a:e} vs csr {b:e}"
                    );
                }
            }
        }
    }
}

#[test]
fn csr_round_trip_preserves_the_operator() {
    let mut rng = Pcg32::seeded(0xcafe, 7);
    let dense = random_sparse(9, 9, 4, &mut rng);
    let csr = CsrMatrix::from_dense(&dense);
    let back = csr.to_dense();
    let x: Vec<f64> = (0..9).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let a = dense.matvec_exact(&x);
    let b = back.matvec_exact(&x);
    for (u, v) in a.iter().zip(&b) {
        assert_eq!(u.to_bits(), v.to_bits());
    }
}

#[test]
fn duplicate_triplets_fold_and_sort() {
    let csr = CsrMatrix::from_triplets(
        3,
        3,
        &[
            (0, 2, 1.0),
            (0, 0, 2.0),
            (0, 2, 0.5),
            (1, 1, -1.0),
            (2, 0, 3.0),
        ],
    );
    assert!(csr.check_invariants());
    assert_eq!(csr.get(0, 2), 1.5);
    assert_eq!(csr.get(0, 0), 2.0);
    assert_eq!(csr.nnz(), 4);
}

/// Sparse CG under the full pipeline at a debug-feasible grid size:
/// characterize, run adaptively, and land within the quality budget of
/// the accurate-only reference.
#[test]
fn sparse_cg_under_the_controller_matches_truth_quality() {
    let nx = 10;
    let n = nx * nx;
    let a = CsrMatrix::poisson5(nx, nx);
    let mut rng = Pcg32::seeded(31, 2);
    let truth_x: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let b = a.matvec_exact(&truth_x);
    let cg = ConjugateGradient::new(a, b, 1e-9, 200);

    let table = characterize(&cg, &profile(), 4);
    let mut ctx = QcsContext::with_profile(profile());
    let truth = RunConfig::new(&cg, &mut ctx).execute(&mut SingleMode::accurate());
    let mut adaptive = AdaptiveAngleStrategy::from_characterization(&table, 1);
    let run = RunConfig::new(&cg, &mut ctx).execute(&mut adaptive);

    let norm = |v: &[f64]| v.iter().map(|e| e * e).sum::<f64>().sqrt();
    let scale = norm(&truth_x);
    let rel = |x: &[f64]| {
        let d: Vec<f64> = x.iter().zip(&truth_x).map(|(a, b)| a - b).collect();
        norm(&d) / scale
    };
    let rel_truth = rel(&truth.state.x);
    let rel_run = rel(&run.state.x);
    // The accurate reference itself sits at the Q15.16 quantization
    // floor (~1e-2 on this system); the adaptive run must stay within
    // a small factor of that floor.
    assert!(rel_truth < 2e-2, "accurate reference off: {rel_truth:e}");
    assert!(
        rel_run < 5.0 * rel_truth,
        "adaptive run degraded: {rel_run:e} vs truth {rel_truth:e}"
    );
}

/// PageRank local push drains its residual queue under the controller,
/// and the exact-invariant residual mass confirms real convergence
/// (not the phantom kind where truncation destroys stored mass).
#[test]
fn pagerank_push_under_the_controller_really_converges() {
    let n = 120;
    let graph = ring_with_chords(n, 2, 0xBEEF);
    let ppr = PersonalizedPageRank::new(graph, 5, 0.2, 5e-4, 300);
    let table = characterize(&ppr, &profile(), 4);
    let mut ctx = QcsContext::with_profile(profile());
    let mut adaptive = AdaptiveAngleStrategy::from_characterization(&table, 1);
    let run = RunConfig::new(&ppr, &mut ctx).execute(&mut adaptive);
    assert!(run.report.converged, "queue did not drain");
    let mass = ppr.residual_mass(&run.state);
    // Every node's residual is below its eps·deg threshold, so the
    // total exact mass is bounded by eps·(total out-degree) = eps·nnz.
    let bound = 5e-4 * 3.0 * n as f64;
    assert!(
        mass <= bound,
        "exact residual mass {mass:e} above {bound:e}"
    );
}
