//! End-to-end integration: offline characterization → online
//! reconfiguration → quality/energy verification, across both benchmark
//! applications and the generic solvers.

use approx_linalg::Matrix;
use approxit::prelude::*;
use iter_solvers::datasets::{ar_series, gaussian_blobs};
use iter_solvers::functions::Quadratic;
use iter_solvers::metrics::{hamming_distance, l2_error};
use iter_solvers::{AutoRegression, GaussianMixture, GradientDescent};

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

#[test]
fn gmm_pipeline_reaches_truth_quality() {
    let data = gaussian_blobs(
        "e2e-gmm",
        &[60, 60, 60],
        &[vec![0.0, 0.0], vec![4.8, 0.8], vec![1.8, 4.4]],
        &[1.0, 1.0, 1.0],
        77,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 400, 5);
    let table = characterize(&gmm, &profile(), 4);
    let mut ctx = QcsContext::with_profile(profile());

    let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
    assert!(truth.report.converged, "truth did not converge");
    let truth_labels = gmm.assignments(&truth.state);

    for update_period in [1usize, 5] {
        let mut adaptive = AdaptiveAngleStrategy::from_characterization(&table, update_period);
        let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut adaptive);
        assert!(outcome.report.converged, "adaptive f={update_period}");
        assert_eq!(
            hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3),
            0,
            "adaptive f={update_period} deviated from Truth"
        );
    }

    let mut incremental = IncrementalStrategy::from_characterization(&table);
    let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut incremental);
    assert!(outcome.report.converged);
    assert_eq!(
        hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3),
        0
    );
}

#[test]
fn ar_pipeline_reaches_truth_quality() {
    let series = ar_series("e2e-ar", 600, &[0.45, 0.25, 0.1], 1.0, 101);
    let ar = AutoRegression::from_series(&series, 0.2, 1e-12, 2000);
    let table = characterize(&ar, &profile(), 4);
    let mut ctx = QcsContext::with_profile(profile());

    let truth = RunConfig::new(&ar, &mut ctx).execute(&mut SingleMode::accurate());
    assert!(truth.report.converged, "truth did not converge");

    let mut incremental = IncrementalStrategy::from_characterization(&table);
    let outcome = RunConfig::new(&ar, &mut ctx).execute(&mut incremental);
    assert!(outcome.report.converged, "incremental did not converge");
    let qem = l2_error(&outcome.state, &truth.state);
    // On the fixed-point datapath "equal quality" means within a few
    // quantization steps of the Truth coefficients.
    assert!(qem < 1e-3, "incremental AR qem {qem}");

    let mut adaptive = AdaptiveAngleStrategy::from_characterization(&table, 1);
    let outcome = RunConfig::new(&ar, &mut ctx).execute(&mut adaptive);
    assert!(outcome.report.converged, "adaptive did not converge");
    let qem = l2_error(&outcome.state, &truth.state);
    assert!(qem < 1e-3, "adaptive AR qem {qem}");
}

#[test]
fn single_mode_staircase_holds_for_gmm() {
    let data = gaussian_blobs(
        "e2e-staircase",
        &[60, 60, 60],
        &[vec![0.0, 0.0], vec![4.8, 0.8], vec![1.8, 4.4]],
        &[1.0, 1.0, 1.0],
        77,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 400, 5);
    let mut ctx = QcsContext::with_profile(profile());
    let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
    let truth_labels = gmm.assignments(&truth.state);

    let mut qems = Vec::new();
    let mut energies_per_iter = Vec::new();
    for level in AccuracyLevel::APPROXIMATE {
        let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::new(level));
        qems.push(hamming_distance(
            &gmm.assignments(&outcome.state),
            &truth_labels,
            3,
        ));
        energies_per_iter.push(outcome.report.energy_per_iteration_mean());
    }
    // Per-iteration energy rises with accuracy level.
    for pair in energies_per_iter.windows(2) {
        assert!(pair[0] < pair[1], "energy staircase violated");
    }
    // Level 1 is catastrophically wrong, level 4 near-perfect.
    assert!(qems[0] > 30, "level1 qem {} suspiciously good", qems[0]);
    assert!(qems[3] <= 2, "level4 qem {} should be near zero", qems[3]);
}

#[test]
fn generic_gradient_descent_plugs_into_the_framework() {
    // The framework is method-agnostic: a plain quadratic solver gets
    // the same treatment as the paper's benchmarks.
    let a = Matrix::from_rows(&[&[2.5, 0.4], &[0.4, 1.5]]);
    let q = Quadratic::new(a, vec![1.0, -2.0]);
    let want = q.minimizer();
    let gd = GradientDescent::new(q, vec![8.0, -8.0], 0.3, 1e-9, 2000);
    let table = characterize(&gd, &profile(), 4);
    let mut ctx = QcsContext::with_profile(profile());

    let truth = RunConfig::new(&gd, &mut ctx).execute(&mut SingleMode::accurate());
    assert!(truth.report.converged);

    // A tight gradient tolerance makes the convergence veto demand a
    // near-stationary final iterate (the default 0.05 would accept a
    // coarser freeze whose distance from the optimum is still within
    // the accepted level's noise floor).
    let mut strategy =
        IncrementalStrategy::from_characterization(&table).with_gradient_tolerance(1e-3);
    let outcome = RunConfig::new(&gd, &mut ctx).execute(&mut strategy);
    assert!(outcome.report.converged);
    assert!(l2_error(&outcome.state, &want) < 5e-3);
    assert!(l2_error(&truth.state, &want) < 1e-3);
}

#[test]
fn reports_are_reproducible() {
    let data = gaussian_blobs(
        "e2e-repro",
        &[40, 40],
        &[vec![0.0, 0.0], vec![6.0, 5.0]],
        &[1.0, 1.0],
        13,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 200, 3);
    let table = characterize(&gmm, &profile(), 3);
    let mut ctx = QcsContext::with_profile(profile());
    let mut s1 = IncrementalStrategy::from_characterization(&table);
    let r1 = RunConfig::new(&gmm, &mut ctx).execute(&mut s1);
    let mut s2 = IncrementalStrategy::from_characterization(&table);
    let r2 = RunConfig::new(&gmm, &mut ctx).execute(&mut s2);
    assert_eq!(r1.report, r2.report, "runs must be bit-reproducible");
}
