//! Thread-count invariance guarantees for the parallel substrate: every
//! slice kernel on [`QcsContext`] must produce bit-identical values
//! (compared through `f64::to_bits`), identical operation counts, and
//! bit-identical metered energy whether it runs serially, on the scalar
//! per-op reference path, or row/chunk-partitioned across any number of
//! `parx` worker threads.
//!
//! This is the executable form of the determinism contract in
//! `DESIGN.md` §16: indexed work, fixed chunk geometry (never derived
//! from the thread count), and in-order reduction of per-chunk partials.

use approx_arith::{
    AccuracyLevel, ArithContext, EnergyProfile, LowPartPolicy, OpCounts, QFormat, QcsAdder,
    QcsContext, ScalarPath,
};
use iter_solvers::rng::Pcg32;
use parx::Executor;

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

const LEVELS: [AccuracyLevel; 5] = [
    AccuracyLevel::Level1,
    AccuracyLevel::Level2,
    AccuracyLevel::Level3,
    AccuracyLevel::Level4,
    AccuracyLevel::Accurate,
];

/// Thread counts the contract is exercised at: serial, even split, and
/// a count that does not divide the chunk counts evenly.
const THREADS: [usize; 3] = [1, 2, 7];

/// The format sweep: narrow, paper-default, and wide fixed point (the
/// wide format exercises the serial fallback of the reductions, whose
/// per-step f64 rounding is not associative).
fn formats() -> Vec<(QFormat, [u32; 4])> {
    vec![
        (QFormat::Q15_16, [20, 15, 10, 5]),
        (QFormat::Q31_16, [20, 15, 10, 5]),
        (QFormat::Q31_32, [36, 24, 12, 6]),
    ]
}

fn ctx_for(format: QFormat, approx_bits: [u32; 4], level: AccuracyLevel) -> QcsContext {
    let adder = QcsAdder::with_policy(format.width(), approx_bits, LowPartPolicy::Zero);
    let mut ctx = QcsContext::new(adder, format, profile());
    ctx.set_level(level);
    ctx
}

fn vec_of(n: usize, lo: f64, hi: f64, rng: &mut Pcg32) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

/// Outcome of one kernel run: values, counts, energy.
struct Run {
    values: Vec<f64>,
    counts: OpCounts,
    energy: f64,
}

fn run_kernels(ctx: &mut dyn ArithContext, seed: u64) -> Run {
    let mut rng = Pcg32::seeded(seed, 0);
    // Sizes sit above the parallel-dispatch gate (PAR_MIN_OPS) and
    // produce chunk counts that do not divide evenly by any tested
    // thread count.
    let n = 10_000;
    let rows = 300;
    let cols = 64;
    let xs = vec_of(n, -4.0, 4.0, &mut rng);
    let ys = vec_of(n, -4.0, 4.0, &mut rng);
    let mat = vec_of(rows * cols, -1.5, 1.5, &mut rng);
    let mx = vec_of(cols, -2.0, 2.0, &mut rng);
    // A random CSR operator with ~8 stored entries per row.
    let spmv_rows = 2_000;
    let mut values = Vec::new();
    let mut col_idx = Vec::new();
    let mut row_ptr = vec![0usize];
    for _ in 0..spmv_rows {
        for _ in 0..8 {
            values.push(rng.uniform(-2.0, 2.0));
            col_idx.push(rng.uniform(0.0, cols as f64) as usize % cols);
        }
        row_ptr.push(values.len());
    }

    let mut out = Vec::new();
    let mut buf = vec![0.0; n];
    ctx.add_slice(&xs, &ys, &mut buf);
    out.extend_from_slice(&buf);
    ctx.axpy_slice(1.25, &xs, &ys, &mut buf);
    out.extend_from_slice(&buf);
    let mut mv = vec![0.0; rows];
    ctx.matvec_slice(&mat, cols, &mx, &mut mv);
    out.extend_from_slice(&mv);
    let mut sv = vec![0.0; spmv_rows];
    ctx.spmv_slice(&values, &col_idx, &row_ptr, &mx, &mut sv);
    out.extend_from_slice(&sv);
    out.push(ctx.dot_slice(&xs, &ys));
    out.push(ctx.sum_slice(&xs));
    Run {
        values: out,
        counts: ctx.counts(),
        energy: ctx.total_energy(),
    }
}

fn assert_runs_match(label: &str, a: &Run, b: &Run) {
    assert_eq!(a.values.len(), b.values.len(), "{label}: value count");
    for (i, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: value {i} diverged ({x} vs {y})"
        );
    }
    assert_eq!(a.counts, b.counts, "{label}: operation counts");
    assert_eq!(
        a.energy.to_bits(),
        b.energy.to_bits(),
        "{label}: metered energy"
    );
}

/// The headline guarantee: for every format × level, the scalar per-op
/// path, the serial batched path, and the parallel batched path at
/// every thread count all agree bit-for-bit on values, counts, energy.
#[test]
fn kernels_are_bit_identical_across_thread_counts() {
    for (format, bits) in formats() {
        for level in LEVELS {
            let label = format!("{format} {level}");
            let scalar = run_kernels(&mut ScalarPath::new(ctx_for(format, bits, level)), 0xC0FFEE);
            for threads in THREADS {
                let exec = Executor::with_threads(threads);
                let mut ctx = ctx_for(format, bits, level).with_executor(exec);
                let run = run_kernels(&mut ctx, 0xC0FFEE);
                assert_runs_match(&format!("{label} threads={threads}"), &scalar, &run);
            }
        }
    }
}

/// Replay determinism: the same kernels on the same executor produce
/// the same bits twice in a row (no hidden per-run state in the
/// chunked dispatch).
#[test]
fn parallel_runs_replay_bit_identically() {
    let (format, bits) = (QFormat::Q31_16, [20, 15, 10, 5]);
    for threads in THREADS {
        let first = run_kernels(
            &mut ctx_for(format, bits, AccuracyLevel::Level2)
                .with_executor(Executor::with_threads(threads)),
            0xFEED,
        );
        let second = run_kernels(
            &mut ctx_for(format, bits, AccuracyLevel::Level2)
                .with_executor(Executor::with_threads(threads)),
            0xFEED,
        );
        assert_runs_match(&format!("replay threads={threads}"), &first, &second);
    }
}

/// The chunked f64↔raw conversions are bit-identical to the scalar
/// element loops on every format, including the non-finite and
/// saturating edge cases, and replay deterministically.
#[test]
fn chunked_conversions_match_scalar_and_replay() {
    for (format, _) in formats() {
        let cv = format.converter();
        let mut rng = Pcg32::seeded(0xD1CE, 0);
        let mut xs = vec![
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e300,
            -1e300,
            format.max_value(),
            format.min_value(),
            format.resolution() / 2.0,
        ];
        xs.extend((0..4096).map(|_| rng.uniform(-1e5, 1e5)));
        let mut raws = vec![0i64; xs.len()];
        cv.to_raw_slice(&xs, &mut raws);
        let mut raws2 = vec![0i64; xs.len()];
        cv.to_raw_slice(&xs, &mut raws2);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(raws[i], cv.to_raw(x), "{format} to_raw({x})");
            assert_eq!(raws[i], raws2[i], "{format} to_raw replay at {i}");
        }
        let mut back = vec![0.0; raws.len()];
        cv.from_raw_slice(&raws, &mut back);
        for (i, &r) in raws.iter().enumerate() {
            assert_eq!(
                back[i].to_bits(),
                cv.from_raw(r).to_bits(),
                "{format} from_raw({r})"
            );
        }
    }
}
