//! Energy accounting consistency across the stack: gate-level
//! measurement → per-op profile → context meters → run reports.

use approx_arith::{characterize_adder_energy, Adder, QcsAdder, RippleCarryAdder};
use approxit::prelude::*;
use gatesim::EnergyModel;
use iter_solvers::datasets::gaussian_blobs;
use iter_solvers::GaussianMixture;

#[test]
fn measured_profile_orders_levels_like_the_gate_counts() {
    let qcs = QcsAdder::paper_default();
    let profile = EnergyProfile::characterize(&qcs, 256, 1, &EnergyModel::default());
    let rel = profile.relative_add_energies();
    for pair in rel.windows(2) {
        assert!(pair[0] < pair[1], "relative energies not monotone: {rel:?}");
    }
    // The paper's per-level power ratios run roughly 0.46..0.93; our
    // measured truncation family must land in the same regime.
    assert!(rel[0] > 0.15 && rel[0] < 0.75, "level1 ratio {}", rel[0]);
    assert!(rel[3] > 0.75 && rel[3] < 1.0, "level4 ratio {}", rel[3]);
}

#[test]
fn netlist_energy_scales_with_width() {
    let model = EnergyModel::default();
    let e16 = characterize_adder_energy(&RippleCarryAdder::new(16), 128, 3, &model);
    let e32 = characterize_adder_energy(&RippleCarryAdder::new(32), 128, 3, &model);
    let e64 = characterize_adder_energy(&RippleCarryAdder::new(64), 128, 3, &model);
    assert!(e16 < e32 && e32 < e64);
    // Roughly linear in width.
    let ratio = e64 / e16;
    assert!(ratio > 2.5 && ratio < 6.0, "width scaling ratio {ratio}");
}

#[test]
fn context_meter_equals_ops_times_profile() {
    let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
    let mut ctx = QcsContext::with_profile(profile);
    ctx.set_level(AccuracyLevel::Level3);
    for i in 0..100 {
        ctx.add(f64::from(i), 0.5);
    }
    assert!((ctx.approx_energy() - 300.0).abs() < 1e-9);
    ctx.set_level(AccuracyLevel::Accurate);
    for _ in 0..10 {
        ctx.add(1.0, 1.0);
    }
    assert!((ctx.approx_energy() - 350.0).abs() < 1e-9);
}

#[test]
fn run_report_energy_matches_context_accounting() {
    let data = gaussian_blobs(
        "energy",
        &[40, 40],
        &[vec![0.0, 0.0], vec![6.0, 5.0]],
        &[0.9, 0.9],
        3,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 200, 5);
    let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
    let mut ctx = QcsContext::with_profile(profile.clone());
    let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
    let report = &outcome.report;

    // Energy per iteration sums to the total.
    let sum: f64 = report.energy_per_iteration.iter().sum();
    assert!((sum - report.approx_energy).abs() < 1e-9 * report.approx_energy.max(1.0));

    // Every add cost exactly the accurate-mode energy.
    let expected = report.op_counts.adds as f64 * profile.add_energy(AccuracyLevel::Accurate);
    assert!(
        (report.approx_energy - expected).abs() < 1e-9 * expected,
        "approx energy {} vs adds*per-op {}",
        report.approx_energy,
        expected
    );
}

#[test]
fn truncated_modes_toggle_less_in_the_netlist() {
    // The energy ordering is *measured*, not asserted: simulate the
    // level-1 and accurate netlists on the same operand stream and
    // compare switching activity.
    let qcs = QcsAdder::paper_default();
    let model = EnergyModel::default();
    let cheap = characterize_adder_energy(&qcs.at(AccuracyLevel::Level1), 256, 9, &model);
    let exact = characterize_adder_energy(&qcs.at(AccuracyLevel::Accurate), 256, 9, &model);
    assert!(cheap < 0.75 * exact, "cheap {cheap} vs exact {exact}");
}

#[test]
fn trace_driven_energy_is_cheaper_than_uniform_for_small_operands() {
    // Application operands exercise far fewer bits than uniform noise,
    // so trace-driven characterization reports lower energy.
    let adder = RippleCarryAdder::new(32);
    let model = EnergyModel::default();
    let uniform = characterize_adder_energy(&adder, 256, 11, &model);
    let trace: Vec<(u64, u64)> = (0..256u64).map(|i| (i % 17, i % 13)).collect();
    let traced = approx_arith::characterize_adder_energy_on_trace(&adder, &trace, &model);
    assert!(traced < uniform, "traced {traced} vs uniform {uniform}");
}

#[test]
fn qcs_context_records_usable_traces() {
    let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
    let mut ctx = QcsContext::with_profile(profile);
    ctx.record_trace(64);
    ctx.set_level(AccuracyLevel::Level2);
    for i in 0..32 {
        ctx.add(f64::from(i) * 0.25, 1.5);
    }
    let trace = ctx.trace().expect("trace enabled").to_vec();
    assert_eq!(trace.len(), 32);
    // The trace can drive the gate-level characterization directly.
    let adder = QcsAdder::paper_default().at(AccuracyLevel::Level2);
    let energy =
        approx_arith::characterize_adder_energy_on_trace(&adder, &trace, &EnergyModel::default());
    assert!(energy > 0.0);
    let _ = adder.name();
}
