//! Integration properties of the resilient solver service, driven
//! end-to-end through the public prelude.
//!
//! The central property: a service campaign is a *pure function* of
//! `(configuration, submissions, base seed)` — the executor's thread
//! count must not be observable in any output, down to the last bit of
//! recovery telemetry and final iterates, even with fault injection,
//! retries, escalation, and breaker routing in play.

use approx_linalg::Matrix;
use approxit::prelude::*;
use approxit::service::{BreakerConfig, Request, ServiceConfig, ServiceReport, SolverService};
use iter_solvers::rng::Pcg32;
use iter_solvers::{CgState, ConjugateGradient};
use parx::Executor;

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

/// A dense, well-conditioned SPD system `A = M·Mᵀ/n + I`.
fn spd_system(n: usize, seed: u64) -> ConjugateGradient {
    let mut rng = Pcg32::seeded(seed, 0);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = rng.uniform(-1.0, 1.0);
        }
    }
    let mut a = m.matmul_exact(&m.transpose());
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] /= n as f64;
        }
        a[(i, i)] += 1.0;
    }
    let b: Vec<f64> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
    ConjugateGradient::new(a, b, 1e-6, 200)
}

/// Run one faulty mixed campaign under `threads` workers: a fleet of
/// requests at varied levels and deadlines, SEUs striking the
/// approximate modes, retries and breaker routing active.
fn faulty_campaign(threads: usize, base_seed: u64) -> (Vec<u64>, ServiceReport<CgState>) {
    let mut service = SolverService::new(ServiceConfig {
        max_attempts: 3,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_rounds: 1,
        },
        base_seed,
        ..ServiceConfig::default()
    });
    let levels = [
        AccuracyLevel::Level1,
        AccuracyLevel::Level2,
        AccuracyLevel::Level4,
        AccuracyLevel::Accurate,
    ];
    let mut ids = Vec::new();
    for i in 0..9 {
        let mut request = Request::new(spd_system(6 + i % 4, base_seed ^ (i as u64)))
            .at_level(levels[i % levels.len()]);
        if i % 3 == 0 {
            request = request.with_deadline(40);
        }
        ids.push(service.submit(request).id());
    }
    let report = service.run(&Executor::with_threads(threads), |spec| {
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(spec.level);
        FaultInjector::new(ctx, 0.05, 12, spec.seed).sparing_accurate()
    });
    (ids, report)
}

#[test]
fn faulty_campaigns_are_bit_identical_across_thread_counts() {
    for base_seed in [3, 0x5EED, 0xDEAD_BEEF] {
        let (serial_ids, serial) = faulty_campaign(1, base_seed);
        for threads in [2, 4, 8] {
            let (ids, parallel) = faulty_campaign(threads, base_seed);
            assert_eq!(serial_ids, ids);
            // Recovery telemetry, attempt counts, outcomes, levels:
            // field-for-field identical.
            for (a, b) in serial.requests.iter().zip(&parallel.requests) {
                assert_eq!(
                    a.telemetry, b.telemetry,
                    "telemetry diverged at {threads} threads (seed {base_seed:#x})"
                );
                // Final iterates compared on raw bits — stricter than
                // float equality and immune to NaN.
                let bits = |s: &Option<CgState>| {
                    s.as_ref().map(|s| {
                        s.x.iter()
                            .chain(&s.r)
                            .chain(&s.p)
                            .map(|v| v.to_bits())
                            .collect::<Vec<u64>>()
                    })
                };
                assert_eq!(
                    bits(&a.state),
                    bits(&b.state),
                    "states diverged at {threads} threads (seed {base_seed:#x})"
                );
            }
            assert_eq!(serial.breaker, parallel.breaker);
            assert_eq!(serial.rounds, parallel.rounds);
            assert_eq!(serial.to_json(), parallel.to_json());
        }
    }
}

#[test]
fn recovery_telemetry_replays_bit_identically_for_a_fixed_seed() {
    // The same campaign twice in the same process: every derived fault
    // stream replays, so even the watchdog's internal event counts are
    // reproducible.
    let (_, first) = faulty_campaign(4, 99);
    let (_, second) = faulty_campaign(4, 99);
    let telemetry = |r: &ServiceReport<CgState>| -> Vec<Option<RecoveryTelemetry>> {
        r.requests
            .iter()
            .map(|req| req.telemetry.report.as_ref().map(|rep| rep.recovery))
            .collect()
    };
    assert_eq!(telemetry(&first), telemetry(&second));
    // And a different seed genuinely changes the run.
    let (_, other) = faulty_campaign(4, 100);
    assert_ne!(first.to_json(), other.to_json());
}

#[test]
fn no_submission_is_lost_even_under_extreme_shedding() {
    let mut service = SolverService::new(ServiceConfig {
        queue_capacity: 2,
        ..ServiceConfig::default()
    });
    let submissions: Vec<Submission> = (0..12)
        .map(|i| {
            service
                .submit(Request::new(spd_system(5, 7 + i as u64)).at_level(AccuracyLevel::Accurate))
        })
        .collect();
    let accepted = submissions.iter().filter(|s| s.accepted()).count();
    assert_eq!(accepted, 2, "reject-newest must keep only the first two");
    let ids: Vec<u64> = submissions.iter().map(Submission::id).collect();
    let report = service.run(&Executor::with_threads(4), |spec| {
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(spec.level);
        ctx
    });
    assert!(report.accounts_for(&ids));
    let counts = report.counts();
    assert_eq!(counts.shed, 10);
    assert_eq!(counts.total(), 12);
    for r in &report.requests {
        match r.telemetry.outcome {
            Outcome::Shed => assert!(r.telemetry.report.is_none() && r.state.is_none()),
            _ => assert!(r.telemetry.report.is_some() && r.state.is_some()),
        }
    }
}

#[test]
fn deadline_starved_requests_escalate_and_report_consistent_attempts() {
    let mut service = SolverService::new(ServiceConfig {
        max_attempts: 4,
        breaker: BreakerConfig {
            failure_threshold: 0,
            cooldown_rounds: 0,
        },
        ..ServiceConfig::default()
    });
    let id = service
        .submit(
            Request::new(spd_system(10, 11))
                .at_level(AccuracyLevel::Level1)
                .with_deadline(35),
        )
        .id();
    let report = service.run(&Executor::with_threads(2), |spec| {
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(spec.level);
        FaultInjector::new(ctx, 0.9, 16, spec.seed)
            .striking_only(&[AccuracyLevel::Level1, AccuracyLevel::Level2])
    });
    assert!(report.accounts_for(&[id]));
    let r = &report.requests[0];
    assert!(r.telemetry.outcome.is_success());
    assert!(r.telemetry.attempts > 1, "deadline pressure must retry");
    assert!(r.telemetry.final_level.unwrap() > AccuracyLevel::Level2);
    // The stamped run report agrees with the service-level telemetry —
    // one schema for single runs and service requests.
    let rep = r.telemetry.report.as_ref().unwrap();
    assert_eq!(rep.attempts, r.telemetry.attempts);
    assert_eq!(rep.outcome, r.telemetry.outcome);
    assert!(rep.iterations <= 35, "deadline must cap every attempt");
}
