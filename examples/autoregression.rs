//! Autoregressive model fitting on the approximate datapath — a
//! miniature of the paper's Table 4.
//!
//! ```sh
//! cargo run -p approxit --example autoregression --release
//! ```

use approxit::prelude::*;
use iter_solvers::datasets::ar_series;
use iter_solvers::metrics::l2_error;
use iter_solvers::AutoRegression;

fn main() {
    // A synthetic index-like series with AR(5) structure.
    let series = ar_series("demo-index", 3000, &[0.35, 0.2, 0.1, 0.05, -0.04], 1.0, 99);
    let ar = AutoRegression::from_series(&series, 0.2, 1e-13, 1000);
    let profile = EnergyProfile::paper_default();
    let table = characterize(&ar, &profile, 5);
    let mut ctx = QcsContext::with_profile(profile);

    let truth = RunConfig::new(&ar, &mut ctx).execute(&mut SingleMode::accurate());
    println!(
        "Truth: {} iterations, coefficients {:?}",
        truth.report.iterations,
        truth
            .state
            .iter()
            .map(|c| (c * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!(
        "normal-equation reference distance: {:.2e}",
        l2_error(&truth.state, &ar.normal_equation_solution())
    );

    println!("\nsingle-mode sweep:");
    for level in AccuracyLevel::ALL {
        let outcome = RunConfig::new(&ar, &mut ctx).execute(&mut SingleMode::new(level));
        println!(
            "{:>8}: {:>4} iterations, QEM {:.3e}, energy {:.4}",
            level.to_string(),
            outcome.report.iterations,
            l2_error(&outcome.state, &truth.state),
            outcome.report.normalized_energy(&truth.report),
        );
    }

    println!("\nonline reconfiguration:");
    let mut incremental = IncrementalStrategy::from_characterization(&table);
    let outcome = RunConfig::new(&ar, &mut ctx).execute(&mut incremental);
    println!(
        "incremental: steps {:?}, QEM {:.3e}, energy {:.4}",
        outcome.report.steps_per_level,
        l2_error(&outcome.state, &truth.state),
        outcome.report.normalized_energy(&truth.report),
    );
    let mut adaptive = AdaptiveAngleStrategy::from_characterization(&table, 1);
    let outcome = RunConfig::new(&ar, &mut ctx).execute(&mut adaptive);
    println!(
        "adaptive:    steps {:?}, QEM {:.3e}, energy {:.4}",
        outcome.report.steps_per_level,
        l2_error(&outcome.state, &truth.state),
        outcome.report.normalized_energy(&truth.report),
    );
}
