//! Plugging a *custom* iterative method into ApproxIt: a logistic
//! regression trained by gradient descent, defined entirely in this
//! example. Everything the framework needs is the `IterativeMethod`
//! implementation — quality estimation, effort scaling, and energy
//! metering come for free.
//!
//! ```sh
//! cargo run -p approxit --example custom_method --release
//! ```

use approxit::prelude::*;
use iter_solvers::rng::Pcg32;

/// ℓ2-regularized logistic regression trained by full-batch gradient
/// descent, with the gradient accumulation on the approximate datapath.
struct LogisticRegression {
    features: Vec<Vec<f64>>,
    labels: Vec<f64>, // ±1
    step_size: f64,
    ridge: f64,
    tolerance: f64,
    max_iterations: usize,
}

impl LogisticRegression {
    fn synthetic(n: usize, seed: u64) -> Self {
        // Two Gaussian classes separated along (1, 1).
        let mut rng = Pcg32::seeded(seed, 0);
        let mut features = Vec::with_capacity(2 * n);
        let mut labels = Vec::with_capacity(2 * n);
        for sign in [-1.0, 1.0] {
            for _ in 0..n {
                features.push(vec![
                    rng.gaussian(sign * 1.2, 1.0),
                    rng.gaussian(sign * 0.8, 1.0),
                    1.0, // bias feature
                ]);
                labels.push(sign);
            }
        }
        Self {
            features,
            labels,
            step_size: 0.5,
            ridge: 1e-3,
            tolerance: 1e-9,
            max_iterations: 2000,
        }
    }

    fn accuracy(&self, w: &[f64]) -> f64 {
        let correct = self
            .features
            .iter()
            .zip(&self.labels)
            .filter(|(x, &y)| {
                let score: f64 = x.iter().zip(w).map(|(&xi, &wi)| xi * wi).sum();
                score * y > 0.0
            })
            .count();
        correct as f64 / self.labels.len() as f64
    }
}

impl IterativeMethod for LogisticRegression {
    type State = Vec<f64>;

    fn name(&self) -> &str {
        "logistic-regression"
    }

    fn initial_state(&self) -> Vec<f64> {
        vec![0.0; 3]
    }

    fn step(&self, w: &Vec<f64>, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let n = self.labels.len() as f64;
        // Gradient accumulation on the (possibly approximate) fabric.
        let mut acc = vec![0.0; w.len()];
        for (x, &y) in self.features.iter().zip(&self.labels) {
            let margin = ctx.dot(x, w);
            // The sigmoid is transcendental — error-sensitive, exact.
            let coeff = y / (1.0 + (y * margin).exp());
            for (a, &xi) in acc.iter_mut().zip(x) {
                let contrib = ctx.mul(coeff, xi);
                *a = ctx.add(*a, contrib);
            }
        }
        // w' = (1 − α·ridge)·w + (α/n)·acc
        let shrink = 1.0 - self.step_size * self.ridge;
        w.iter()
            .zip(&acc)
            .map(|(&wi, &ai)| {
                let kept = ctx.mul(shrink, wi);
                let push = ctx.mul(self.step_size / n, ai);
                ctx.add(kept, push)
            })
            .collect()
    }

    fn objective(&self, w: &Vec<f64>) -> f64 {
        let n = self.labels.len() as f64;
        let loss: f64 = self
            .features
            .iter()
            .zip(&self.labels)
            .map(|(x, &y)| {
                let margin: f64 = x.iter().zip(w).map(|(&xi, &wi)| xi * wi).sum();
                (1.0 + (-y * margin).exp()).ln()
            })
            .sum::<f64>()
            / n;
        let reg: f64 = 0.5 * self.ridge * w.iter().map(|wi| wi * wi).sum::<f64>();
        loss + reg
    }

    fn gradient(&self, w: &Vec<f64>) -> Option<Vec<f64>> {
        let n = self.labels.len() as f64;
        let mut g = vec![0.0; w.len()];
        for (x, &y) in self.features.iter().zip(&self.labels) {
            let margin: f64 = x.iter().zip(w).map(|(&xi, &wi)| xi * wi).sum();
            let coeff = -y / (1.0 + (y * margin).exp());
            for (gi, &xi) in g.iter_mut().zip(x) {
                *gi += coeff * xi / n;
            }
        }
        for (gi, &wi) in g.iter_mut().zip(w) {
            *gi += self.ridge * wi;
        }
        Some(g)
    }

    fn params(&self, w: &Vec<f64>) -> Vec<f64> {
        w.clone()
    }

    fn converged(&self, prev: &Vec<f64>, next: &Vec<f64>) -> bool {
        prev.iter()
            .zip(next)
            .all(|(&a, &b)| (a - b).abs() < self.tolerance)
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

fn main() {
    let model = LogisticRegression::synthetic(400, 7);
    let profile = EnergyProfile::paper_default();
    let table = characterize(&model, &profile, 5);
    let mut ctx = QcsContext::with_profile(profile);

    let truth = RunConfig::new(&model, &mut ctx).execute(&mut SingleMode::accurate());
    println!(
        "Truth: {} iterations, loss {:.5}, train accuracy {:.1}%",
        truth.report.iterations,
        truth.report.final_objective,
        100.0 * model.accuracy(&truth.state),
    );

    let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
    let scaled = RunConfig::new(&model, &mut ctx).execute(&mut strategy);
    println!(
        "ApproxIt adaptive: {} iterations (steps {:?}), loss {:.5}, accuracy {:.1}%",
        scaled.report.iterations,
        scaled.report.steps_per_level,
        scaled.report.final_objective,
        100.0 * model.accuracy(&scaled.state),
    );
    println!(
        "energy vs Truth: {:.1}%",
        100.0 * scaled.report.normalized_energy(&truth.report),
    );
}
