//! Quickstart: the whole ApproxIt flow in ~40 lines.
//!
//! ```sh
//! cargo run -p approxit --example quickstart --release
//! ```

use approxit::prelude::*;
use iter_solvers::datasets::gaussian_blobs;
use iter_solvers::metrics::hamming_distance;
use iter_solvers::GaussianMixture;

fn main() {
    // 1. A workload: cluster 300 points with GMM-EM.
    let data = gaussian_blobs(
        "quickstart",
        &[100, 100, 100],
        &[vec![0.0, 0.0], vec![5.0, 1.0], vec![2.0, 4.5]],
        &[1.0, 1.0, 1.0],
        42,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 400, 7);

    // 2. Offline stage: measure per-op energy from the adder's gate
    //    netlists and characterize each mode's iteration-level quality
    //    error on a few representative iterations.
    let profile = EnergyProfile::paper_default();
    let table = characterize(&gmm, &profile, 5);
    println!(
        "offline quality errors (levels 1-4, acc): {:?}",
        table.quality_errors
    );

    // 3. Online stage: run the exact baseline and the dynamically
    //    effort-scaled version of the same computation.
    let mut ctx = QcsContext::with_profile(profile);
    let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
    let mut strategy = IncrementalStrategy::from_characterization(&table);
    let scaled = RunConfig::new(&gmm, &mut ctx).execute(&mut strategy);

    // 4. Same answer, less energy.
    let qem = hamming_distance(
        &gmm.assignments(&scaled.state),
        &gmm.assignments(&truth.state),
        3,
    );
    println!("{}", truth.report);
    println!("{}", scaled.report);
    println!("clustering difference vs Truth (QEM): {qem}");
    println!(
        "energy vs Truth: {:.1}%",
        100.0 * scaled.report.normalized_energy(&truth.report)
    );
}
