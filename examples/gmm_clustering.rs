//! Gaussian-mixture clustering under every approximation mode and both
//! reconfiguration strategies — a miniature of the paper's Tables 3(a)
//! and 3(b).
//!
//! ```sh
//! cargo run -p approxit --example gmm_clustering --release
//! ```

use approxit::prelude::*;
use iter_solvers::datasets::gaussian_blobs;
use iter_solvers::metrics::hamming_distance;
use iter_solvers::GaussianMixture;

fn main() {
    let data = gaussian_blobs(
        "demo3",
        &[150, 150, 150],
        &[vec![0.0, 0.0], vec![4.8, 0.8], vec![1.8, 4.4]],
        &[1.05, 1.05, 1.05],
        2024,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 500, 11);
    let profile = EnergyProfile::paper_default();
    let table = characterize(&gmm, &profile, 5);
    let mut ctx = QcsContext::with_profile(profile);

    let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
    let truth_labels = gmm.assignments(&truth.state);
    println!("single-mode sweep ({} points, 3 clusters):", data.len());
    println!(
        "{:>8} {:>10} {:>6} {:>8}",
        "mode", "iterations", "QEM", "energy"
    );
    for level in AccuracyLevel::ALL {
        let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::new(level));
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
        println!(
            "{:>8} {:>10} {:>6} {:>8.4}",
            level.to_string(),
            outcome.report.iterations,
            qem,
            outcome.report.normalized_energy(&truth.report),
        );
    }

    println!("\nonline reconfiguration:");
    let strategies: Vec<Box<dyn ReconfigStrategy>> = vec![
        Box::new(IncrementalStrategy::from_characterization(&table)),
        Box::new(AdaptiveAngleStrategy::from_characterization(&table, 1)),
    ];
    for mut strategy in strategies {
        let outcome = RunConfig::new(&gmm, &mut ctx).execute(strategy.as_mut());
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
        println!(
            "{:>12}: steps {:?}, {} rollbacks, QEM {}, energy {:.4}",
            outcome.report.strategy,
            outcome.report.steps_per_level,
            outcome.report.rollbacks,
            qem,
            outcome.report.normalized_energy(&truth.report),
        );
    }
}
