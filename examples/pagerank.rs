//! Personalized PageRank under the ApproxIt controller — the
//! graph-scale workload: local residual pushes are error-resilient
//! (misplaced mass is re-pushed later), while the residual-mass quality
//! metric is computed exactly.
//!
//! ```sh
//! cargo run -p approxit --example pagerank --release
//! ```

use approxit::prelude::*;
use iter_solvers::datasets::ring_with_chords;

fn main() {
    // A seeded small-world digraph: directed ring + 3 chords per node.
    // The push threshold sits above the Q15.16 quantization floor so
    // the queue can actually drain on the fixed-point datapath.
    let n = 400;
    let graph = ring_with_chords(n, 3, 0xC0FFEE);
    let ppr = PersonalizedPageRank::new(graph, 17, 0.15, 1e-4, 500);
    let profile = EnergyProfile::paper_default();
    let table = characterize(&ppr, &profile, 5);
    let mut ctx = QcsContext::with_profile(profile);

    // Accurate-only reference run.
    let truth = RunConfig::new(&ppr, &mut ctx).execute(&mut SingleMode::accurate());
    println!(
        "Truth: {} sweeps, residual mass {:.2e}",
        truth.report.iterations,
        ppr.residual_mass(&truth.state)
    );

    // ApproxIt adaptive run: approximate pushes, exact quality monitor.
    let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
    let run = RunConfig::new(&ppr, &mut ctx).execute(&mut strategy);
    let dev = run
        .state
        .x
        .iter()
        .zip(&truth.state.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "ApproxIt adaptive: {} sweeps (steps {:?}), residual mass {:.2e}, max |Δx| vs Truth {:.2e}, energy {:.1}%",
        run.report.iterations,
        run.report.steps_per_level,
        ppr.residual_mass(&run.state),
        dev,
        100.0 * run.report.normalized_energy(&truth.report),
    );

    // Top-ranked nodes near the seed.
    let mut ranked: Vec<(usize, f64)> = run.state.x.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 5 nodes by personalized rank (seed 17):");
    for (node, score) in ranked.iter().take(5) {
        println!("  node {node:>4}  score {score:.4}");
    }
}
