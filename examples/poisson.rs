//! Solving a Poisson boundary-value problem on the approximate datapath
//! — the PDE workload the paper's introduction motivates ("the
//! iterative-based finite difference … methods … to tackle partial
//! differential equations").
//!
//! ```sh
//! cargo run -p approxit --example poisson --release
//! ```

use approxit::prelude::*;
use iter_solvers::{ConjugateGradient, PoissonJacobi, PoissonSource};

/// Render the field as an ASCII heatmap.
fn heatmap(u: &[f64], n: usize) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = u.iter().fold(1e-12f64, |m, &v| m.max(v.abs()));
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let t = (u[i * n + j].abs() / max * 9.0).round() as usize;
                    SHADES[t.min(9)]
                })
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let n = 23;
    let pde = PoissonJacobi::new(n, PoissonSource::Sine { amplitude: 8.0 }, 0.9, 1e-7, 5000);
    let profile = EnergyProfile::paper_default();
    let table = characterize(&pde, &profile, 5);
    let mut ctx = QcsContext::with_profile(profile);

    let truth = RunConfig::new(&pde, &mut ctx).execute(&mut SingleMode::accurate());
    println!(
        "Truth: {} Jacobi sweeps on a {n}x{n} grid",
        truth.report.iterations
    );
    println!("{}\n", heatmap(&truth.state, n));

    // Level 1's truncation quantum exceeds the field scale entirely: the
    // field never leaves zero (the PDE analogue of the paper's broken
    // level-1 clustering).
    let broken =
        RunConfig::new(&pde, &mut ctx).execute(&mut SingleMode::new(AccuracyLevel::Level1));
    println!(
        "level1 single mode: froze after {} sweeps, field peak {:.3}:",
        broken.report.iterations,
        broken.state.iter().cloned().fold(0.0f64, f64::max),
    );
    println!("{}\n", heatmap(&broken.state, n));

    // ApproxIt recovers the field at reduced energy.
    let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
    let scaled = RunConfig::new(&pde, &mut ctx).execute(&mut strategy);
    let deviation = scaled
        .state
        .iter()
        .zip(&truth.state)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "ApproxIt adaptive: {} sweeps (steps {:?}), max deviation from Truth {:.2e}, energy {:.1}%",
        scaled.report.iterations,
        scaled.report.steps_per_level,
        deviation,
        100.0 * scaled.report.normalized_energy(&truth.report),
    );
    println!("{}", heatmap(&scaled.state, n));

    // Report against the analytic solution too.
    let analytic = pde.sine_solution(8.0);
    let disc_err = truth
        .state
        .iter()
        .zip(&analytic)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\n(discretization error of Truth vs analytic solution: {disc_err:.3})");

    // The same PDE through the operator-generic path: assemble the
    // 5-point stencil as a CsrMatrix and hand it to CG. Any
    // LinearOperator — dense, sparse, or matrix-free — plugs into the
    // same solvers and the same controller.
    let a = CsrMatrix::poisson5(n, n);
    let h = pde.spacing();
    let b: Vec<f64> = pde.rhs_values().iter().map(|&f| h * h * f).collect();
    let cg = ConjugateGradient::new(a, b, 1e-10, 400);
    let sparse = RunConfig::new(&cg, &mut ctx).execute(&mut SingleMode::accurate());
    let cg_dev = sparse
        .state
        .x
        .iter()
        .zip(&truth.state)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "sparse CG on the CsrMatrix stencil: {} iterations, max deviation from Jacobi Truth {:.2e}",
        sparse.report.iterations, cg_dev
    );
}
