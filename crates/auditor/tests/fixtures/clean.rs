//! A clean file full of near-misses: every construct here LOOKS like a
//! violation to a text grep but must pass the token-level audit.
//! Audited as-if at `crates/core/src/planted.rs`.
use std::collections::HashMap;

/// Mentions unsafe, thread::spawn, and Instant::now() in a doc comment.
pub fn lookups_are_fine(m: &HashMap<u64, f64>, key: u64) -> f64 {
    // Point lookups and inserts don't depend on iteration order.
    let label = "unsafe Instant thread::spawn rayon"; // words in a string
    let raw = r#"SystemTime::now() in a raw "quoted" string"#;
    m.get(&key).copied().unwrap_or(raw.len() as f64 + label.len() as f64)
}

/// `unwrap_or`/`expect_err`-style names are not `unwrap`/`expect`.
pub fn total(v: &[f64]) -> f64 {
    let mut keyed: HashMap<u64, f64> = HashMap::new();
    keyed.insert(1, v.iter().sum()); // Vec iteration is ordered: fine
    keyed.get(&1).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_iteration_in_tests_is_allowed() {
        let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (k, v) in &m {
            drop((k, v));
        }
    }
}
