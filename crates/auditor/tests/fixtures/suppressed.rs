//! A justified suppression: the finding is real but allowed, with a
//! reason, inside budget. Audited as-if at `crates/linalg/src/planted.rs`.
use std::time::Instant; // audit:allow(wall-clock, fixture: import for timing printout)

pub fn timed_label() -> String {
    // audit:allow(wall-clock, fixture: log line only, value never reenters the solve)
    let t0 = Instant::now();
    format!("{:?}", t0.elapsed())
}
