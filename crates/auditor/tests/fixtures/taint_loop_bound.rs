//! Planted: a fabric-derived count bounds a `for` loop — the trip
//! count would vary with the approximation level.

pub fn resize(ctx: &mut dyn ArithContext, a: f64) -> f64 {
    let k = ctx.mul(a, 8.0);
    let mut total = 0.0;
    for _i in 0..k as usize {
        total += 1.0;
    }
    total
}
