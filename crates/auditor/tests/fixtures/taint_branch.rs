//! Planted: an approximately-computed residual norm decides a branch —
//! convergence predicates must be exact.

pub fn guard(ctx: &mut dyn ArithContext, r: &[f64]) -> f64 {
    let nrm = ctx.dot(r, r);
    if nrm > 1e-10 {
        return 1.0;
    }
    0.0
}
