//! Planted NON-violation: both documented exact routes — the
//! `ScalarPath` wrapper and an explicit `endorse` — launder the flow,
//! so the taint pass must stay silent on this file.

pub fn scalar_exact(inner: QcsContext, a: f64, b: f64) -> f64 {
    let mut path = ScalarPath::new(inner);
    let p = path.mul(a, b);
    if p > 0.0 {
        return p;
    }
    0.0
}

pub fn measured(ctx: &mut dyn ArithContext, a: f64) -> f64 {
    let m = endorse(ctx.mul(a, a));
    if m > 1.0 {
        return 1.0;
    }
    m
}
