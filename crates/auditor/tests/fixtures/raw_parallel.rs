//! Planted violation: ad-hoc threads outside the sanctioned `parx`
//! substrate. Audited as-if at `crates/solvers/src/planted.rs`, and
//! again as-if inside `crates/parx/src/worker.rs` — only
//! `crates/parx/src/lib.rs` itself may spawn.

pub fn fan_out(work: Vec<u64>) -> Vec<u64> {
    let handle = std::thread::spawn(move || work.iter().sum::<u64>()); // line 7
    vec![handle.join().unwrap_or(0)]
}

pub fn scoped(data: &[f64]) -> f64 {
    let mut acc = 0.0;
    std::thread::scope(|s| {
        // line 13: thread::scope outside the executor
        s.spawn(|| ());
    });
    acc += data.len() as f64;
    acc
}
