//! Planted violation: ad-hoc threads outside gatesim::par::Executor.
//! Audited as-if at `crates/solvers/src/planted.rs`.

pub fn fan_out(work: Vec<u64>) -> Vec<u64> {
    let handle = std::thread::spawn(move || work.iter().sum::<u64>()); // line 5
    vec![handle.join().unwrap_or(0)]
}

pub fn scoped(data: &[f64]) -> f64 {
    let mut acc = 0.0;
    std::thread::scope(|s| {
        // line 11: thread::scope outside the executor
        s.spawn(|| ());
    });
    acc += data.len() as f64;
    acc
}
