//! Planted: a fabric result flows straight into `quality_error`'s
//! accurate operand and decides a branch — the most direct
//! source→sink shape the taint pass must catch.

pub fn leak(a: f64, b: f64) -> f64 {
    let mut ctx = QcsContext::new(AccuracyLevel::Level2);
    let approx = ctx.mul(a, b);
    let err = quality_error(approx, b);
    if approx > 1.0 {
        return err;
    }
    err
}
