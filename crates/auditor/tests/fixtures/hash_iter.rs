//! Planted violation: HashMap/HashSet iteration in a result-affecting
//! crate. Audited as-if at `crates/core/src/planted.rs`.
use std::collections::{HashMap, HashSet};

pub fn merge_scores(scores: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_, v) in scores {
        // line 7 above: `for … in scores` — order nondeterministic
        total += v;
    }
    total
}

pub fn drain_pending() -> Vec<u64> {
    let mut pending: HashSet<u64> = HashSet::new();
    pending.insert(7);
    pending.iter().copied().collect() // `.iter()` on a hash set
}
