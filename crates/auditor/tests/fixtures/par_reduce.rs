//! Planted violation: shared-state accumulation bypassing the
//! Executor's in-order reduction. Audited as-if at
//! `crates/approx-arith/src/planted.rs`.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn racy_energy_total(samples: &[f64]) -> f64 {
    let bits = AtomicU64::new(0); // line 7: Atomic accumulator
    for s in samples {
        let add = s.to_bits();
        bits.fetch_add(add, Ordering::Relaxed); // line 10: RMW reduce
    }
    f64::from_bits(bits.load(Ordering::Relaxed))
}
