//! Planted: a deliberate fabric-state read, sanctioned by an
//! `audit:allow(taint-branch, …)` marker — the finding must land in
//! `suppressed`, not `violations`, and the marker must count as used.

pub fn sanctioned(ctx: &mut dyn ArithContext, a: f64) -> f64 {
    let p = ctx.mul(a, a);
    // audit:allow(taint-branch, planted deliberate fabric-state read)
    if p > 0.0 {
        return 1.0;
    }
    0.0
}
