//! Planted: the fabric op lives in a helper function — only the
//! interprocedural summary (ctx_flow resolved at the call site against
//! the caller's approximate context) catches the laundered flow.

fn fabric_dot(ctx: &mut dyn ArithContext, xs: &[f64], ys: &[f64]) -> f64 {
    ctx.dot(xs, ys)
}

pub fn launder(xs: &[f64], ys: &[f64]) -> f64 {
    let mut ctx = QcsContext::new(AccuracyLevel::Level1);
    let d = fabric_dot(&mut ctx, xs, ys);
    if d < 0.0 {
        return 0.0;
    }
    d
}
