//! Planted violation: wall clock flowing into a computed value in a
//! non-allowlisted file. Audited as-if at `crates/linalg/src/planted.rs`.
use std::time::Instant;

pub fn jittered_tolerance(base: f64) -> f64 {
    let t0 = Instant::now(); // line 6: wall clock off the allowlist
    base + t0.elapsed().as_secs_f64() * 1e-9
}
