//! Planted: the `spmv_slice` out-slice is a fabric value, and a read
//! of it steers CSR index arithmetic — the exact shape a sparse kernel
//! bug takes (an approximate accumulator deciding which row window to
//! walk). The taint pass must treat `spmv_slice` as a source and flag
//! the index expression.

pub fn leak(vals: &[f64], cols: &[usize], rp: &[usize], x: &[f64]) -> f64 {
    let mut ctx = QcsContext::new(AccuracyLevel::Level2);
    let mut y = vec![0.0; x.len()];
    ctx.spmv_slice(vals, cols, rp, x, &mut y);
    let row = y[0] as usize;
    vals[rp[row]]
}
