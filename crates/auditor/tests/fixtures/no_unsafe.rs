//! Planted violation: an unsafe block. The comment mentioning unsafe
//! code right here must NOT be flagged — only the real block below is.
//! Audited as-if at `crates/gatesim/src/planted.rs`.

pub fn reinterpret(x: f64) -> u64 {
    // "unsafe" in a string must also stay invisible to the audit:
    let _label = "unsafe reinterpretation";
    unsafe { std::mem::transmute::<f64, u64>(x) } // line 8
}
