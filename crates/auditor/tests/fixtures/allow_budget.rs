//! Planted violation: suppression hygiene. Real findings on every
//! line, but the markers overflow the per-rule budget (the fixture test
//! sets it to 2), one marker has no reason, and one is stale.
//! Audited as-if at `crates/gatesim/src/planted.rs`.

pub fn a() { unsafe {} } // audit:allow(no-unsafe, fixture one)
pub fn b() { unsafe {} } // audit:allow(no-unsafe, fixture two)
pub fn c() { unsafe {} } // audit:allow(no-unsafe, fixture three — over budget)
pub fn d() { unsafe {} } // audit:allow(no-unsafe)
// audit:allow(no-unsafe, stale marker with nothing under it)
pub fn e() {}
