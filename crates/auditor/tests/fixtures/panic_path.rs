//! Planted violation: panics on the service request path. Audited
//! as-if at `crates/core/src/service.rs`. The test-module unwrap at the
//! bottom must NOT be flagged.

pub fn admit(slot: Option<usize>) -> usize {
    slot.unwrap() // line 6: aborts the drain on a shed request
}

pub fn route(level: usize) -> usize {
    if level > 4 {
        panic!("level off the ladder"); // line 11
    }
    level
}

pub fn checkpoint(buf: &[u8]) -> u8 {
    *buf.first().expect("ring is never empty") // line 17
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
