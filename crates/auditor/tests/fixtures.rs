//! Planted-violation fixtures: one file per rule (plus hygiene cases),
//! each asserted caught with the right rule id and file:line span —
//! mirroring the model checker's mutant-catching style. The fixture
//! sources live under `tests/fixtures/` where the workspace walker
//! deliberately does not look.

use auditor::rules::FileFindings;
use auditor::{assemble, audit_rust_source, audit_sources, AuditConfig, AuditReport};

fn config() -> AuditConfig {
    AuditConfig::approxit(".")
}

/// Audit one in-memory Rust source as-if it lived at `virtual_path`.
fn audit_at(virtual_path: &str, src: &str) -> AuditReport {
    audit_with(virtual_path, src, &config())
}

fn audit_with(virtual_path: &str, src: &str, cfg: &AuditConfig) -> AuditReport {
    assemble(audit_rust_source(virtual_path, src, cfg), 1, cfg)
}

/// Audit a planted multi-file workspace through the full pipeline
/// (per-file rules + taint dataflow + suppression settlement).
fn audit_files(files: &[(&str, &str)]) -> AuditReport {
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
        .collect();
    audit_sources(&files, &config())
}

/// (rule, line) pairs of the unsuppressed findings, in report order.
fn spans(report: &AuditReport) -> Vec<(&str, u32)> {
    report.violations.iter().map(|v| (v.rule, v.line)).collect()
}

/// The `(line, col)` of the first hop (the source) and last hop (the
/// sink) of a finding's trace.
fn endpoints(report: &AuditReport, i: usize) -> ((u32, u32), (u32, u32)) {
    let t = &report.violations[i].trace;
    assert!(t.len() >= 2, "trace has source and sink: {t:?}");
    let first = t.first().unwrap();
    let last = t.last().unwrap();
    ((first.line, first.col), (last.line, last.col))
}

#[test]
fn hash_iter_fixture_is_caught() {
    let report = audit_at(
        "crates/core/src/planted.rs",
        include_str!("fixtures/hash_iter.rs"),
    );
    assert_eq!(spans(&report), [("hash-iter", 7), ("hash-iter", 17)]);
    assert_eq!(report.violations[0].file, "crates/core/src/planted.rs");
}

#[test]
fn raw_parallel_fixture_is_caught() {
    let src = include_str!("fixtures/raw_parallel.rs");
    let report = audit_at("crates/solvers/src/planted.rs", src);
    assert_eq!(spans(&report), [("raw-parallel", 7), ("raw-parallel", 13)]);
    // The sanction covers exactly `parx/src/lib.rs`: a sibling file in
    // the substrate crate still may not spawn on its own.
    let sibling = audit_at("crates/parx/src/worker.rs", src);
    assert_eq!(spans(&sibling), [("raw-parallel", 7), ("raw-parallel", 13)]);
    assert!(sibling.violations[0].message.contains("parx::Executor"));
    let home = audit_at("crates/parx/src/lib.rs", src);
    assert!(home.violations.iter().all(|v| v.rule != "raw-parallel"));
}

#[test]
fn wall_clock_fixture_is_caught() {
    let src = include_str!("fixtures/wall_clock.rs");
    let report = audit_at("crates/linalg/src/planted.rs", src);
    assert_eq!(spans(&report), [("wall-clock", 3), ("wall-clock", 6)]);
    // The same source is legal in an allowlisted bench timing file.
    let allowed = audit_at("crates/bench/src/harness.rs", src);
    assert!(allowed.violations.is_empty());
}

#[test]
fn no_unsafe_fixture_is_caught_but_not_its_comments() {
    let report = audit_at(
        "crates/gatesim/src/planted.rs",
        include_str!("fixtures/no_unsafe.rs"),
    );
    // Exactly one finding: the real block, not the doc comment or the
    // string literal that also say "unsafe".
    assert_eq!(spans(&report), [("no-unsafe", 8)]);
    assert_eq!(report.violations[0].col, 5);
}

#[test]
fn panic_path_fixture_is_caught_outside_tests_only() {
    let src = include_str!("fixtures/panic_path.rs");
    let report = audit_at("crates/core/src/service.rs", src);
    assert_eq!(
        spans(&report),
        [("panic-path", 6), ("panic-path", 11), ("panic-path", 17)]
    );
    // Off the request path the same source is legal (no other rule
    // matches it either).
    assert!(audit_at("crates/core/src/strategy.rs", src)
        .violations
        .is_empty());
}

#[test]
fn hermetic_deps_fixture_is_caught() {
    let report = assemble(
        FileFindings {
            violations: auditor::manifest::audit_manifest(
                "crates/planted/Cargo.toml",
                include_str!("fixtures/hermetic.toml"),
            ),
            suppressions: Vec::new(),
        },
        1,
        &config(),
    );
    assert_eq!(
        spans(&report),
        [
            ("hermetic-deps", 8),
            ("hermetic-deps", 9),
            ("hermetic-deps", 11)
        ]
    );
    assert!(report.violations[0].message.contains("serde"));
    assert!(report.violations[2].message.contains("proptest"));
}

#[test]
fn par_reduce_fixture_is_caught() {
    let report = audit_at(
        "crates/approx-arith/src/planted.rs",
        include_str!("fixtures/par_reduce.rs"),
    );
    assert_eq!(
        spans(&report),
        [("par-reduce", 4), ("par-reduce", 7), ("par-reduce", 10)]
    );
}

#[test]
fn allow_budget_fixture_overflows_and_hygiene_fires() {
    let mut cfg = config();
    cfg.suppression_budget = 2;
    let report = audit_with(
        "crates/gatesim/src/planted.rs",
        include_str!("fixtures/allow_budget.rs"),
        &cfg,
    );
    // Open: the reason-less marker leaves its finding open, plus three
    // hygiene findings (over budget, missing reason, stale marker).
    assert_eq!(
        spans(&report),
        [
            ("allow-budget", 8),
            ("allow-budget", 9), // col 1 sorts before the unsafe block
            ("no-unsafe", 9),
            ("allow-budget", 10)
        ]
    );
    assert_eq!(
        report.suppressed.len(),
        3,
        "markers inside budget still suppress"
    );
    assert_eq!(report.error_count(), 3);
    assert_eq!(report.warning_count(), 1);
    assert!(!report.is_clean());
    // With the project budget (8) only the hygiene findings remain.
    let report = audit_at(
        "crates/gatesim/src/planted.rs",
        include_str!("fixtures/allow_budget.rs"),
    );
    assert_eq!(
        spans(&report),
        [("allow-budget", 9), ("no-unsafe", 9), ("allow-budget", 10)]
    );
}

#[test]
fn justified_suppressions_inside_budget_pass() {
    let report = audit_at(
        "crates/linalg/src/planted.rs",
        include_str!("fixtures/suppressed.rs"),
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suppressed.len(), 2);
    assert!(report.suppressions.iter().all(|s| s.used));
    assert!(report.is_clean());
    // Suppressed findings keep their spans in the report.
    assert_eq!(report.suppressed[0].line, 3);
    assert_eq!(report.suppressed[1].line, 7);
}

#[test]
fn clean_fixture_raises_nothing() {
    let report = audit_at(
        "crates/core/src/planted.rs",
        include_str!("fixtures/clean.rs"),
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.suppressed.is_empty());
    assert!(report.is_clean());
}

#[test]
fn json_report_carries_fixture_spans() {
    let report = audit_at(
        "crates/core/src/service.rs",
        include_str!("fixtures/panic_path.rs"),
    );
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"approxit-audit/2\""));
    assert!(json.contains("\"rule\": \"panic-path\""));
    assert!(json.contains("\"line\": 6"));
    assert!(json.contains("\"clean\": false"));
    assert!(auditor::report::check_schema(&json).is_ok());
}

// ---------------------------------------------------------------------
// Taint dataflow fixtures
// ---------------------------------------------------------------------

#[test]
fn taint_direct_flow_is_caught_with_both_sinks() {
    let report = audit_files(&[(
        "crates/core/src/planted.rs",
        include_str!("fixtures/taint_direct.rs"),
    )]);
    assert_eq!(spans(&report), [("taint-sink", 8), ("taint-branch", 9)]);
    // quality_error's accurate operand: source is the `.mul` on line 7.
    let (src, sink) = endpoints(&report, 0);
    assert_eq!(src.0, 7, "source hop at the fabric op");
    assert_eq!(sink, (8, 15), "sink hop at the quality_error call");
    let (src, sink) = endpoints(&report, 1);
    assert_eq!(src.0, 7);
    assert_eq!(sink.0, 9, "branch sink on the `if`");
}

#[test]
fn taint_interprocedural_laundering_is_caught() {
    let report = audit_files(&[(
        "crates/solvers/src/planted.rs",
        include_str!("fixtures/taint_interproc.rs"),
    )]);
    assert_eq!(spans(&report), [("taint-branch", 12)]);
    let v = &report.violations[0];
    // The trace must walk the whole interprocedural path: the caller's
    // approximate context, the fabric op inside the helper, the call
    // site, and finally the branch sink.
    let notes: Vec<&str> = v.trace.iter().map(|h| h.note.as_str()).collect();
    assert!(
        notes.iter().any(|n| n.contains("QcsContext::new")),
        "{notes:?}"
    );
    assert!(notes.iter().any(|n| n.contains(".dot")), "{notes:?}");
    assert!(
        notes
            .iter()
            .any(|n| n.contains("fabric ops inside `fabric_dot`")),
        "{notes:?}"
    );
    assert!(notes.last().unwrap().contains("branch"), "{notes:?}");
    // The fabric op hop points into the helper (line 6), the sink into
    // the caller (line 12).
    assert!(v.trace.iter().any(|h| h.line == 6));
    assert_eq!(v.line, 12);
}

#[test]
fn taint_sanitized_flows_do_not_report() {
    let report = audit_files(&[(
        "crates/solvers/src/planted.rs",
        include_str!("fixtures/taint_sanitized.rs"),
    )]);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.is_clean());
}

#[test]
fn taint_branch_fixture_is_caught() {
    let report = audit_files(&[(
        "crates/solvers/src/planted.rs",
        include_str!("fixtures/taint_branch.rs"),
    )]);
    assert_eq!(spans(&report), [("taint-branch", 6)]);
    let (src, sink) = endpoints(&report, 0);
    assert_eq!(src, (5, 19), "source at the `.dot` fabric op");
    assert_eq!(sink, (6, 5), "sink at the `if`");
}

#[test]
fn taint_loop_bound_fixture_is_caught() {
    let report = audit_files(&[(
        "crates/solvers/src/planted.rs",
        include_str!("fixtures/taint_loop_bound.rs"),
    )]);
    assert_eq!(spans(&report), [("taint-loop-bound", 7)]);
    let (src, sink) = endpoints(&report, 0);
    assert_eq!(src.0, 5, "source at the `.mul`");
    assert_eq!(sink.0, 7, "sink at the `for`");
}

#[test]
fn taint_spmv_out_slice_steering_index_arithmetic_is_caught() {
    let report = audit_files(&[(
        "crates/solvers/src/planted.rs",
        include_str!("fixtures/taint_spmv.rs"),
    )]);
    // Both the inner `rp[row]` and the outer `vals[…]` index on line 12
    // are steered by the fabric out-slice.
    assert_eq!(spans(&report), [("taint-index", 12), ("taint-index", 12)]);
    // The trace roots at the spmv_slice out-parameter write (line 10).
    let v = &report.violations[0];
    assert!(
        v.trace.iter().any(|h| h.line == 10),
        "source hop at the spmv_slice call: {:?}",
        v.trace
    );
}

#[test]
fn taint_suppressed_fixture_lands_in_suppressed() {
    let report = audit_files(&[(
        "crates/solvers/src/planted.rs",
        include_str!("fixtures/taint_suppressed.rs"),
    )]);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "taint-branch");
    assert_eq!(report.suppressed[0].line, 8);
    assert!(report.suppressions.iter().all(|s| s.used));
    assert!(report.is_clean());
}

/// The acceptance-criteria mutant: rewire `quality_error` to consume a
/// `QcsContext` result as its *accurate* operand — the pass must catch
/// exactly that operand, and stay silent when the operands are the
/// right way around.
#[test]
fn quality_error_consuming_qcs_result_mutant_is_caught() {
    let mutant = "pub fn check(ctx: &mut QcsContext, x: f64) -> f64 {\n    let approximate = ctx.mul(x, x);\n    quality_error(approximate, x * x)\n}\n";
    let report = audit_files(&[("crates/core/src/planted.rs", mutant)]);
    assert_eq!(spans(&report), [("taint-sink", 3)]);
    assert!(report.violations[0].message.contains("quality_error"));

    // Correct orientation: exact reference first, fabric value second.
    let sound = "pub fn check(ctx: &mut QcsContext, x: f64) -> f64 {\n    let approximate = ctx.mul(x, x);\n    quality_error(x * x, approximate)\n}\n";
    let report = audit_files(&[("crates/core/src/planted.rs", sound)]);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

/// The burn-in contract: the real workspace must audit clean, so CI
/// starts (and stays) at a zero-violation baseline. Every allowance in
/// the tree must be used and justified.
#[test]
fn real_workspace_audits_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let cfg = AuditConfig::approxit(&root);
    let report = auditor::run_audit(&cfg).expect("workspace walk succeeds");
    assert!(
        report.violations.is_empty(),
        "clean-tree audit found:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.is_clean());
    assert!(
        report.files_scanned >= 60,
        "walk collapsed: {} files",
        report.files_scanned
    );
    assert!(report
        .suppressions
        .iter()
        .all(|s| s.used && !s.reason.is_empty()));
    // Taint extension of the burn-in contract: zero unsuppressed
    // taint-* findings, and every taint-rule allow marker in the tree
    // is live (non-stale) — at least one exists (cg.rs's
    // degenerate-direction restart), so this is not vacuous.
    assert!(report
        .violations
        .iter()
        .all(|v| !v.rule.starts_with("taint-")));
    let taint_allows: Vec<_> = report
        .suppressions
        .iter()
        .filter(|s| s.rule.starts_with("taint-"))
        .collect();
    assert!(
        !taint_allows.is_empty(),
        "expected the sanctioned cg.rs fabric-state read to carry a taint allow"
    );
    assert!(taint_allows.iter().all(|s| s.used), "{taint_allows:?}");
}
