//! Planted-violation fixtures: one file per rule (plus hygiene cases),
//! each asserted caught with the right rule id and file:line span —
//! mirroring the model checker's mutant-catching style. The fixture
//! sources live under `tests/fixtures/` where the workspace walker
//! deliberately does not look.

use auditor::rules::FileFindings;
use auditor::{assemble, audit_rust_source, AuditConfig, AuditReport};

fn config() -> AuditConfig {
    AuditConfig::approxit(".")
}

/// Audit one in-memory Rust source as-if it lived at `virtual_path`.
fn audit_at(virtual_path: &str, src: &str) -> AuditReport {
    audit_with(virtual_path, src, &config())
}

fn audit_with(virtual_path: &str, src: &str, cfg: &AuditConfig) -> AuditReport {
    assemble(audit_rust_source(virtual_path, src, cfg), 1, cfg)
}

/// (rule, line) pairs of the unsuppressed findings, in report order.
fn spans(report: &AuditReport) -> Vec<(&str, u32)> {
    report.violations.iter().map(|v| (v.rule, v.line)).collect()
}

#[test]
fn hash_iter_fixture_is_caught() {
    let report = audit_at(
        "crates/core/src/planted.rs",
        include_str!("fixtures/hash_iter.rs"),
    );
    assert_eq!(spans(&report), [("hash-iter", 7), ("hash-iter", 17)]);
    assert_eq!(report.violations[0].file, "crates/core/src/planted.rs");
}

#[test]
fn raw_parallel_fixture_is_caught() {
    let report = audit_at(
        "crates/solvers/src/planted.rs",
        include_str!("fixtures/raw_parallel.rs"),
    );
    assert_eq!(spans(&report), [("raw-parallel", 5), ("raw-parallel", 11)]);
}

#[test]
fn wall_clock_fixture_is_caught() {
    let src = include_str!("fixtures/wall_clock.rs");
    let report = audit_at("crates/linalg/src/planted.rs", src);
    assert_eq!(spans(&report), [("wall-clock", 3), ("wall-clock", 6)]);
    // The same source is legal in an allowlisted bench timing file.
    let allowed = audit_at("crates/bench/src/harness.rs", src);
    assert!(allowed.violations.is_empty());
}

#[test]
fn no_unsafe_fixture_is_caught_but_not_its_comments() {
    let report = audit_at(
        "crates/gatesim/src/planted.rs",
        include_str!("fixtures/no_unsafe.rs"),
    );
    // Exactly one finding: the real block, not the doc comment or the
    // string literal that also say "unsafe".
    assert_eq!(spans(&report), [("no-unsafe", 8)]);
    assert_eq!(report.violations[0].col, 5);
}

#[test]
fn panic_path_fixture_is_caught_outside_tests_only() {
    let src = include_str!("fixtures/panic_path.rs");
    let report = audit_at("crates/core/src/service.rs", src);
    assert_eq!(
        spans(&report),
        [("panic-path", 6), ("panic-path", 11), ("panic-path", 17)]
    );
    // Off the request path the same source is legal (no other rule
    // matches it either).
    assert!(audit_at("crates/core/src/strategy.rs", src)
        .violations
        .is_empty());
}

#[test]
fn hermetic_deps_fixture_is_caught() {
    let report = assemble(
        FileFindings {
            violations: auditor::manifest::audit_manifest(
                "crates/planted/Cargo.toml",
                include_str!("fixtures/hermetic.toml"),
            ),
            suppressions: Vec::new(),
        },
        1,
        &config(),
    );
    assert_eq!(
        spans(&report),
        [
            ("hermetic-deps", 8),
            ("hermetic-deps", 9),
            ("hermetic-deps", 11)
        ]
    );
    assert!(report.violations[0].message.contains("serde"));
    assert!(report.violations[2].message.contains("proptest"));
}

#[test]
fn par_reduce_fixture_is_caught() {
    let report = audit_at(
        "crates/approx-arith/src/planted.rs",
        include_str!("fixtures/par_reduce.rs"),
    );
    assert_eq!(
        spans(&report),
        [("par-reduce", 4), ("par-reduce", 7), ("par-reduce", 10)]
    );
}

#[test]
fn allow_budget_fixture_overflows_and_hygiene_fires() {
    let mut cfg = config();
    cfg.suppression_budget = 2;
    let report = audit_with(
        "crates/gatesim/src/planted.rs",
        include_str!("fixtures/allow_budget.rs"),
        &cfg,
    );
    // Open: the reason-less marker leaves its finding open, plus three
    // hygiene findings (over budget, missing reason, stale marker).
    assert_eq!(
        spans(&report),
        [
            ("allow-budget", 8),
            ("allow-budget", 9), // col 1 sorts before the unsafe block
            ("no-unsafe", 9),
            ("allow-budget", 10)
        ]
    );
    assert_eq!(
        report.suppressed.len(),
        3,
        "markers inside budget still suppress"
    );
    assert_eq!(report.error_count(), 3);
    assert_eq!(report.warning_count(), 1);
    assert!(!report.is_clean());
    // With the project budget (8) only the hygiene findings remain.
    let report = audit_at(
        "crates/gatesim/src/planted.rs",
        include_str!("fixtures/allow_budget.rs"),
    );
    assert_eq!(
        spans(&report),
        [("allow-budget", 9), ("no-unsafe", 9), ("allow-budget", 10)]
    );
}

#[test]
fn justified_suppressions_inside_budget_pass() {
    let report = audit_at(
        "crates/linalg/src/planted.rs",
        include_str!("fixtures/suppressed.rs"),
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suppressed.len(), 2);
    assert!(report.suppressions.iter().all(|s| s.used));
    assert!(report.is_clean());
    // Suppressed findings keep their spans in the report.
    assert_eq!(report.suppressed[0].line, 3);
    assert_eq!(report.suppressed[1].line, 7);
}

#[test]
fn clean_fixture_raises_nothing() {
    let report = audit_at(
        "crates/core/src/planted.rs",
        include_str!("fixtures/clean.rs"),
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.suppressed.is_empty());
    assert!(report.is_clean());
}

#[test]
fn json_report_carries_fixture_spans() {
    let report = audit_at(
        "crates/core/src/service.rs",
        include_str!("fixtures/panic_path.rs"),
    );
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"approxit-audit/1\""));
    assert!(json.contains("\"rule\": \"panic-path\""));
    assert!(json.contains("\"line\": 6"));
    assert!(json.contains("\"clean\": false"));
}

/// The burn-in contract: the real workspace must audit clean, so CI
/// starts (and stays) at a zero-violation baseline. Every allowance in
/// the tree must be used and justified.
#[test]
fn real_workspace_audits_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let cfg = AuditConfig::approxit(&root);
    let report = auditor::run_audit(&cfg).expect("workspace walk succeeds");
    assert!(
        report.violations.is_empty(),
        "clean-tree audit found:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.is_clean());
    assert!(
        report.files_scanned >= 60,
        "walk collapsed: {} files",
        report.files_scanned
    );
    assert!(report
        .suppressions
        .iter()
        .all(|s| s.used && !s.reason.is_empty()));
}
