//! Workspace model and call graph for the taint pass.
//!
//! A [`Workspace`] holds every analyzed file's comment-free token
//! stream plus its [`symbols`](crate::symbols) function table, with
//! name indices for call resolution. Resolution is *name-based* (no
//! type inference): a call joins the summaries of every candidate with
//! a matching name, which over-approximates dispatch — safe for a
//! taint analysis, where joining too much can only make a value more
//! approximate, never less.
//!
//! [`Workspace::to_dot`] renders the resolved caller→callee edges as
//! Graphviz for the `CALLGRAPH.dot` CI artifact.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind};
use crate::scope::test_spans;
use crate::symbols::{file_functions, match_paren, FnDef};

/// Identifies one function: (unit index, fn index within the unit).
pub type FnId = (usize, usize);

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceUnit {
    /// Workspace-relative path.
    pub path: String,
    /// Comment-free token stream; `FnDef::body` ranges index into it.
    pub code: Vec<Token>,
    /// Function table for this file.
    pub fns: Vec<FnDef>,
}

/// Every analyzed file plus cross-file name indices.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Units in sorted path order (deterministic reports).
    pub units: Vec<SourceUnit>,
    by_name: BTreeMap<String, Vec<FnId>>,
    by_qual: BTreeMap<String, Vec<FnId>>,
}

impl Workspace {
    /// Build the workspace model from `(rel_path, source)` pairs.
    ///
    /// Functions inside test code stay in the tables (so spans stay
    /// accurate) but are excluded from the name indices: a helper named
    /// like a production function inside `#[cfg(test)]` must not
    /// pollute call resolution.
    #[must_use]
    pub fn build(files: &[(String, String)]) -> Self {
        let mut ws = Self::default();
        for (path, src) in files {
            let tokens = lex(src);
            let spans = test_spans(&tokens);
            let code: Vec<Token> = tokens.into_iter().filter(|t| !t.is_comment()).collect();
            let fns = file_functions(path, &code, &spans);
            ws.units.push(SourceUnit {
                path: path.clone(),
                code,
                fns,
            });
        }
        for (u, unit) in ws.units.iter().enumerate() {
            for (f, def) in unit.fns.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                ws.by_name.entry(def.name.clone()).or_default().push((u, f));
                if def.qual != def.name {
                    ws.by_qual.entry(def.qual.clone()).or_default().push((u, f));
                }
            }
        }
        ws
    }

    /// The function behind an id.
    #[must_use]
    pub fn def(&self, id: FnId) -> &FnDef {
        &self.units[id.0].fns[id.1]
    }

    /// All ids, unit-major — the deterministic iteration order every
    /// pass uses.
    #[must_use]
    pub fn fn_ids(&self) -> Vec<FnId> {
        let mut out = Vec::new();
        for (u, unit) in self.units.iter().enumerate() {
            for f in 0..unit.fns.len() {
                out.push((u, f));
            }
        }
        out
    }

    /// Candidates for a call: when the call is path-qualified
    /// (`Type::name`) prefer exact qualified matches, otherwise (and as
    /// a fallback) every non-test function with the bare name.
    #[must_use]
    pub fn resolve(&self, name: &str, type_hint: Option<&str>) -> &[FnId] {
        if let Some(ty) = type_hint {
            if let Some(ids) = self.by_qual.get(&format!("{ty}::{name}")) {
                return ids;
            }
        }
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Resolved caller→callee edges, deduplicated and sorted.
    #[must_use]
    pub fn edges(&self) -> Vec<(FnId, FnId)> {
        let mut edges = BTreeSet::new();
        for (u, unit) in self.units.iter().enumerate() {
            for (f, def) in unit.fns.iter().enumerate() {
                for site in call_sites(&unit.code, def.body.clone()) {
                    for callee in self.resolve(&site.name, site.type_hint.as_deref()) {
                        if *callee != (u, f) {
                            edges.insert(((u, f), *callee));
                        }
                    }
                }
            }
        }
        edges.into_iter().collect()
    }

    /// Render the call graph as Graphviz DOT (the CI debug artifact).
    /// Nodes are `file :: qualified_name`; test functions are dashed.
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let label = |id: FnId| format!("{}::{}", self.units[id.0].path, self.def(id).qual);
        let mut out = String::from(
            "digraph approxit_callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n",
        );
        for id in self.fn_ids() {
            let style = if self.def(id).is_test {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(out, "  \"{}\" [label=\"{0}\"{style}];", label(id));
        }
        for (from, to) in self.edges() {
            let _ = writeln!(out, "  \"{}\" -> \"{}\";", label(from), label(to));
        }
        out.push_str("}\n");
        out
    }
}

/// One syntactic call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Called name (`step` for both `x.step(…)` and `Type::step(…)`).
    pub name: String,
    /// `Some(Type)` when the call is written `Type::name(…)`.
    pub type_hint: Option<String>,
    /// Whether it is a method call (`recv.name(…)`).
    pub is_method: bool,
    /// 1-based position of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
}

/// Scan a body token range for call sites (`name(`, `Type::name(`,
/// `recv.name(`). Macro invocations (`name!(…)`) are not calls.
#[must_use]
pub fn call_sites(code: &[Token], body: std::ops::Range<usize>) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in body.clone() {
        let tok = &code[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if !code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if match_paren(code, i + 1).is_none() {
            continue;
        }
        // `fn name(` is a declaration, not a call.
        if i > 0 && code[i - 1].is_ident("fn") {
            continue;
        }
        let is_method = i > 0 && code[i - 1].is_punct('.');
        let type_hint = (!is_method)
            .then(|| path_qualifier(code, i, body.start))
            .flatten();
        out.push(CallSite {
            name: tok.text.clone(),
            type_hint,
            is_method,
            line: tok.line,
            col: tok.col,
        });
    }
    out
}

/// For `Seg :: name` at `at`, the ident directly before the `::` (the
/// last path segment, usually a type or module name).
pub(crate) fn path_qualifier(code: &[Token], at: usize, floor: usize) -> Option<String> {
    if at < floor + 3 {
        return None;
    }
    (code[at - 1].is_punct(':')
        && code[at - 2].is_punct(':')
        && code[at - 3].kind == TokenKind::Ident)
        .then(|| code[at - 3].text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let files: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect();
        Workspace::build(&files)
    }

    #[test]
    fn cross_file_resolution_by_name_and_qual() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "pub fn helper(x: f64) -> f64 { x }\nimpl S {\n    fn helper(&self) -> f64 { 0.0 }\n}\n"),
            ("crates/b/src/lib.rs", "fn user() -> f64 { helper(1.0) + S::helper() }\n"),
        ]);
        assert_eq!(w.resolve("helper", None).len(), 2);
        assert_eq!(w.resolve("helper", Some("S")).len(), 1);
        assert_eq!(w.def(w.resolve("helper", Some("S"))[0]).qual, "S::helper");
        assert_eq!(w.resolve("nonexistent", None).len(), 0);
    }

    #[test]
    fn test_functions_do_not_resolve() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    pub fn helper() -> f64 { 1.0 }\n}\n",
        )]);
        assert_eq!(w.resolve("helper", None).len(), 0);
        assert!(w.units[0].fns[0].is_test, "still in the table");
    }

    #[test]
    fn call_sites_classify_shapes() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn f(x: S) -> f64 {\n    let a = free(1.0);\n    let b = S::assoc(a);\n    let c = x.method(b);\n    let d = vec![a];\n    drop(d);\n    c\n}\n",
        )]);
        let def = &w.units[0].fns[0];
        let sites = call_sites(&w.units[0].code, def.body.clone());
        let names: Vec<(&str, bool, Option<&str>)> = sites
            .iter()
            .map(|s| (s.name.as_str(), s.is_method, s.type_hint.as_deref()))
            .collect();
        assert!(names.contains(&("free", false, None)));
        assert!(names.contains(&("assoc", false, Some("S"))));
        assert!(names.contains(&("method", true, None)));
        assert!(!names.iter().any(|(n, _, _)| *n == "vec"), "macro skipped");
    }

    #[test]
    fn dot_output_has_edges() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "pub fn leaf() -> f64 { 1.0 }\n"),
            ("crates/b/src/lib.rs", "pub fn root() -> f64 { leaf() }\n"),
        ]);
        let dot = w.to_dot();
        assert!(dot.starts_with("digraph approxit_callgraph"));
        assert!(dot.contains("\"crates/b/src/lib.rs::root\" -> \"crates/a/src/lib.rs::leaf\";"));
        assert_eq!(w.edges().len(), 1);
    }
}
