//! Audit policy configuration.
//!
//! [`AuditConfig::approxit`] is *the* project policy — the allowlists
//! and budgets below are part of the determinism contract documented in
//! `DESIGN.md` §13, not per-run knobs. Fixture tests construct ad-hoc
//! configs; everything else (the `audit` bench binary, CI, the
//! clean-tree self-test) goes through the defaults so there is exactly
//! one source of truth.

use std::path::PathBuf;

/// Where the auditor looks and what it tolerates.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Crate directory names whose outputs feed solver results; these
    /// get the strictest ordering rules (`hash-iter`, `par-reduce`).
    pub result_affecting: Vec<String>,
    /// Files allowed to spawn threads: the deterministic executor
    /// itself.
    pub parallel_home: Vec<String>,
    /// Files allowed to read the wall clock (bench timing only).
    pub wall_clock_allow: Vec<String>,
    /// Files forming the service request path: no panics allowed.
    pub panic_free: Vec<String>,
    /// Files exempt from `par-reduce` (the executor's own internals).
    pub reduce_exempt: Vec<String>,
    /// Maximum `audit:allow` markers per rule, workspace-wide. Staying
    /// under it forces suppressions to stay exceptional.
    pub suppression_budget: usize,
}

impl AuditConfig {
    /// The ApproxIt workspace policy.
    #[must_use]
    pub fn approxit(root: impl Into<PathBuf>) -> Self {
        let own = |s: &[&str]| s.iter().map(|s| (*s).to_owned()).collect();
        Self {
            root: root.into(),
            result_affecting: own(&["approx-arith", "linalg", "solvers", "core"]),
            parallel_home: own(&["crates/gatesim/src/par.rs"]),
            wall_clock_allow: own(&[
                "crates/bench/src/harness.rs",
                "crates/bench/src/bin/perf.rs",
                "crates/bench/src/bin/solverperf.rs",
            ]),
            panic_free: own(&["crates/core/src/service.rs", "crates/core/src/runner.rs"]),
            reduce_exempt: own(&["crates/gatesim/src/par.rs"]),
            suppression_budget: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_self_consistent() {
        let cfg = AuditConfig::approxit("/tmp/x");
        assert!(cfg.result_affecting.iter().any(|c| c == "core"));
        // gatesim is covered via the par-reduce scope, not hash-iter.
        assert!(!cfg.result_affecting.iter().any(|c| c == "gatesim"));
        assert!(cfg.parallel_home == cfg.reduce_exempt);
        assert!(cfg.suppression_budget > 0);
        for path in cfg
            .parallel_home
            .iter()
            .chain(&cfg.wall_clock_allow)
            .chain(&cfg.panic_free)
        {
            assert!(
                path.starts_with("crates/"),
                "allowlists are workspace-relative"
            );
        }
    }
}
