//! Audit policy configuration.
//!
//! [`AuditConfig::approxit`] is *the* project policy — the allowlists
//! and budgets below are part of the determinism contract documented in
//! `DESIGN.md` §13, not per-run knobs. Fixture tests construct ad-hoc
//! configs; everything else (the `audit` bench binary, CI, the
//! clean-tree self-test) goes through the defaults so there is exactly
//! one source of truth.

use std::path::PathBuf;

/// Where the auditor looks and what it tolerates.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Crate directory names whose outputs feed solver results; these
    /// get the strictest ordering rules (`hash-iter`, `par-reduce`).
    pub result_affecting: Vec<String>,
    /// Files allowed to spawn threads: the deterministic executor
    /// itself (the `parx` substrate crate).
    pub parallel_home: Vec<String>,
    /// Files allowed to read the wall clock (bench timing only).
    pub wall_clock_allow: Vec<String>,
    /// Files forming the service request path: no panics allowed.
    pub panic_free: Vec<String>,
    /// Files exempt from `par-reduce` (the executor's own internals).
    pub reduce_exempt: Vec<String>,
    /// Maximum `audit:allow` markers per rule, workspace-wide. Staying
    /// under it forces suppressions to stay exceptional.
    pub suppression_budget: usize,
    /// Crate directory names the taint dataflow pass analyzes (sources
    /// and value flow are tracked across all of them).
    pub taint_crates: Vec<String>,
    /// Crates where *positional* sinks fire: any branch condition,
    /// loop bound, or index expression must be exact.
    pub taint_control: Vec<String>,
    /// Files whose functions are exact-only decision modules: passing
    /// an approximate value to any of them is a `taint-sink`.
    pub taint_decision_files: Vec<String>,
    /// Function names that launder taint by contract (`endorse`, raw
    /// reconstruction): their results are exact.
    pub taint_sanitizers: Vec<String>,
}

impl AuditConfig {
    /// The ApproxIt workspace policy.
    #[must_use]
    pub fn approxit(root: impl Into<PathBuf>) -> Self {
        let own = |s: &[&str]| s.iter().map(|s| (*s).to_owned()).collect();
        Self {
            root: root.into(),
            result_affecting: own(&["approx-arith", "linalg", "solvers", "core"]),
            parallel_home: own(&["crates/parx/src/lib.rs"]),
            wall_clock_allow: own(&[
                "crates/bench/src/harness.rs",
                "crates/bench/src/bin/perf.rs",
                "crates/bench/src/bin/solverperf.rs",
                "crates/bench/src/bin/sparseperf.rs",
            ]),
            panic_free: own(&["crates/core/src/service.rs", "crates/core/src/runner.rs"]),
            reduce_exempt: own(&["crates/parx/src/lib.rs"]),
            suppression_budget: 8,
            taint_crates: own(&["approx-arith", "linalg", "solvers", "core", "gatesim"]),
            taint_control: own(&["core", "solvers"]),
            // `watchdog.rs` is deliberately absent: the watchdog reads
            // approximate state by design (it decides whether the
            // fabric has wedged, not what the answer is).
            taint_decision_files: own(&[
                "crates/core/src/adaptive.rs",
                "crates/core/src/strategy.rs",
                "crates/core/src/incremental.rs",
                "crates/core/src/pid.rs",
                "crates/core/src/modelcheck.rs",
                "crates/core/src/quality.rs",
                "crates/core/src/service.rs",
            ]),
            taint_sanitizers: own(&["endorse", "from_raw"]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_self_consistent() {
        let cfg = AuditConfig::approxit("/tmp/x");
        assert!(cfg.result_affecting.iter().any(|c| c == "core"));
        // gatesim is covered via the par-reduce scope, not hash-iter.
        assert!(!cfg.result_affecting.iter().any(|c| c == "gatesim"));
        assert!(cfg.parallel_home == cfg.reduce_exempt);
        assert!(cfg.suppression_budget > 0);
        // Positional taint sinks only fire inside analyzed crates.
        for c in &cfg.taint_control {
            assert!(cfg.taint_crates.contains(c), "{c} analyzed");
        }
        for f in &cfg.taint_decision_files {
            assert!(f.starts_with("crates/core/src/"), "{f} is a core module");
            assert!(f != "crates/core/src/watchdog.rs");
        }
        assert!(cfg.taint_sanitizers.iter().any(|s| s == "endorse"));
        for path in cfg
            .parallel_home
            .iter()
            .chain(&cfg.wall_clock_allow)
            .chain(&cfg.panic_free)
        {
            assert!(
                path.starts_with("crates/"),
                "allowlists are workspace-relative"
            );
        }
    }
}
