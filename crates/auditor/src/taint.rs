//! Approximation-taint dataflow: statically prove the exact/approximate
//! boundary.
//!
//! ApproxIt's quality guarantee (Def. 1, Eq. 5) assumes the
//! quality-control path — `quality_error`, convergence predicates,
//! controller level decisions, breaker/shedding predicates — is
//! computed *exactly* while only the solver datapath runs on the
//! approximate fabric. This pass proves that separation per build, in
//! the EnerJ tradition: values produced by fabric operations carry an
//! `Approx` taint; taint propagates through bindings, assignments,
//! arguments, and returns (interprocedurally via
//! [`summaries`](crate::summaries)); and an `Approx` value arriving at
//! an exact-only *sink* is a reported violation with a full
//! source→sink trace.
//!
//! - **Sources**: `ArithContext` ops (`add`…`matvec_slice`) on an
//!   approximate-capable context — a constructed `QcsContext` /
//!   `FaultInjector`, or a context *parameter* typed as one (resolved
//!   per call site through [`Summary::ctx_flow`]). A
//!   `set_level(AccuracyLevel::Accurate)` literal reclassifies the
//!   context as exact (the accurate mode is the paper's reference
//!   trajectory); setting any other level reclassifies it approximate.
//! - **Sanitizers**: `ExactContext` / `ScalarPath` contexts,
//!   `RawConverter::from_raw` reconstruction, and the explicit
//!   `endorse()` boundary function.
//! - **Sinks**: `quality_error`'s accurate operand, value arguments of
//!   the decision modules (`core::adaptive`, `core::modelcheck`, …),
//!   and any branch condition, `for`-loop bound, or index expression in
//!   `core`/`solvers`.
//!
//! The lattice is `Exact ⊑ Unknown ⊑ Approx` with join = max. Only a
//! definite `Approx` reports at a sink: `Unknown` records analysis
//! imprecision (unresolved names, foreign calls) and never gates, so
//! the pass stays a proof of the *modeled* flows rather than a noisy
//! over-approximation. `DESIGN.md` §14 documents the model and its
//! known imprecisions (out-parameter flows across calls, match-arm
//! local bindings).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{path_qualifier, FnId, Workspace};
use crate::config::AuditConfig;
use crate::lexer::{Token, TokenKind};
use crate::report::{Severity, TraceHop, Violation};
use crate::rules::crate_of;
use crate::summaries::{fixpoint, Summary};
use crate::symbols::{
    match_brace, match_bracket, match_paren, split_top_level, CtxKind, FnDef, ParamKind,
    APPROX_CTX_TYPES, EXACT_CTX_TYPES,
};

/// The taint lattice: `Exact ⊑ Unknown ⊑ Approx` (join = max).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Taint {
    /// Provably unaffected by fabric operations.
    #[default]
    Exact,
    /// The analysis cannot tell (unresolved call, foreign code). Never
    /// reported — imprecision must not gate CI.
    Unknown,
    /// Definitely derived from an approximate fabric operation.
    Approx,
}

impl Taint {
    /// Lattice join (least upper bound).
    #[must_use]
    pub fn join(self, other: Self) -> Self {
        self.max(other)
    }
}

/// `ArithContext` operations whose results (or out-slices) are fabric
/// values when the context is approximate.
pub const CTX_OPS: &[&str] = &[
    "add",
    "sub",
    "mul",
    "div",
    "sum",
    "dot",
    "add_slice",
    "sub_slice",
    "scale_slice",
    "axpy_slice",
    "add_assign_slice",
    "axpy_assign_slice",
    "dot_slice",
    "sum_slice",
    "matvec_slice",
    "spmv_slice",
];

/// Hop cap per trace (a path deeper than this is summarized, not lost:
/// the endpoints always survive).
pub const MAX_TRACE: usize = 12;

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "in", "return", "let", "loop", "break", "continue",
    "move", "ref", "mut", "as", "fn", "impl", "where", "dyn", "pub", "use", "struct", "enum",
    "trait", "mod", "const", "static", "type", "unsafe", "crate", "super", "Self",
];

fn bit(j: usize) -> u64 {
    1u64.checked_shl(u32::try_from(j).unwrap_or(64))
        .unwrap_or(0)
}

/// Abstract value: taint plus symbolic provenance.
///
/// `sink` is the conservative taint used at sink checks (ops on an
/// approx-*typed* context parameter count, because the function must be
/// safe for every context it accepts). `ret` is the definite taint used
/// for summaries (the same ops stay symbolic in `from_ctx`, so an exact
/// caller is not poisoned).
#[derive(Debug, Clone, Default)]
pub struct Val {
    /// Taint as seen by sinks in the current function.
    pub sink: Taint,
    /// Taint as exported through the return value.
    pub ret: Taint,
    /// Value parameters (bitset) whose data reached this value.
    pub from_params: u64,
    /// Context parameters (bitset) whose fabric ops produced this value.
    pub from_ctx: u64,
    /// Source-side hops explaining the strongest taint.
    pub trace: Vec<TraceHop>,
}

impl Val {
    fn unknown() -> Self {
        Self {
            sink: Taint::Unknown,
            ret: Taint::Unknown,
            ..Self::default()
        }
    }

    /// Lattice join; the trace follows the strongest `sink` taint.
    pub fn join(&mut self, other: &Self) {
        if other.sink > self.sink || (self.trace.is_empty() && other.sink >= self.sink) {
            self.trace.clone_from(&other.trace);
        }
        self.sink = self.sink.join(other.sink);
        self.ret = self.ret.join(other.ret);
        self.from_params |= other.from_params;
        self.from_ctx |= other.from_ctx;
    }

    fn push_hop(&mut self, hop: TraceHop) {
        if self.trace.len() < MAX_TRACE {
            self.trace.push(hop);
        }
    }
}

/// A variable known to hold an arithmetic context.
#[derive(Debug, Clone)]
struct CtxVar {
    kind: CtxKind,
    /// `Some(j)` when the context is (an alias of) parameter `j`.
    param: Option<usize>,
    line: u32,
    col: u32,
    /// Human description for trace hops.
    what: String,
}

#[derive(Debug, Clone, Default)]
struct Binding {
    val: Val,
    ctx: Option<CtxVar>,
}

/// Result of evaluating an expression slice.
#[derive(Debug, Default)]
struct EvalOut {
    val: Val,
    /// Set when the expression *is* a context (variable, `.clone()`, or
    /// constructor) — lets `let` bindings track context aliases.
    ctx: Option<CtxVar>,
}

/// Ties a workspace, its current summaries, and the policy together;
/// analyzes one function at a time.
pub struct Analyzer<'w> {
    ws: &'w Workspace,
    sums: &'w BTreeMap<FnId, Summary>,
    cfg: &'w AuditConfig,
}

impl<'w> Analyzer<'w> {
    /// Wire up an analyzer over the current summary map.
    #[must_use]
    pub fn new(ws: &'w Workspace, sums: &'w BTreeMap<FnId, Summary>, cfg: &'w AuditConfig) -> Self {
        Self { ws, sums, cfg }
    }

    /// Intraprocedural analysis producing the function's summary
    /// (no violations reported).
    #[must_use]
    pub fn summarize(&self, id: FnId) -> Summary {
        let mut pass = FnPass::new(self, id, None);
        pass.run()
    }

    /// Final reporting pass: same analysis, with sink violations
    /// appended to `out`.
    pub fn report_into(&self, id: FnId, out: &mut Vec<Violation>) {
        let mut pass = FnPass::new(self, id, Some(out));
        let _ = pass.run();
    }
}

/// One function's walk: environment, return accumulator, sink reports.
struct FnPass<'w, 'o> {
    an: &'o Analyzer<'w>,
    file: &'w str,
    code: &'w [Token],
    def: &'w FnDef,
    /// Whether branch/loop/index sinks are active (control crates only).
    control: bool,
    env: BTreeMap<String, Binding>,
    ret: Val,
    out: Option<&'o mut Vec<Violation>>,
    reporting: bool,
    seen: BTreeSet<(&'static str, u32, u32)>,
}

impl<'w, 'o> FnPass<'w, 'o> {
    fn new(an: &'o Analyzer<'w>, id: FnId, out: Option<&'o mut Vec<Violation>>) -> Self {
        let unit = &an.ws.units[id.0];
        let def = &unit.fns[id.1];
        let control =
            crate_of(&unit.path).is_some_and(|c| an.cfg.taint_control.iter().any(|t| t == c));
        Self {
            an,
            file: &unit.path,
            code: &unit.code,
            def,
            control,
            env: BTreeMap::new(),
            ret: Val::default(),
            out,
            reporting: false,
            seen: BTreeSet::new(),
        }
    }

    fn run(&mut self) -> Summary {
        for (j, p) in self.def.params.iter().enumerate() {
            let binding = match p.kind {
                ParamKind::Ctx(kind) => Binding {
                    ctx: Some(CtxVar {
                        kind,
                        param: Some(j),
                        line: self.def.line,
                        col: self.def.col,
                        what: format!("context parameter `{}`", p.name),
                    }),
                    val: Val::default(),
                },
                ParamKind::Value => Binding {
                    val: Val {
                        from_params: bit(j),
                        ..Val::default()
                    },
                    ctx: None,
                },
            };
            self.env.insert(p.name.clone(), binding);
        }
        // Two walks: the first settles loop-carried taint (a value
        // tainted late in a loop body is visible early on the rerun),
        // the second reports. The env persists between walks.
        let body = self.def.body.clone();
        self.reporting = false;
        self.walk(body.clone(), false);
        self.reporting = self.out.is_some();
        self.walk(body, true);
        Summary {
            intrinsic: self.ret.ret,
            value_flow: self.ret.from_params,
            ctx_flow: self.ret.from_ctx,
            trace: self.ret.trace.clone(),
        }
    }

    // -- statement layer ----------------------------------------------

    fn walk(&mut self, range: std::ops::Range<usize>, tail_to_ret: bool) {
        let mut i = range.start;
        let mut last: Option<(usize, bool)> = None;
        while i < range.end {
            let start = i;
            i = self.stmt(i, range.end);
            if i <= start {
                i = start + 1; // forward progress on malformed input
            }
            let semi = self
                .code
                .get(i.saturating_sub(1))
                .is_some_and(|t| t.is_punct(';'));
            last = Some((start, semi));
        }
        // A `;`-less tail statement is the return value. Re-evaluating
        // the whole construct joins every contributing ident (branch
        // values of a tail `if`/`match` included) — over-approximate in
        // the safe direction for summaries.
        if tail_to_ret {
            if let Some((start, false)) = last {
                let v = self.eval(start..range.end);
                self.ret.join(&v.val);
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn stmt(&mut self, i: usize, end: usize) -> usize {
        let tok = &self.code[i];
        if tok.is_punct('{') {
            let close = match_brace(self.code, i).unwrap_or(end).min(end);
            self.walk(i + 1..close, false);
            return (close + 1).min(end);
        }
        if tok.is_punct(';') {
            return i + 1;
        }
        if tok.is_punct('#') {
            return self.skip_attr(i, end);
        }
        if tok.kind == TokenKind::Ident {
            match tok.text.as_str() {
                "let" => return self.let_stmt(i, end),
                "if" | "while" => return self.cond_stmt(i, end),
                "match" => return self.match_stmt(i, end),
                "for" => return self.for_stmt(i, end),
                "loop" => {
                    // Walk the body twice so loop-carried taint (a
                    // value tainted late in the body, read early) is
                    // seen on the rerun; the dedup set prevents double
                    // reports.
                    let mut j = i + 1;
                    while j < end && !self.code[j].is_punct('{') {
                        j += 1;
                    }
                    if j >= end {
                        return end;
                    }
                    let close = match_brace(self.code, j).unwrap_or(end).min(end);
                    self.walk(j + 1..close, false);
                    self.walk(j + 1..close, false);
                    return (close + 1).min(end);
                }
                "unsafe" | "else" | "pub" => return i + 1,
                "return" | "break" => {
                    let stop = self.stmt_end(i + 1, end);
                    let expr_end = if self
                        .code
                        .get(stop.saturating_sub(1))
                        .is_some_and(|t| t.is_punct(';'))
                    {
                        stop - 1
                    } else {
                        stop
                    };
                    if tok.is_ident("return") && expr_end > i + 1 {
                        let v = self.eval(i + 1..expr_end);
                        self.ret.join(&v.val);
                    }
                    return stop;
                }
                "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "type" | "const"
                | "static" | "macro_rules" => return self.skip_item(i, end),
                _ => {}
            }
        }
        self.expr_stmt(i, end)
    }

    fn let_stmt(&mut self, i: usize, end: usize) -> usize {
        // Find the init `=` at bracket- and angle-depth 0.
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut eq = None;
        let mut j = i + 1;
        while j < end {
            let t = &self.code[j];
            match t.kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                TokenKind::Punct('<') if depth == 0 => angle += 1,
                TokenKind::Punct('>')
                    if depth == 0 && angle > 0 && !self.code[j - 1].is_punct('-') =>
                {
                    angle -= 1;
                }
                TokenKind::Punct('=') if depth == 0 && angle == 0 => {
                    if !self.code.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                        eq = Some(j);
                    }
                    break;
                }
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            if depth < 0 {
                break;
            }
            j += 1;
        }
        // Pattern idents (before any `:` type annotation).
        let pat_end = eq.unwrap_or(j);
        let mut names = Vec::new();
        let mut k = i + 1;
        while k < pat_end {
            let t = &self.code[k];
            if t.is_punct(':')
                && !self.code.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !self.code[k - 1].is_punct(':')
            {
                break; // type annotation
            }
            if t.kind == TokenKind::Ident && !t.is_ident("mut") && !t.is_ident("ref") {
                names.push(t.text.clone());
            }
            k += 1;
        }
        let Some(eq) = eq else {
            for n in names {
                self.env.insert(n, Binding::default());
            }
            return (j + 1).min(end);
        };
        let (rhs_end, next) = self.rhs_end(eq + 1, end, true);
        let out = self.eval(eq + 1..rhs_end);
        if names.len() == 1 {
            self.env.insert(
                names.remove(0),
                Binding {
                    val: out.val,
                    ctx: out.ctx,
                },
            );
        } else {
            for n in names {
                self.env.insert(
                    n,
                    Binding {
                        val: out.val.clone(),
                        ctx: None,
                    },
                );
            }
        }
        next
    }

    /// End of an initializer/assignment RHS: the `;` at depth 0 (braces
    /// nest — a `match`/`if` RHS is one expression). With `let_else`,
    /// an `else` not preceded by `}` is the `let … else { }` diverging
    /// arm, not an `if`'s.
    fn rhs_end(&mut self, from: usize, end: usize, let_else: bool) -> (usize, usize) {
        let mut depth = 0i32;
        let mut j = from;
        while j < end {
            let t = &self.code[j];
            match t.kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if depth < 0 {
                        return (j, j);
                    }
                }
                TokenKind::Punct(';') if depth == 0 => return (j, j + 1),
                _ => {}
            }
            if let_else
                && depth == 0
                && t.is_ident("else")
                && j > from
                && !self.code[j - 1].is_punct('}')
            {
                // `let Pat = expr else { … };`
                let rhs = j;
                let mut k = j + 1;
                while k < end && !self.code[k].is_punct('{') {
                    k += 1;
                }
                let close = match_brace(self.code, k).unwrap_or(end).min(end);
                return (rhs, (close + 2).min(end)); // past `}` and `;`
            }
            j += 1;
        }
        (end, end)
    }

    fn cond_stmt(&mut self, i: usize, end: usize) -> usize {
        let mut j = i;
        loop {
            let kw = (self.code[j].line, self.code[j].col);
            let what = if self.code[j].is_ident("while") {
                "`while` condition"
            } else {
                "branch condition"
            };
            let Some((stop, has_block)) = self.cond_end(j + 1, end) else {
                return end;
            };
            let v = self.eval(j + 1..stop);
            self.positional_sink("taint-branch", kw, what, &v.val);
            if !has_block {
                return stop; // match-arm guard: stop before `=>`
            }
            let close = match_brace(self.code, stop).unwrap_or(end).min(end);
            self.walk(stop + 1..close, false);
            if self.code[j].is_ident("while") {
                // Loop-carried taint: re-check the condition against
                // the post-body env, then rerun the body.
                let v = self.eval(j + 1..stop);
                self.positional_sink("taint-branch", kw, what, &v.val);
                self.walk(stop + 1..close, false);
                return (close + 1).min(end);
            }
            let k = close + 1;
            if self.code.get(k).is_some_and(|t| t.is_ident("else")) {
                if self.code.get(k + 1).is_some_and(|t| t.is_ident("if")) {
                    j = k + 1;
                    continue;
                }
                if self.code.get(k + 1).is_some_and(|t| t.is_punct('{')) {
                    let c2 = match_brace(self.code, k + 1).unwrap_or(end).min(end);
                    self.walk(k + 2..c2, false);
                    return (c2 + 1).min(end);
                }
            }
            return k.min(end);
        }
    }

    fn match_stmt(&mut self, i: usize, end: usize) -> usize {
        let Some((brace, true)) = self.cond_end(i + 1, end) else {
            return end;
        };
        let kw = (self.code[i].line, self.code[i].col);
        let v = self.eval(i + 1..brace);
        self.positional_sink("taint-branch", kw, "`match` scrutinee", &v.val);
        let close = match_brace(self.code, brace).unwrap_or(end).min(end);
        self.walk(brace + 1..close, false);
        (close + 1).min(end)
    }

    fn for_stmt(&mut self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut in_at = None;
        let mut j = i + 1;
        while j < end {
            let t = &self.code[j];
            match t.kind {
                TokenKind::Punct('(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth -= 1,
                _ => {}
            }
            if depth == 0 && t.is_ident("in") {
                in_at = Some(j);
                break;
            }
            if depth == 0 && t.is_punct('{') {
                break;
            }
            j += 1;
        }
        let Some(in_at) = in_at else { return i + 1 };
        let Some((brace, true)) = self.cond_end(in_at + 1, end) else {
            return end;
        };
        let kw = (self.code[i].line, self.code[i].col);
        let v = self.eval(in_at + 1..brace);
        // Only numeric range bounds are control decisions: iterating a
        // collection's *elements* has an exact trip count (length
        // metadata), even when the values are approximate — those taint
        // the loop variable instead.
        if self.range_bound(in_at + 1, brace) {
            self.positional_sink("taint-loop-bound", kw, "`for`-loop bound", &v.val);
        }
        // The loop variable holds elements of the iterated value.
        for k in i + 1..in_at {
            let t = &self.code[k];
            if t.kind == TokenKind::Ident && !t.is_ident("mut") && !t.is_ident("ref") {
                self.env.insert(
                    t.text.clone(),
                    Binding {
                        val: v.val.clone(),
                        ctx: None,
                    },
                );
            }
        }
        let close = match_brace(self.code, brace).unwrap_or(end).min(end);
        // Twice: loop-carried taint must be visible on the rerun.
        self.walk(brace + 1..close, false);
        self.walk(brace + 1..close, false);
        (close + 1).min(end)
    }

    fn expr_stmt(&mut self, i: usize, end: usize) -> usize {
        // Assignment? First standalone `=` at depth 0 before `;`/`{`.
        let mut depth = 0i32;
        let mut assign = None;
        let mut j = i;
        while j < end {
            let t = &self.code[j];
            match t.kind {
                TokenKind::Punct('(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth -= 1,
                TokenKind::Punct('{' | ';') if depth == 0 => break,
                TokenKind::Punct('}') if depth == 0 => break,
                TokenKind::Punct('=') if depth == 0 && j > i => {
                    let next_is = |c| self.code.get(j + 1).is_some_and(|t: &Token| t.is_punct(c));
                    let prev = match self.code[j - 1].kind {
                        TokenKind::Punct(c) => Some(c),
                        _ => None,
                    };
                    if next_is('=')
                        || next_is('>')
                        || matches!(prev, Some('<' | '>' | '!' | '=' | '.'))
                    {
                        j += 1;
                        continue;
                    }
                    let compound =
                        matches!(prev, Some('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'));
                    assign = Some((j, compound));
                    break;
                }
                _ => {}
            }
            if depth < 0 {
                break;
            }
            j += 1;
        }
        if let Some((eq, compound)) = assign {
            let lhs_end = if compound { eq - 1 } else { eq };
            let (rhs_end, next) = self.rhs_end(eq + 1, end, false);
            let v = self.eval(eq + 1..rhs_end);
            let _ = self.eval(i..lhs_end); // index-sink checks inside the lvalue
            let base = self.code[i..lhs_end]
                .iter()
                .find(|t| t.kind == TokenKind::Ident && !t.is_ident("mut"))
                .map(|t| t.text.clone());
            if let Some(base) = base {
                let single = lhs_end == i + 1;
                let entry = self.env.entry(base).or_default();
                entry.val.join(&v.val);
                if single && !compound {
                    if let Some(ctx) = v.ctx {
                        entry.ctx = Some(ctx);
                    }
                }
            }
            return next;
        }
        // Plain expression statement.
        let stop = self.stmt_end(i, end);
        let expr_end = if self
            .code
            .get(stop.saturating_sub(1))
            .is_some_and(|t| t.is_punct(';'))
        {
            stop - 1
        } else {
            stop
        };
        if expr_end > i {
            let _ = self.eval(i..expr_end);
        }
        stop
    }

    /// End of a plain expression statement: past the `;` at depth 0, or
    /// *at* a block-opening `{` at depth 0 (handled as a block next).
    fn stmt_end(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = from;
        while j < end {
            let t = &self.code[j];
            match t.kind {
                TokenKind::Punct('(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth -= 1,
                TokenKind::Punct('{') => {
                    if depth == 0 {
                        return j;
                    }
                    depth += 1;
                }
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        end
    }

    fn skip_item(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            let t = &self.code[j];
            match t.kind {
                TokenKind::Punct('(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth -= 1,
                TokenKind::Punct('{') if depth == 0 => {
                    return (match_brace(self.code, j).unwrap_or(end) + 1).min(end);
                }
                TokenKind::Punct(';') if depth == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        end
    }

    fn skip_attr(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.code.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if self.code.get(j).is_some_and(|t| t.is_punct('[')) {
            return (match_bracket(self.code, j).unwrap_or(end) + 1).min(end);
        }
        i + 1
    }

    /// Whether a `for`-loop bound expression is a numeric range
    /// (`a..b` / `a..=b` at top level) — the only shape whose trip
    /// count depends on the bound *values*.
    fn range_bound(&self, from: usize, to: usize) -> bool {
        let mut depth = 0i32;
        let mut k = from;
        while k + 1 < to {
            match self.code[k].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                TokenKind::Punct('.') if depth == 0 && self.code[k + 1].is_punct('.') => {
                    return true;
                }
                _ => {}
            }
            k += 1;
        }
        false
    }

    /// First `{` (or a match-guard `=>`) at paren/bracket depth 0.
    fn cond_end(&self, from: usize, end: usize) -> Option<(usize, bool)> {
        let mut depth = 0i32;
        let mut j = from;
        while j < end {
            let t = &self.code[j];
            match t.kind {
                TokenKind::Punct('(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth -= 1,
                TokenKind::Punct('{') if depth == 0 => return Some((j, true)),
                TokenKind::Punct('=')
                    if depth == 0 && self.code.get(j + 1).is_some_and(|t| t.is_punct('>')) =>
                {
                    return Some((j, false));
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    // -- expression layer ---------------------------------------------

    /// Evaluate an expression slice: joins every contributing value,
    /// handles calls/ctx ops/macros, and runs nested sink checks
    /// (branches, loop bounds, indexes inside the slice).
    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, range: std::ops::Range<usize>) -> EvalOut {
        if let Some(out) = self.ctx_expr(range.clone()) {
            return out;
        }
        let mut acc = Val::default();
        let mut i = range.start;
        while i < range.end {
            let tok = &self.code[i];
            match tok.kind {
                TokenKind::Ident => match tok.text.as_str() {
                    "let" => {
                        while i < range.end && !self.code[i].is_punct('=') {
                            i += 1;
                        }
                        i += 1;
                    }
                    "if" | "while" => {
                        let kw = (tok.line, tok.col);
                        let what = if tok.is_ident("while") {
                            "`while` condition"
                        } else {
                            "branch condition"
                        };
                        if let Some((stop, _)) = self.cond_end(i + 1, range.end) {
                            let v = self.eval(i + 1..stop);
                            self.positional_sink("taint-branch", kw, what, &v.val);
                            acc.join(&v.val);
                            i = stop;
                        } else {
                            i += 1;
                        }
                    }
                    "match" => {
                        let kw = (tok.line, tok.col);
                        if let Some((stop, true)) = self.cond_end(i + 1, range.end) {
                            let v = self.eval(i + 1..stop);
                            self.positional_sink("taint-branch", kw, "`match` scrutinee", &v.val);
                            acc.join(&v.val);
                            i = stop;
                        } else {
                            i += 1;
                        }
                    }
                    "for" => {
                        let kw = (tok.line, tok.col);
                        let mut found = false;
                        if let Some(in_at) =
                            (i + 1..range.end).find(|&k| self.code[k].is_ident("in"))
                        {
                            if let Some((stop, true)) = self.cond_end(in_at + 1, range.end) {
                                let v = self.eval(in_at + 1..stop);
                                if self.range_bound(in_at + 1, stop) {
                                    self.positional_sink(
                                        "taint-loop-bound",
                                        kw,
                                        "`for`-loop bound",
                                        &v.val,
                                    );
                                }
                                acc.join(&v.val);
                                i = stop;
                                found = true;
                            }
                        }
                        if !found {
                            i += 1;
                        }
                    }
                    "return" => {
                        let mut depth = 0i32;
                        let mut stop = range.end;
                        for k in i + 1..range.end {
                            match self.code[k].kind {
                                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                                TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                                TokenKind::Punct(';') if depth == 0 => {
                                    stop = k;
                                    break;
                                }
                                _ => {}
                            }
                            if depth < 0 {
                                stop = k;
                                break;
                            }
                        }
                        if stop > i + 1 {
                            let v = self.eval(i + 1..stop);
                            self.ret.join(&v.val);
                        }
                        i = stop;
                    }
                    "fn" => i = self.skip_item(i, range.end),
                    _ if KEYWORDS.contains(&tok.text.as_str()) => i += 1,
                    _ => {
                        let next = self.code.get(i + 1);
                        if next.is_some_and(|t| t.is_punct('!')) {
                            // Macro: evaluate the delimited arguments.
                            let open = i + 2;
                            let close = match self.code.get(open).map(|t| &t.kind) {
                                Some(TokenKind::Punct('(')) => match_paren(self.code, open),
                                Some(TokenKind::Punct('[')) => match_bracket(self.code, open),
                                Some(TokenKind::Punct('{')) => match_brace(self.code, open),
                                _ => None,
                            };
                            if let Some(close) = close.filter(|c| *c < range.end) {
                                let v = self.eval(open + 1..close);
                                acc.join(&v.val);
                                i = close + 1;
                            } else {
                                i += 1;
                            }
                        } else if next.is_some_and(|t| t.is_punct('(')) {
                            let (v, next_i) = self.handle_call(i, range.clone());
                            acc.join(&v);
                            i = next_i;
                        } else if next.is_some_and(|t| t.is_punct(':'))
                            && self.code.get(i + 2).is_some_and(|t| t.is_punct(':'))
                        {
                            i += 1; // path segment, not a value read
                        } else {
                            match self.env.get(&tok.text) {
                                Some(b) if b.ctx.is_some() => {} // bare context mention
                                Some(b) => acc.join(&b.val.clone()),
                                None => acc.join(&Val::unknown()),
                            }
                            i += 1;
                        }
                    }
                },
                TokenKind::Punct('[') => {
                    let prev = (i > range.start).then(|| &self.code[i - 1]);
                    let is_index = prev.is_some_and(|p| {
                        (p.kind == TokenKind::Ident && !KEYWORDS.contains(&p.text.as_str()))
                            || p.is_punct(')')
                            || p.is_punct(']')
                    });
                    if let Some(close) = match_bracket(self.code, i).filter(|c| *c <= range.end) {
                        let v = self.eval(i + 1..close);
                        if is_index {
                            let at = (tok.line, tok.col);
                            self.positional_sink("taint-index", at, "index expression", &v.val);
                        }
                        acc.join(&v.val);
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
                TokenKind::Punct('#') => i = self.skip_attr(i, range.end),
                _ => i += 1,
            }
        }
        EvalOut {
            val: acc,
            ctx: None,
        }
    }

    /// Recognize expressions that *are* a context: a context variable,
    /// its `.clone()`, or a context-type constructor (`QcsContext::…`,
    /// `FaultInjector::…`, `ExactContext::…`, `ScalarPath::…`),
    /// optionally behind `&`/`&mut`.
    fn ctx_expr(&mut self, range: std::ops::Range<usize>) -> Option<EvalOut> {
        let mut s = range.start;
        while s < range.end && (self.code[s].is_punct('&') || self.code[s].is_ident("mut")) {
            s += 1;
        }
        let len = range.end - s;
        if len == 0 {
            return None;
        }
        let first = &self.code[s];
        if first.kind != TokenKind::Ident {
            return None;
        }
        // `ctx` or `ctx.clone()`
        let plain = len == 1;
        let cloned = len == 5
            && self.code[s + 1].is_punct('.')
            && self.code[s + 2].is_ident("clone")
            && self.code[s + 3].is_punct('(')
            && self.code[s + 4].is_punct(')');
        if plain || cloned {
            let b = self.env.get(&first.text)?;
            let ctx = b.ctx.clone()?;
            return Some(EvalOut {
                val: b.val.clone(),
                ctx: Some(ctx),
            });
        }
        // `Type::ctor(…)` spanning the whole slice.
        let exact = EXACT_CTX_TYPES.contains(&first.text.as_str());
        let approx = APPROX_CTX_TYPES.contains(&first.text.as_str());
        if (exact || approx)
            && len >= 5
            && self.code[s + 1].is_punct(':')
            && self.code[s + 2].is_punct(':')
            && self.code[s + 3].kind == TokenKind::Ident
            && self.code[s + 4].is_punct('(')
            && match_paren(self.code, s + 4) == Some(range.end - 1)
        {
            let ctor = format!("`{}::{}`", first.text, self.code[s + 3].text);
            let (line, col) = (first.line, first.col);
            let _ = self.eval(s + 5..range.end - 1); // nested sink checks
            return Some(EvalOut {
                val: Val::default(),
                ctx: Some(CtxVar {
                    kind: if exact {
                        CtxKind::Exact
                    } else {
                        CtxKind::Approx
                    },
                    param: None,
                    line,
                    col,
                    what: ctor,
                }),
            });
        }
        None
    }

    #[allow(clippy::too_many_lines)]
    fn handle_call(&mut self, i: usize, range: std::ops::Range<usize>) -> (Val, usize) {
        let name = self.code[i].text.clone();
        let open = i + 1;
        let Some(close) = match_paren(self.code, open).filter(|c| *c <= range.end) else {
            return (Val::default(), i + 1);
        };
        let args: Vec<std::ops::Range<usize>> = split_top_level(&self.code[open + 1..close], ',')
            .into_iter()
            .map(|r| r.start + open + 1..r.end + open + 1)
            .filter(|r| !r.is_empty())
            .collect();
        let is_method = i > 0 && self.code[i - 1].is_punct('.');
        let type_hint = if is_method {
            None
        } else {
            path_qualifier(self.code, i, self.def.body.start)
        };

        let mut arg_vals = Vec::with_capacity(args.len());
        let mut arg_ctx = Vec::with_capacity(args.len());
        for r in &args {
            let out = self.eval(r.clone());
            arg_vals.push(out.val);
            arg_ctx.push(out.ctx);
        }

        // Receiver: leftmost ident of an `a.b.name(` chain.
        let base = if is_method {
            let mut j = i - 1; // at '.'
            let mut found = None;
            while j > self.def.body.start
                && self.code[j].is_punct('.')
                && self.code[j - 1].kind == TokenKind::Ident
            {
                found = Some(self.code[j - 1].text.clone());
                if j < 2 {
                    break;
                }
                j -= 2;
            }
            found
        } else {
            None
        };

        // Method on a known context variable?
        if let Some(bname) = &base {
            if let Some(ctx) = self.env.get(bname).and_then(|b| b.ctx.clone()) {
                return (
                    self.ctx_method(&name, &ctx, bname, i, &args, &arg_vals),
                    close + 1,
                );
            }
        }

        // Sanitizer: evaluated args keep their sink checks, the result
        // is exact by contract.
        if self.an.cfg.taint_sanitizers.iter().any(|s| s == &name) {
            return (Val::default(), close + 1);
        }

        let site = |note: String| TraceHop {
            file: self.file.to_owned(),
            line: self.code[i].line,
            col: self.code[i].col,
            note,
        };
        let cands: Vec<FnId> = self.an.ws.resolve(&name, type_hint.as_deref()).to_vec();
        let mut result = Val::default();
        if cands.is_empty() {
            // Unresolved: join receiver and arguments (incl. closures —
            // their bodies were evaluated inline above), degrade to
            // Unknown, and treat an approximate context argument as
            // producing fabric results.
            result.join(&Val::unknown());
            for v in &arg_vals {
                result.join(v);
            }
            let joined = [base.as_deref(), Some(name.as_str())]
                .into_iter()
                .flatten()
                .filter_map(|n| self.env.get(n))
                .filter(|b| b.ctx.is_none())
                .map(|b| b.val.clone())
                .collect::<Vec<_>>();
            for v in joined {
                result.join(&v);
            }
            for (k, c) in arg_ctx.iter().enumerate() {
                let Some(cv) = c else { continue };
                if cv.kind != CtxKind::Approx {
                    continue;
                }
                let mut v = Val {
                    sink: Taint::Approx,
                    ..Val::default()
                };
                v.push_hop(TraceHop {
                    file: self.file.to_owned(),
                    line: cv.line,
                    col: cv.col,
                    note: format!("approximate {}", cv.what),
                });
                v.push_hop(site(format!("passed to unresolved `{name}`")));
                if let Some(j) = cv.param {
                    v.from_ctx |= bit(j);
                } else {
                    v.ret = Taint::Approx;
                }
                let _ = k;
                result.join(&v);
            }
        } else {
            for c in &cands {
                let cd = self.an.ws.def(*c);
                let s = self.an.sums.get(c).cloned().unwrap_or_default();
                if s.intrinsic > Taint::Exact {
                    let mut v = Val {
                        sink: s.intrinsic,
                        ret: s.intrinsic,
                        trace: s.trace.clone(),
                        ..Val::default()
                    };
                    v.push_hop(site(format!("returned from `{name}`")));
                    result.join(&v);
                }
                let has_self = cd.params.first().is_some_and(|p| p.name == "self");
                let offset = usize::from(has_self && is_method);
                if offset == 1 && s.value_flow & 1 != 0 {
                    if let Some(b) = base.as_deref().and_then(|n| self.env.get(n)) {
                        if b.ctx.is_none() {
                            let mut v = b.val.clone();
                            v.push_hop(site(format!("receiver flows through `{name}`")));
                            result.join(&v);
                        }
                    }
                }
                for (k, _r) in args.iter().enumerate() {
                    let p = k + offset;
                    let Some(param) = cd.params.get(p) else {
                        continue;
                    };
                    match param.kind {
                        ParamKind::Value => {
                            if s.value_flow & bit(p) != 0 {
                                let mut v = arg_vals[k].clone();
                                v.push_hop(site(format!(
                                    "argument `{}` flows through `{name}`",
                                    param.name
                                )));
                                result.join(&v);
                            }
                        }
                        ParamKind::Ctx(_) => {
                            if s.ctx_flow & bit(p) == 0 {
                                continue;
                            }
                            let resolved = arg_ctx[k].clone().or_else(|| {
                                self.tokens_have_approx_ctx(args[k].clone())
                                    .then(|| CtxVar {
                                        kind: CtxKind::Approx,
                                        param: None,
                                        line: self.code[args[k].start].line,
                                        col: self.code[args[k].start].col,
                                        what: "approximate context expression".to_owned(),
                                    })
                            });
                            let Some(cv) = resolved else { continue };
                            if cv.kind != CtxKind::Approx {
                                continue;
                            }
                            let mut v = Val {
                                sink: Taint::Approx,
                                trace: vec![TraceHop {
                                    file: self.file.to_owned(),
                                    line: cv.line,
                                    col: cv.col,
                                    note: format!("approximate {}", cv.what),
                                }],
                                ..Val::default()
                            };
                            for hop in &s.trace {
                                v.push_hop(hop.clone());
                            }
                            v.push_hop(site(format!("fabric ops inside `{name}`")));
                            if let Some(j) = cv.param {
                                v.from_ctx |= bit(j);
                            } else {
                                v.ret = Taint::Approx;
                            }
                            result.join(&v);
                        }
                    }
                }
            }
        }
        self.sink_call(&name, &cands, &arg_vals, i);
        (result, close + 1)
    }

    /// A method call whose receiver is a known context variable.
    fn ctx_method(
        &mut self,
        name: &str,
        ctx: &CtxVar,
        bname: &str,
        name_at: usize,
        args: &[std::ops::Range<usize>],
        arg_vals: &[Val],
    ) -> Val {
        if name == "set_level" {
            // `set_level(AccuracyLevel::Accurate)` pins the reference
            // trajectory: the context becomes exact. Any other argument
            // (a variable, another literal) makes it approximate.
            let accurate = args
                .iter()
                .any(|r| self.code[r.clone()].iter().any(|t| t.is_ident("Accurate")));
            if let Some(c) = self.env.get_mut(bname).and_then(|b| b.ctx.as_mut()) {
                c.kind = if accurate {
                    CtxKind::Exact
                } else {
                    CtxKind::Approx
                };
            }
            return Val::default();
        }
        if !CTX_OPS.contains(&name) {
            // Telemetry and admin methods (`level`, `counts`,
            // `approx_energy`, …) are control state, not fabric data.
            return Val::default();
        }
        let mut v = Val::default();
        for a in arg_vals {
            v.join(a);
        }
        if ctx.kind == CtxKind::Approx {
            v.sink = Taint::Approx;
            v.trace = vec![TraceHop {
                file: self.file.to_owned(),
                line: self.code[name_at].line,
                col: self.code[name_at].col,
                note: format!("fabric op `.{name}` on {}", ctx.what),
            }];
            if let Some(j) = ctx.param {
                v.from_ctx |= bit(j);
            } else {
                v.ret = Taint::Approx;
            }
        }
        // Slice kernels write fabric results into their out parameter.
        let out_arg = match name {
            "add_slice" | "sub_slice" | "scale_slice" | "axpy_slice" | "matvec_slice"
            | "spmv_slice" => args.len().checked_sub(1),
            "add_assign_slice" | "axpy_assign_slice" => Some(0),
            _ => None,
        };
        if let Some(k) = out_arg {
            if let Some(r) = args.get(k) {
                let target = self.code[r.clone()]
                    .iter()
                    .find(|t| t.kind == TokenKind::Ident && !t.is_ident("mut"))
                    .map(|t| t.text.clone());
                if let Some(target) = target {
                    let entry = self.env.entry(target).or_default();
                    if entry.ctx.is_none() {
                        entry.val.join(&v);
                    }
                }
            }
        }
        v
    }

    /// Whether an argument slice mentions an approximate context (type
    /// name or known approx context variable) — fallback resolution for
    /// complex context expressions.
    fn tokens_have_approx_ctx(&self, range: std::ops::Range<usize>) -> bool {
        self.code[range].iter().any(|t| {
            t.kind == TokenKind::Ident
                && (APPROX_CTX_TYPES.contains(&t.text.as_str())
                    || self
                        .env
                        .get(&t.text)
                        .and_then(|b| b.ctx.as_ref())
                        .is_some_and(|c| c.kind == CtxKind::Approx))
        })
    }

    // -- sinks --------------------------------------------------------

    /// Call-boundary sinks: `quality_error`'s accurate operand, and any
    /// value argument of a function defined in a decision module.
    fn sink_call(&mut self, name: &str, cands: &[FnId], arg_vals: &[Val], name_at: usize) {
        let at = (self.code[name_at].line, self.code[name_at].col);
        if name == "quality_error" {
            if let Some(v) = arg_vals.first() {
                if v.sink == Taint::Approx {
                    self.report(
                        "taint-sink",
                        at,
                        "`quality_error` accurate operand (the Def. 1 reference) receives an \
                         approximate value; the quality metric must compare against an exact \
                         trajectory"
                            .to_owned(),
                        v,
                        "exact-only sink `quality_error(accurate, _)`",
                    );
                }
            }
            return;
        }
        let decision_file = cands.iter().find_map(|c| {
            let f = &self.an.ws.def(*c).file;
            self.an
                .cfg
                .taint_decision_files
                .iter()
                .any(|d| d == f)
                .then(|| f.clone())
        });
        if let Some(f) = decision_file {
            for v in arg_vals {
                if v.sink == Taint::Approx {
                    self.report(
                        "taint-sink",
                        at,
                        format!(
                            "approximate value passed to `{name}` in exact-only decision \
                             module `{f}`; endorse at the boundary or keep the computation exact"
                        ),
                        &v.clone(),
                        "exact-only decision-module argument",
                    );
                    break;
                }
            }
        }
    }

    /// Positional sinks (branch condition, loop bound, index
    /// expression) — control crates only.
    fn positional_sink(&mut self, rule: &'static str, at: (u32, u32), what: &str, v: &Val) {
        if !self.control || v.sink != Taint::Approx {
            return;
        }
        self.report(
            rule,
            at,
            format!(
                "approximate value decides a {what}; control flow in core/solvers must depend \
                 only on exact values — endorse() explicitly where the design reads fabric state"
            ),
            v,
            what,
        );
    }

    fn report(&mut self, rule: &'static str, at: (u32, u32), message: String, v: &Val, sink: &str) {
        if !self.reporting || v.sink != Taint::Approx {
            return;
        }
        if !self.seen.insert((rule, at.0, at.1)) {
            return;
        }
        let mut trace = v.trace.clone();
        trace.truncate(MAX_TRACE - 1);
        trace.push(TraceHop {
            file: self.file.to_owned(),
            line: at.0,
            col: at.1,
            note: format!("reaches {sink}"),
        });
        if let Some(out) = self.out.as_deref_mut() {
            out.push(Violation {
                rule,
                severity: Severity::Error,
                file: self.file.to_owned(),
                line: at.0,
                col: at.1,
                message,
                trace,
            });
        }
    }
}

// -- workspace entry points -------------------------------------------

/// Whether the taint pass analyzes this workspace-relative path.
#[must_use]
pub fn analyzed(rel_path: &str, cfg: &AuditConfig) -> bool {
    rel_path.contains("/src/")
        && crate_of(rel_path).is_some_and(|c| cfg.taint_crates.iter().any(|t| t == c))
}

/// Build the taint workspace from `(rel_path, source)` pairs, keeping
/// only the analyzed files.
#[must_use]
pub fn build_workspace(files: &[(String, String)], cfg: &AuditConfig) -> Workspace {
    let filtered: Vec<(String, String)> = files
        .iter()
        .filter(|(p, _)| analyzed(p, cfg))
        .cloned()
        .collect();
    Workspace::build(&filtered)
}

/// Run summaries to fixpoint, then report every sink violation in
/// deterministic order.
#[must_use]
pub fn audit_workspace(ws: &Workspace, cfg: &AuditConfig) -> Vec<Violation> {
    let sums = fixpoint(ws, cfg);
    let an = Analyzer::new(ws, &sums, cfg);
    let mut out = Vec::new();
    for id in ws.fn_ids() {
        let d = ws.def(id);
        if !d.is_test && !d.body.is_empty() {
            an.report_into(id, &mut out);
        }
    }
    out
}

/// The full taint pass over in-memory sources (filter + fixpoint +
/// report).
#[must_use]
pub fn audit_taint(files: &[(String, String)], cfg: &AuditConfig) -> Vec<Violation> {
    let ws = build_workspace(files, cfg);
    audit_workspace(&ws, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let cfg = AuditConfig::approxit(".");
        audit_taint(
            &[("crates/solvers/src/planted.rs".to_owned(), src.to_owned())],
            &cfg,
        )
    }

    #[test]
    fn lattice_join_is_max() {
        assert_eq!(Taint::Exact.join(Taint::Unknown), Taint::Unknown);
        assert_eq!(Taint::Unknown.join(Taint::Approx), Taint::Approx);
        assert_eq!(Taint::Approx.join(Taint::Exact), Taint::Approx);
        assert!(Taint::Exact < Taint::Unknown && Taint::Unknown < Taint::Approx);
    }

    #[test]
    fn direct_branch_on_fabric_result_reports_with_trace() {
        let v = run(
            "fn f(ctx: &mut dyn ArithContext, a: f64, b: f64) -> f64 {\n    let p = ctx.mul(a, b);\n    if p > 0.0 {\n        return 1.0;\n    }\n    0.0\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "taint-branch");
        assert_eq!(v[0].line, 3);
        assert_eq!(v[0].trace.first().map(|h| h.line), Some(2), "source hop");
        assert!(v[0].trace.first().unwrap().note.contains(".mul"));
        assert!(v[0].trace.last().unwrap().note.contains("branch"));
    }

    #[test]
    fn exact_context_flows_are_clean() {
        let v = run(
            "fn f(ctx: &mut ExactContext, a: f64, b: f64) -> f64 {\n    let p = ctx.mul(a, b);\n    if p > 0.0 {\n        return 1.0;\n    }\n    0.0\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unknown_values_never_report() {
        let v = run(
            "fn f(n: usize) -> f64 {\n    let x = mystery(n);\n    if x > 0.0 { 1.0 } else { 0.0 }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn endorse_sanitizes() {
        let v = run(
            "fn f(ctx: &mut dyn ArithContext, a: f64, b: f64) -> f64 {\n    let p = endorse(ctx.mul(a, b));\n    if p > 0.0 {\n        return 1.0;\n    }\n    0.0\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn set_level_accurate_reclassifies() {
        let v = run(
            "fn f(template: &QcsContext, a: f64, b: f64) -> f64 {\n    let mut c = template.clone();\n    c.set_level(AccuracyLevel::Accurate);\n    let p = c.mul(a, b);\n    if p > 0.0 { 1.0 } else { 0.0 }\n}\nfn g(template: &QcsContext, level: AccuracyLevel, a: f64) -> f64 {\n    let mut c = template.clone();\n    c.set_level(level);\n    let p = c.mul(a, a);\n    if p > 0.0 { 1.0 } else { 0.0 }\n}\n",
        );
        // `f` pins Accurate (clean); `g` sets a variable level (fires).
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 11);
    }

    #[test]
    fn loop_carried_taint_is_seen_before_the_assignment() {
        let v = run(
            "fn f(ctx: &mut dyn ArithContext, n: usize) -> f64 {\n    let mut x = 0.0;\n    for _i in 0..n {\n        if x > 10.0 {\n            break;\n        }\n        x = ctx.add(x, 1.0);\n    }\n    x\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].line), ("taint-branch", 4));
    }

    #[test]
    fn slice_kernel_out_param_carries_taint() {
        let v = run(
            "fn f(ctx: &mut dyn ArithContext, xs: &[f64], ys: &[f64]) -> f64 {\n    let mut out = vec![0.0; xs.len()];\n    ctx.add_slice(xs, ys, &mut out);\n    if out[0] > 0.0 { 1.0 } else { 0.0 }\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].line), ("taint-branch", 4));
    }

    #[test]
    fn non_control_crates_skip_positional_sinks() {
        let cfg = AuditConfig::approxit(".");
        let src = "fn f(ctx: &mut dyn ArithContext, a: f64) -> f64 {\n    let p = ctx.mul(a, a);\n    if p > 0.0 { 1.0 } else { 0.0 }\n}\n";
        let v = audit_taint(
            &[("crates/linalg/src/planted.rs".to_owned(), src.to_owned())],
            &cfg,
        );
        assert!(v.is_empty(), "branch sinks are core/solvers only: {v:?}");
    }
}
