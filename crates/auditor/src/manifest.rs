//! Hermeticity audit of `Cargo.toml` manifests.
//!
//! The workspace is deliberately dependency-free: every dependency must
//! resolve inside the repository (`path = "…"` or `workspace = true`,
//! where the workspace table itself only holds path entries). A version
//! or `git` dependency means the build reaches the network, build
//! reproducibility now depends on a registry snapshot, and `cargo miri`
//! / CI offline mode break — so the auditor fails the tree instead.
//!
//! The parser is a hand-rolled line-oriented TOML subset reader: section
//! headers, `key = value` pairs, and inline tables. That covers the
//! manifest style this workspace actually uses; exotic TOML (multi-line
//! inline tables, arrays of tables for dependencies) would need the
//! parser extended, which rule fixtures would catch.

use crate::report::{Severity, Violation};

/// Audit one manifest source. `rel_path` is used for reporting only.
#[must_use]
pub fn audit_manifest(rel_path: &str, src: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut section = String::new();
    // For `[dependencies.foo]`-style subsections: the dep name plus
    // whether a hermetic key (`path`/`workspace`) was seen.
    let mut pending: Option<(String, u32, bool)> = None;

    let flush = |pending: &mut Option<(String, u32, bool)>, out: &mut Vec<Violation>| {
        if let Some((name, line, hermetic)) = pending.take() {
            if !hermetic {
                out.push(dep_violation(
                    rel_path,
                    line,
                    &name,
                    "no `path` or `workspace` key",
                ));
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = strip_toml_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut pending, &mut violations);
            section = line
                .trim_matches(|c| c == '[' || c == ']')
                .trim()
                .to_owned();
            if let Some(dep) = dep_subsection(&section) {
                pending = Some((dep.to_owned(), line_no, false));
            }
            continue;
        }
        if let Some((_, _, hermetic)) = pending.as_mut() {
            let key = line.split('=').next().unwrap_or("").trim();
            if key == "path" || key == "workspace" {
                *hermetic = true;
            }
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        if !entry_is_hermetic(value) {
            let why = if value.starts_with('"') {
                "bare version string pulls from the registry"
            } else if value.contains("git") {
                "git dependency reaches the network"
            } else {
                "no `path` or `workspace` key"
            };
            violations.push(dep_violation(rel_path, line_no, name, why));
        }
    }
    flush(&mut pending, &mut violations);
    violations
}

fn dep_violation(rel_path: &str, line: u32, name: &str, why: &str) -> Violation {
    Violation {
        rule: "hermetic-deps",
        severity: Severity::Error,
        file: rel_path.to_owned(),
        line,
        col: 1,
        message: format!(
            "dependency `{name}` is not workspace-local ({why}); the workspace is hermetic — \
             vendor the code or route it through a `path` dependency"
        ),
        trace: Vec::new(),
    }
}

/// `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]`, `[target.….dependencies]`.
fn is_dependency_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// The dep name of a `[….dependencies.NAME]` subsection, if this is one.
fn dep_subsection(section: &str) -> Option<&str> {
    let (head, name) = section.rsplit_once('.')?;
    if is_dependency_section(head) {
        Some(name)
    } else {
        None
    }
}

/// An inline dependency value is hermetic iff it stays inside the repo.
fn entry_is_hermetic(value: &str) -> bool {
    if value.starts_with('"') {
        return false; // bare version string
    }
    if value.starts_with('{') {
        let body = value.trim_matches(|c| c == '{' || c == '}');
        let mut saw_local = false;
        for part in body.split(',') {
            let key = part.split('=').next().unwrap_or("").trim();
            if key == "git" {
                return false;
            }
            if key == "path" || key == "workspace" {
                saw_local = true;
            }
        }
        return saw_local;
    }
    false
}

/// Strip a `#` comment, respecting `#` inside quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_pass() {
        let src = "[dependencies]\ngatesim = { workspace = true }\nlocal = { path = \"../x\" }\n";
        assert!(audit_manifest("Cargo.toml", src).is_empty());
    }

    #[test]
    fn version_and_git_deps_fail_with_spans() {
        let src = "[dependencies]\nserde = \"1.0\"\nrayon = { version = \"1.8\" }\n\
                   [dev-dependencies]\nproptest = { git = \"https://x\" }\n";
        let v = audit_manifest("crates/x/Cargo.toml", src);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("serde"));
        assert_eq!(v[1].line, 3);
        assert_eq!(v[2].line, 5);
        assert!(v.iter().all(|v| v.rule == "hermetic-deps"));
    }

    #[test]
    fn dotted_subsections_are_checked() {
        let ok = "[dependencies.gatesim]\nworkspace = true\n";
        assert!(audit_manifest("Cargo.toml", ok).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        let v = audit_manifest("Cargo.toml", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let src = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n[profile.release]\ndebug = true\n";
        assert!(audit_manifest("Cargo.toml", src).is_empty());
    }

    #[test]
    fn comments_do_not_confuse_the_parser() {
        let src = "[dependencies] # deps\n# serde = \"1.0\"\ngatesim = { workspace = true } # ok\n";
        assert!(audit_manifest("Cargo.toml", src).is_empty());
    }
}
