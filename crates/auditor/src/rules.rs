//! The rule roster and the per-file rule engine.
//!
//! Each rule encodes one clause of the workspace determinism/hermeticity
//! contract (see `DESIGN.md` §13). Rules work on the lexed token stream
//! — never on raw text — so words inside comments and string literals
//! can never fire them, and they consult the scope analysis to skip
//! `#[cfg(test)]` code where the contract allows it.

use crate::config::AuditConfig;
use crate::lexer::{lex, Token, TokenKind};
use crate::report::{Severity, Suppression, Violation};
use crate::scope::{in_test_code, test_spans, LineSpan};

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Kebab-case id, as used by `audit:allow(id, reason)`.
    pub id: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// One-line summary for reports and docs.
    pub summary: &'static str,
}

/// The full roster, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash-iter",
        severity: Severity::Error,
        summary: "no HashMap/HashSet iteration in result-affecting crates (iteration order is nondeterministic)",
    },
    RuleInfo {
        id: "raw-parallel",
        severity: Severity::Error,
        summary: "no thread::spawn/scope or third-party runtimes outside parx::Executor",
    },
    RuleInfo {
        id: "wall-clock",
        severity: Severity::Error,
        summary: "no wall clock or unseeded randomness flowing into computed values (bench timing allowlist only)",
    },
    RuleInfo {
        id: "no-unsafe",
        severity: Severity::Error,
        summary: "no unsafe code workspace-wide; crate roots must carry #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "panic-path",
        severity: Severity::Error,
        summary: "no unwrap/expect/panic on the service request path (core::service, core::runner)",
    },
    RuleInfo {
        id: "hermetic-deps",
        severity: Severity::Error,
        summary: "every Cargo.toml dependency must stay workspace-local (path or workspace entries)",
    },
    RuleInfo {
        id: "par-reduce",
        severity: Severity::Error,
        summary: "no shared-state accumulation primitives bypassing the Executor's in-order reduction",
    },
    RuleInfo {
        id: "taint-sink",
        severity: Severity::Error,
        summary: "no approximate value may reach an exact-only sink (quality_error's reference operand, decision-module arguments)",
    },
    RuleInfo {
        id: "taint-branch",
        severity: Severity::Error,
        summary: "no approximate value may decide a branch condition or match scrutinee in core/solvers",
    },
    RuleInfo {
        id: "taint-loop-bound",
        severity: Severity::Error,
        summary: "no approximate value may bound a for-loop in core/solvers (iteration counts must be exact)",
    },
    RuleInfo {
        id: "taint-index",
        severity: Severity::Error,
        summary: "no approximate value may index a slice or array in core/solvers (memory addressing must be exact)",
    },
    RuleInfo {
        id: "allow-budget",
        severity: Severity::Error,
        summary: "audit:allow markers need a reason, must match a finding, and are budgeted per rule",
    },
];

/// Look up a rule by id.
#[must_use]
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Everything the engine found in one Rust source file, before
/// suppression/budget accounting (which is workspace-wide).
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Raw rule findings.
    pub violations: Vec<Violation>,
    /// `audit:allow` markers, `used` not yet resolved.
    pub suppressions: Vec<Suppression>,
}

/// Run every Rust-source rule over one file.
#[must_use]
pub fn audit_rust_source(rel_path: &str, src: &str, config: &AuditConfig) -> FileFindings {
    let tokens = lex(src);
    let spans = test_spans(&tokens);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut findings = FileFindings {
        suppressions: collect_suppressions(rel_path, &tokens),
        ..Default::default()
    };
    let out = &mut findings.violations;

    let crate_name = crate_of(rel_path);
    let result_affecting =
        crate_name.is_some_and(|c| config.result_affecting.iter().any(|r| r == c));

    if result_affecting {
        hash_iter_rule(rel_path, &code, &spans, out);
    }
    if !config.parallel_home.iter().any(|p| p == rel_path) {
        raw_parallel_rule(rel_path, &code, out);
    }
    if !config.wall_clock_allow.iter().any(|p| p == rel_path) {
        wall_clock_rule(rel_path, &code, out);
    }
    no_unsafe_rule(rel_path, &code, out);
    if config.panic_free.iter().any(|p| p == rel_path) {
        panic_path_rule(rel_path, &code, &spans, out);
    }
    let reduce_scope =
        result_affecting || crate_name == Some("gatesim") || crate_name == Some("parx");
    if reduce_scope && !config.reduce_exempt.iter().any(|p| p == rel_path) {
        par_reduce_rule(rel_path, &code, &spans, out);
    }

    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// The crate directory name a workspace-relative path belongs to
/// (`crates/<name>/…`), or `None` for root-level `tests/`/`examples/`.
#[must_use]
pub fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

fn violation(rule: &'static str, rel_path: &str, tok: &Token, message: String) -> Violation {
    let severity = rule_info(rule).map_or(Severity::Error, |r| r.severity);
    Violation {
        rule,
        severity,
        file: rel_path.to_owned(),
        line: tok.line,
        col: tok.col,
        message,
        trace: Vec::new(),
    }
}

// ---------------------------------------------------------------------
// Rule 1: hash-iter
// ---------------------------------------------------------------------

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Identifiers bound to a hash-ordered collection in this file: type
/// annotations (`name: HashMap<…>`, including struct fields and fn
/// params) and constructor bindings (`name = HashMap::new()`).
fn hash_bound_idents(code: &[&Token]) -> Vec<String> {
    let mut bound = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || !HASH_TYPES.contains(&tok.text.as_str()) {
            continue;
        }
        // Walk back over a `std :: collections ::`-style path prefix,
        // then over reference sigils (`name: &mut HashMap<…>`).
        let mut j = i;
        while j >= 3
            && code[j - 1].is_punct(':')
            && code[j - 2].is_punct(':')
            && code[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        while j >= 1 && (code[j - 1].is_punct('&') || code[j - 1].is_ident("mut")) {
            j -= 1;
        }
        let name = if j >= 2
            && code[j - 1].is_punct(':')
            && !code[j - 2].is_punct(':')
            && code[j - 2].kind == TokenKind::Ident
        {
            // `name : HashMap<…>` (let annotation, field, or parameter).
            Some(&code[j - 2].text)
        } else if j >= 2 && code[j - 1].is_punct('=') && code[j - 2].kind == TokenKind::Ident {
            // `name = HashMap::new()` / `HashMap::from(…)`.
            Some(&code[j - 2].text)
        } else {
            None
        };
        if let Some(name) = name {
            if !bound.iter().any(|b| b == name) {
                bound.push(name.clone());
            }
        }
    }
    bound
}

fn hash_iter_rule(rel_path: &str, code: &[&Token], spans: &[LineSpan], out: &mut Vec<Violation>) {
    let bound = hash_bound_idents(code);
    if bound.is_empty() {
        return;
    }
    let is_bound = |t: &Token| t.kind == TokenKind::Ident && bound.contains(&t.text);
    for (i, tok) in code.iter().enumerate() {
        if in_test_code(spans, tok.line) {
            continue;
        }
        // `map.iter()` and friends.
        if tok.is_punct('.')
            && i > 0
            && is_bound(code[i - 1])
            && code.get(i + 1).is_some_and(|t| {
                t.kind == TokenKind::Ident && ITER_METHODS.contains(&t.text.as_str())
            })
            && code.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            let method = &code[i + 1].text;
            let recv = &code[i - 1].text;
            out.push(violation(
                "hash-iter",
                rel_path,
                code[i + 1],
                format!(
                    "`{recv}.{method}()` iterates a hash-ordered collection; iteration order \
                     varies across runs — use a BTreeMap/sorted Vec or sort before reducing"
                ),
            ));
        }
        // `for x in [&][mut] map {`.
        if tok.is_ident("for") {
            let Some(in_at) = code[i..]
                .iter()
                .position(|t| t.is_ident("in"))
                .map(|p| i + p)
            else {
                continue;
            };
            if in_at > i + 8 {
                continue; // too far: probably not this `for`'s `in`
            }
            let mut k = in_at + 1;
            while code
                .get(k)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                k += 1;
            }
            if code.get(k).is_some_and(|t| is_bound(t))
                && code.get(k + 1).is_some_and(|t| t.is_punct('{'))
            {
                let recv = &code[k].text;
                out.push(violation(
                    "hash-iter",
                    rel_path,
                    code[k],
                    format!(
                        "`for … in {recv}` iterates a hash-ordered collection; iteration order \
                         varies across runs — use a BTreeMap/sorted Vec or sort before reducing"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: raw-parallel
// ---------------------------------------------------------------------

const FOREIGN_RUNTIMES: &[&str] = &["rayon", "crossbeam", "tokio", "async_std"];
const THREAD_ENTRYPOINTS: &[&str] = &["spawn", "scope", "Builder"];

fn raw_parallel_rule(rel_path: &str, code: &[&Token], out: &mut Vec<Violation>) {
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if FOREIGN_RUNTIMES.contains(&tok.text.as_str()) {
            out.push(violation(
                "raw-parallel",
                rel_path,
                tok,
                format!(
                    "`{}` bypasses the deterministic executor; all parallelism must go \
                     through parx::Executor (indexed work, in-order reduction)",
                    tok.text
                ),
            ));
            continue;
        }
        if tok.text == "thread"
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| {
                t.kind == TokenKind::Ident && THREAD_ENTRYPOINTS.contains(&t.text.as_str())
            })
        {
            out.push(violation(
                "raw-parallel",
                rel_path,
                code[i + 3],
                format!(
                    "`thread::{}` spawns outside parx::Executor; ad-hoc threads break \
                     the indexed-work/in-order-reduction determinism contract",
                    code[i + 3].text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: wall-clock
// ---------------------------------------------------------------------

const CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "getrandom", "RandomState"];

fn wall_clock_rule(rel_path: &str, code: &[&Token], out: &mut Vec<Violation>) {
    for tok in code {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if CLOCK_IDENTS.contains(&tok.text.as_str()) {
            out.push(violation(
                "wall-clock",
                rel_path,
                tok,
                format!(
                    "`{}` reads the wall clock; time may only flow into bench timing code on \
                     the allowlist — computed values must depend on (config, seed) alone",
                    tok.text
                ),
            ));
        } else if ENTROPY_IDENTS.contains(&tok.text.as_str()) {
            out.push(violation(
                "wall-clock",
                rel_path,
                tok,
                format!(
                    "`{}` draws unseeded randomness; every RNG must derive from an explicit \
                     seed (see parx::chunk_seed) so runs replay bit-identically",
                    tok.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: no-unsafe
// ---------------------------------------------------------------------

fn no_unsafe_rule(rel_path: &str, code: &[&Token], out: &mut Vec<Violation>) {
    for tok in code {
        if tok.is_ident("unsafe") {
            out.push(violation(
                "no-unsafe",
                rel_path,
                tok,
                "`unsafe` is banned workspace-wide; the kernels stay in safe Rust so the \
                 nightly Miri job and the static audit agree"
                    .to_owned(),
            ));
        }
    }
    if is_crate_root(rel_path) && !has_forbid_unsafe(code) {
        out.push(Violation {
            rule: "no-unsafe",
            severity: Severity::Error,
            file: rel_path.to_owned(),
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`; every crate the audit \
                      proves clean must also be locked down by rustc"
                .to_owned(),
            trace: Vec::new(),
        });
    }
}

fn is_crate_root(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs")
}

fn has_forbid_unsafe(code: &[&Token]) -> bool {
    code.windows(4).any(|w| {
        w[0].is_ident("forbid")
            && w[1].is_punct('(')
            && w[2].is_ident("unsafe_code")
            && w[3].is_punct(')')
    })
}

// ---------------------------------------------------------------------
// Rule 5: panic-path
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

fn panic_path_rule(rel_path: &str, code: &[&Token], spans: &[LineSpan], out: &mut Vec<Violation>) {
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || in_test_code(spans, tok.line) {
            continue;
        }
        if PANIC_METHODS.contains(&tok.text.as_str())
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(violation(
                "panic-path",
                rel_path,
                tok,
                format!(
                    "`.{}()` can abort a service request mid-drain; the request path must \
                     degrade through Outcome/telemetry, never panic",
                    tok.text
                ),
            ));
        }
        if PANIC_MACROS.contains(&tok.text.as_str())
            && code.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            out.push(violation(
                "panic-path",
                rel_path,
                tok,
                format!(
                    "`{}!` can abort a service request mid-drain; the request path must \
                     degrade through Outcome/telemetry, never panic",
                    tok.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 7: par-reduce
// ---------------------------------------------------------------------

const SHARED_STATE_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar", "mpsc"];
const ATOMIC_RMW_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

fn par_reduce_rule(rel_path: &str, code: &[&Token], spans: &[LineSpan], out: &mut Vec<Violation>) {
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || in_test_code(spans, tok.line) {
            continue;
        }
        let shared_type = SHARED_STATE_TYPES.contains(&tok.text.as_str())
            || (tok.text.starts_with("Atomic") && tok.text.len() > "Atomic".len());
        if shared_type {
            out.push(violation(
                "par-reduce",
                rel_path,
                tok,
                format!(
                    "`{}` enables scheduling-order accumulation; parallel reductions must \
                     return indexed results through parx::Executor, which folds them \
                     in index order",
                    tok.text
                ),
            ));
            continue;
        }
        if ATOMIC_RMW_METHODS.contains(&tok.text.as_str()) && i > 0 && code[i - 1].is_punct('.') {
            out.push(violation(
                "par-reduce",
                rel_path,
                tok,
                format!(
                    "`.{}` is a read-modify-write on shared state; accumulation order would \
                     depend on thread scheduling — reduce through the Executor instead",
                    tok.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

/// Parse `audit:allow(rule, reason)` markers out of the comment tokens.
///
/// A marker suppresses matching findings on its own line (trailing
/// comment) or the line directly below (comment-above style). Only
/// plain comments count: doc comments (`///`, `//!`, `/**`, `/*!`) are
/// documentation *about* the syntax, not suppressions of adjacent code
/// — which also keeps this crate's own docs from self-triggering.
fn collect_suppressions(rel_path: &str, tokens: &[Token]) -> Vec<Suppression> {
    let is_doc = |t: &Token| {
        ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| t.text.starts_with(p))
    };
    let mut out = Vec::new();
    for tok in tokens.iter().filter(|t| t.is_comment() && !is_doc(t)) {
        let mut rest = tok.text.as_str();
        while let Some(at) = rest.find("audit:allow(") {
            rest = &rest[at + "audit:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let inside = &rest[..close];
            rest = &rest[close + 1..];
            let (rule, reason) = match inside.split_once(',') {
                Some((r, why)) => (r.trim(), why.trim()),
                None => (inside.trim(), ""),
            };
            out.push(Suppression {
                rule: rule.to_owned(),
                reason: reason.to_owned(),
                file: rel_path.to_owned(),
                line: tok.line,
                used: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AuditConfig;

    fn cfg() -> AuditConfig {
        AuditConfig::approxit(".")
    }

    fn audit(rel: &str, src: &str) -> Vec<Violation> {
        audit_rust_source(rel, src, &cfg()).violations
    }

    #[test]
    fn roster_ids_are_unique_and_kebab() {
        for rule in RULES {
            assert!(rule.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert_eq!(RULES.iter().filter(|r| r.id == rule.id).count(), 1);
        }
    }

    #[test]
    fn hash_iter_only_fires_in_result_affecting_crates() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m {\n        drop((k, v));\n    }\n}\n";
        let v = audit("crates/core/src/quality.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "hash-iter").count(), 1);
        assert_eq!(v[0].line, 4);
        // Same source in a non-result-affecting crate: no finding.
        assert!(audit("crates/bench/src/harness2.rs", src)
            .iter()
            .all(|v| v.rule != "hash-iter"));
    }

    #[test]
    fn hash_lookup_without_iteration_is_fine() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> Option<u32> {\n    m.get(&1).copied()\n}\n";
        assert!(audit("crates/core/src/quality.rs", src).is_empty());
    }

    #[test]
    fn constructor_bound_names_are_tracked() {
        let src = "fn f() {\n    let seen = std::collections::HashMap::from([(1, 2)]);\n    let total: u32 = seen.values().sum();\n    drop(total);\n}\n";
        let v = audit("crates/solvers/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("hash-iter", 3));
    }

    #[test]
    fn raw_parallel_flags_spawn_but_not_par_home() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let v = audit("crates/solvers/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("raw-parallel", 1));
        assert!(audit("crates/parx/src/lib.rs", src)
            .iter()
            .all(|v| v.rule != "raw-parallel"));
    }

    #[test]
    fn wall_clock_respects_the_allowlist() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        let v = audit("crates/linalg/src/x.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "wall-clock").count(), 2);
        assert!(audit("crates/bench/src/harness.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_invisible() {
        let src = "// unsafe in a comment\nfn f() { let _ = \"unsafe in a string\"; }\n";
        assert!(audit("crates/gatesim/src/lint2.rs", src).is_empty());
        let v = audit("crates/gatesim/src/lint2.rs", "fn f() { unsafe { } }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unsafe");
    }

    #[test]
    fn crate_roots_must_forbid_unsafe() {
        let v = audit("crates/demo/src/lib.rs", "//! docs\npub fn f() {}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("forbid(unsafe_code)"));
        assert!(audit(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn panic_path_skips_test_modules() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) { x.unwrap(); }\n}\n";
        let v = audit("crates/core/src/service.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "panic-path").count(), 1);
        assert_eq!(v[0].line, 1);
        // Other files are not on the request path.
        assert!(audit("crates/core/src/quality.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(audit("crates/core/src/runner.rs", src).is_empty());
    }

    #[test]
    fn par_reduce_flags_shared_accumulators() {
        let src =
            "use std::sync::Mutex;\nfn f() { let total = Mutex::new(0.0f64); drop(total); }\n";
        let v = audit("crates/approx-arith/src/x.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "par-reduce").count(), 2);
        let src = "fn f(c: &std::sync::atomic::AtomicU64) { c.fetch_add(1, std::sync::atomic::Ordering::Relaxed); }\n";
        let v = audit("crates/gatesim/src/sim2.rs", src);
        assert!(v.iter().any(|v| v.rule == "par-reduce"));
        // The parx substrate is in scope too, but its own internals are
        // the one sanctioned home.
        let v = audit("crates/parx/src/helper.rs", src);
        assert!(v.iter().any(|v| v.rule == "par-reduce"));
        assert!(audit("crates/parx/src/lib.rs", src)
            .iter()
            .all(|v| v.rule != "par-reduce"));
    }

    #[test]
    fn suppressions_parse_rule_and_reason() {
        let src = "fn f() {\n    // audit:allow(wall-clock, bench timing only)\n    let x = 1;\n    drop(x);\n}\n";
        let f = audit_rust_source("crates/core/src/x.rs", src, &cfg());
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert_eq!(s.rule, "wall-clock");
        assert_eq!(s.reason, "bench timing only");
        assert_eq!(s.line, 2);
    }

    #[test]
    fn doc_comments_never_carry_suppressions() {
        let src = "/// Explains `audit:allow(no-unsafe, reason)` syntax.\n//! Or `audit:allow(rule, reason)` in module docs.\n/** Even `audit:allow(id, why)` in block docs. */\nfn f() {} // audit:allow(no-unsafe, a real marker)\n";
        let f = audit_rust_source("crates/core/src/x.rs", src, &cfg());
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].line, 4);
    }

    #[test]
    fn crate_of_classifies_paths() {
        assert_eq!(crate_of("crates/core/src/service.rs"), Some("core"));
        assert_eq!(crate_of("tests/end_to_end.rs"), None);
        assert_eq!(crate_of("examples/quickstart.rs"), None);
    }
}
