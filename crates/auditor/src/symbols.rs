//! Symbol table: every function item in the workspace, with enough
//! signature detail for the taint pass.
//!
//! Built directly on the [`lexer`](crate::lexer) token stream — no AST.
//! The walker tracks `impl` blocks (so methods get `Type::name`
//! qualified names), fn generics and `where` clauses (so a parameter of
//! type `&mut C` with `C: ArithContext` is recognized as an arithmetic
//! context), and the body token range of each function for the
//! intraprocedural analysis in [`taint`](crate::taint).
//!
//! Parameter classification is the semantic core: the taint pass treats
//! operations on an *approximate-capable* context parameter
//! (`QcsContext`, `dyn ArithContext`, `impl ArithContext`, a generic
//! bounded by `ArithContext`, or a `FaultInjector`) as taint sources,
//! while the documented exact routes (`ExactContext`, `ScalarPath<_>`)
//! stay clean. See `DESIGN.md` §14 for the full source/sanitizer/sink
//! tables.

use crate::lexer::{Token, TokenKind};
use crate::scope::{in_test_code, LineSpan};

/// Whether a context produces approximate or exact values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxKind {
    /// May execute under `Approx(level)` or inject faults: `QcsContext`,
    /// `dyn/impl ArithContext`, `ArithContext`-bounded generics,
    /// `FaultInjector<_>`.
    Approx,
    /// Documented exact routes: `ExactContext`, `ScalarPath<_>`.
    Exact,
}

/// How a parameter participates in the value flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// An arithmetic context (taint source or sanitizer, never a value).
    Ctx(CtxKind),
    /// An ordinary data value.
    Value,
}

/// One declared parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`_`-prefixed names are kept verbatim).
    pub name: String,
    /// Classification from the declared type.
    pub kind: ParamKind,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`step`).
    pub name: String,
    /// Qualified name (`ConjugateGradient::step` inside an impl block,
    /// else the bare name).
    pub qual: String,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Declared parameters, in order. A `self` receiver is `params[0]`
    /// with name `self`.
    pub params: Vec<Param>,
    /// Token range of the body (inside the braces, exclusive of them),
    /// as indices into the comment-free token slice the table was built
    /// from. Empty for trait declarations without a default body.
    pub body: std::ops::Range<usize>,
    /// Whether the item sits inside `#[cfg(test)]`/`#[test]` code.
    pub is_test: bool,
}

impl FnDef {
    /// Index of the named parameter.
    #[must_use]
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }
}

/// Context types that may produce approximate values.
pub const APPROX_CTX_TYPES: &[&str] = &["QcsContext", "ArithContext", "FaultInjector"];
/// Context types that are exact by contract.
pub const EXACT_CTX_TYPES: &[&str] = &["ExactContext", "ScalarPath"];

/// Classify a type-token slice as a context or a plain value.
///
/// The *first* recognizable context type wins, which makes the wrapper
/// decide: `ScalarPath<C>` is exact even when `C` is approximate (the
/// wrapper forces the scalar reference semantics), and
/// `FaultInjector<ExactContext>` is approximate (it corrupts whatever
/// it wraps).
#[must_use]
pub fn classify_type(ty: &[Token], approx_generics: &[String]) -> ParamKind {
    for tok in ty {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if EXACT_CTX_TYPES.contains(&tok.text.as_str()) {
            return ParamKind::Ctx(CtxKind::Exact);
        }
        if APPROX_CTX_TYPES.contains(&tok.text.as_str())
            || approx_generics.iter().any(|g| g == &tok.text)
        {
            return ParamKind::Ctx(CtxKind::Approx);
        }
    }
    ParamKind::Value
}

/// Build the function table for one file's comment-free token slice.
///
/// Nested functions are found too: after recording a function the scan
/// resumes *inside* its body rather than skipping it. `spans` are the
/// test-code line spans from
/// [`scope::test_spans`](crate::scope::test_spans) — functions inside
/// them are kept in the table (so the call graph is complete) but
/// marked [`FnDef::is_test`].
#[must_use]
pub fn file_functions(file: &str, code: &[Token], spans: &[LineSpan]) -> Vec<FnDef> {
    let mut out = Vec::new();
    // Stack of (brace depth the impl body opens at, impl type name).
    let mut impls: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < code.len() {
        let tok = &code[i];
        if tok.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if tok.is_punct('}') {
            depth = depth.saturating_sub(1);
            while impls.last().is_some_and(|(d, _)| *d > depth) {
                impls.pop();
            }
            i += 1;
            continue;
        }
        if tok.is_ident("impl") {
            if let Some((name, body_open)) = impl_header(code, i) {
                impls.push((depth + 1, name));
                // Resume at the `{` so the depth tracker sees it.
                i = body_open;
                continue;
            }
        }
        if tok.is_ident("fn") {
            if let Some((def, next)) = parse_fn(file, code, i, impls.last().map(|(_, n)| n), spans)
            {
                // Resume at the body's opening brace (not past the
                // body) so nested fns are discovered too.
                let resume = if def.body.is_empty() {
                    next
                } else {
                    def.body.start - 1
                };
                out.push(def);
                i = resume;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parse an `impl` header: returns the implemented type's name and the
/// index of the body's opening `{`. Handles `impl<T> Type<T>`,
/// `impl Trait for Type`, and gives up (returns `None`) on exotic
/// shapes — those methods then get bare names, which only costs
/// call-graph precision.
fn impl_header(code: &[Token], at: usize) -> Option<(String, usize)> {
    let mut j = at + 1;
    j = skip_generics(code, j);
    let mut first_path: Option<String> = None;
    let mut second_path: Option<String> = None;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct('{') {
            let name = second_path.or(first_path)?;
            return Some((name, j));
        }
        if t.is_ident("for") {
            j += 1;
            let mut last = None;
            while j < code.len() && !code[j].is_punct('{') && !code[j].is_ident("where") {
                if code[j].kind == TokenKind::Ident {
                    last = Some(code[j].text.clone());
                }
                if code[j].is_punct('<') {
                    j = skip_generics(code, j);
                    continue;
                }
                j += 1;
            }
            second_path = last;
            continue;
        }
        if t.is_ident("where") {
            while j < code.len() && !code[j].is_punct('{') {
                j += 1;
            }
            continue;
        }
        if t.kind == TokenKind::Ident {
            first_path = Some(t.text.clone());
        }
        if t.is_punct('<') {
            j = skip_generics(code, j);
            continue;
        }
        j += 1;
    }
    None
}

/// If `code[at]` is `<`, return the index just past the matching `>`
/// (angle-depth matched, tolerant of `->`). Otherwise `at`.
fn skip_generics(code: &[Token], at: usize) -> usize {
    if !code.get(at).is_some_and(|t| t.is_punct('<')) {
        return at;
    }
    let mut depth = 0i32;
    let mut j = at;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            // `->` is two tokens `-` `>`; its `>` closes nothing.
            let arrow = j > 0 && code[j - 1].is_punct('-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        } else if t.is_punct(';') || t.is_punct('{') {
            // Malformed / not generics after all: bail.
            return j;
        }
        j += 1;
    }
    j
}

/// Parse one `fn` item starting at the `fn` keyword. Returns the
/// definition plus the index just past the body (or past the `;` for a
/// trait method without a default body).
fn parse_fn(
    file: &str,
    code: &[Token],
    at: usize,
    impl_type: Option<&String>,
    spans: &[LineSpan],
) -> Option<(FnDef, usize)> {
    let name_tok = code.get(at + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let mut j = at + 2;

    let mut approx_generics: Vec<String> = Vec::new();
    if code.get(j).is_some_and(|t| t.is_punct('<')) {
        let end = skip_generics(code, j);
        collect_ctx_bounds(&code[j..end], &mut approx_generics);
        j = end;
    }

    if !code.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let params_end = match_paren(code, j)?;
    let params_range = j + 1..params_end;
    j = params_end + 1;

    // Return type / where clause: scan to the body `{` or `;`; the
    // where clause may add further ArithContext bounds.
    let sig_start = j;
    while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
        j += 1;
    }
    collect_ctx_bounds(&code[sig_start..j], &mut approx_generics);

    let params = parse_params(&code[params_range], &approx_generics);
    let (body, next) = if code.get(j).is_some_and(|t| t.is_punct('{')) {
        let close = match_brace(code, j)?;
        (j + 1..close, close + 1)
    } else {
        (j..j, j + 1)
    };

    Some((
        FnDef {
            qual: impl_type.map_or_else(|| name.clone(), |t| format!("{t}::{name}")),
            name,
            file: file.to_owned(),
            line: code[at].line,
            col: code[at].col,
            params,
            body,
            is_test: in_test_code(spans, code[at].line),
        },
        next,
    ))
}

/// Find `C : … ArithContext …` bounds in a generics/where token slice.
fn collect_ctx_bounds(tokens: &[Token], out: &mut Vec<String>) {
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_ident("ArithContext") {
            continue;
        }
        // Walk back to the `:` introducing this bound list, then take
        // the ident before it as the bound's subject.
        let mut j = i;
        while j > 0 && !tokens[j - 1].is_punct(':') {
            if tokens[j - 1].is_punct(',') || tokens[j - 1].is_punct('<') {
                break;
            }
            j -= 1;
        }
        if j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].kind == TokenKind::Ident {
            // Require the subject to *start* the bound (preceded by
            // `,`, `<`, `where`, or nothing): `C::Assoc: Trait` is not
            // a type-parameter bound.
            let subject = &tokens[j - 2];
            let before_ok = j < 3
                || tokens[j - 3].is_punct(',')
                || tokens[j - 3].is_punct('<')
                || tokens[j - 3].is_ident("where");
            if before_ok && !out.iter().any(|g| g == &subject.text) {
                out.push(subject.text.clone());
            }
        }
    }
}

/// Split the parameter token slice at top-level commas and classify
/// each `name: Type` pair.
fn parse_params(tokens: &[Token], approx_generics: &[String]) -> Vec<Param> {
    let mut params = Vec::new();
    for range in split_top_level(tokens, ',') {
        let group = &tokens[range];
        if group.is_empty() {
            continue;
        }
        // `self` receivers: `self`, `&self`, `&mut self`, `self: …`.
        if group.iter().take(3).any(|t| t.is_ident("self")) {
            params.push(Param {
                name: "self".to_owned(),
                kind: ParamKind::Value,
            });
            continue;
        }
        let Some(colon) = group.iter().position(|t| t.is_punct(':')) else {
            continue;
        };
        let Some(name_tok) = group[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident && !t.is_ident("mut") && !t.is_ident("ref"))
        else {
            continue;
        };
        params.push(Param {
            name: name_tok.text.clone(),
            kind: classify_type(&group[colon + 1..], approx_generics),
        });
    }
    params
}

/// Split a token slice at top-level occurrences of `sep` (not inside
/// `()`, `[]`, `{}`, or `<>` pairs). Returns subranges of the input.
pub(crate) fn split_top_level(tokens: &[Token], sep: char) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        match tok.kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => depth -= 1,
            TokenKind::Punct('<') if depth == 0 => angle += 1,
            TokenKind::Punct('>') if depth == 0 => {
                let arrow = i > 0 && tokens[i - 1].is_punct('-');
                if !arrow && angle > 0 {
                    angle -= 1;
                }
            }
            TokenKind::Punct(c) if c == sep && depth == 0 && angle <= 0 => {
                out.push(start..i);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start <= tokens.len() {
        out.push(start..tokens.len());
    }
    out
}

/// Index of the `)` matching the `(` at `open`.
pub(crate) fn match_paren(code: &[Token], open: usize) -> Option<usize> {
    match_pair(code, open, '(', ')')
}

/// Index of the `}` matching the `{` at `open`.
pub(crate) fn match_brace(code: &[Token], open: usize) -> Option<usize> {
    match_pair(code, open, '{', '}')
}

/// Index of the `]` matching the `[` at `open`.
pub(crate) fn match_bracket(code: &[Token], open: usize) -> Option<usize> {
    match_pair(code, open, '[', ']')
}

fn match_pair(code: &[Token], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in code.iter().enumerate().skip(open) {
        if tok.is_punct(o) {
            depth += 1;
        } else if tok.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::test_spans;

    fn table(src: &str) -> Vec<FnDef> {
        let tokens = lex(src);
        let spans = test_spans(&tokens);
        let code: Vec<Token> = tokens.into_iter().filter(|t| !t.is_comment()).collect();
        file_functions("crates/x/src/a.rs", &code, &spans)
    }

    #[test]
    fn free_functions_and_methods_get_names() {
        let src = "fn free(a: f64) -> f64 { a }\nimpl Solver {\n    fn step(&self, x: f64) -> f64 { x }\n}\nimpl Method for Solver {\n    fn run(&self) {}\n}\n";
        let defs = table(src);
        let quals: Vec<&str> = defs.iter().map(|d| d.qual.as_str()).collect();
        assert_eq!(quals, ["free", "Solver::step", "Solver::run"]);
        assert_eq!(defs[1].params[0].name, "self");
        assert_eq!(defs[1].params[1].name, "x");
    }

    #[test]
    fn context_params_are_classified() {
        let src = "fn a(ctx: &mut dyn ArithContext) {}\nfn b(ctx: &mut QcsContext) {}\nfn c(ctx: &mut ExactContext) {}\nfn d<C: ArithContext>(ctx: &mut C) {}\nfn e(ctx: &mut ScalarPath<QcsContext>) {}\nfn f(x: f64) {}\nfn g<C>(ctx: &mut C) where C: ArithContext {}\nfn h(inj: &mut FaultInjector<ExactContext>) {}\n";
        let defs = table(src);
        let kind = |i: usize| defs[i].params[0].kind;
        assert_eq!(kind(0), ParamKind::Ctx(CtxKind::Approx));
        assert_eq!(kind(1), ParamKind::Ctx(CtxKind::Approx));
        assert_eq!(kind(2), ParamKind::Ctx(CtxKind::Exact));
        assert_eq!(kind(3), ParamKind::Ctx(CtxKind::Approx), "generic bound");
        assert_eq!(kind(4), ParamKind::Ctx(CtxKind::Exact), "ScalarPath wins");
        assert_eq!(kind(5), ParamKind::Value);
        assert_eq!(kind(6), ParamKind::Ctx(CtxKind::Approx), "where clause");
        assert_eq!(kind(7), ParamKind::Ctx(CtxKind::Approx), "fault injector");
    }

    #[test]
    fn bodies_and_test_marking() {
        let src = "fn prod() { let x = 1; }\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let defs = table(src);
        assert_eq!(defs.len(), 2);
        assert!(!defs[0].is_test);
        assert!(defs[1].is_test);
        assert!(defs[0].body.len() >= 4, "body tokens captured");
    }

    #[test]
    fn nested_functions_are_discovered() {
        let src = "fn outer() -> Vec<(f64, u32)> {\n    fn inner(q: &QcsContext) -> f64 { 0.0 }\n    Vec::new()\n}\n";
        let defs = table(src);
        let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"outer"), "{names:?}");
        assert!(names.contains(&"inner"), "{names:?}");
    }

    #[test]
    fn trait_declarations_without_bodies() {
        let src = "trait T {\n    fn abstract_step(&self, ctx: &mut dyn ArithContext) -> f64;\n    fn with_default(&self) -> f64 { 1.0 }\n}\n";
        let defs = table(src);
        assert_eq!(defs.len(), 2);
        assert!(defs[0].body.is_empty());
        assert!(!defs[1].body.is_empty());
        assert_eq!(defs[0].params[1].kind, ParamKind::Ctx(CtxKind::Approx));
    }

    #[test]
    fn impl_blocks_close_correctly() {
        let src = "impl A {\n    fn one(&self) {}\n}\nfn two() {}\nimpl B for C {\n    fn three(&self) { if x { y(); } }\n}\nfn four() {}\n";
        let defs = table(src);
        let quals: Vec<&str> = defs.iter().map(|d| d.qual.as_str()).collect();
        assert_eq!(quals, ["A::one", "two", "C::three", "four"]);
    }
}
