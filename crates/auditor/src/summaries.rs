//! Interprocedural function summaries, iterated to fixpoint.
//!
//! A [`Summary`] abstracts one function for its callers: the taint its
//! return value carries regardless of arguments (`intrinsic`), which
//! value parameters flow into the return (`value_flow`), and which
//! context parameters have fabric ops flowing into the return
//! (`ctx_flow`). The last is the key to precision: a solver `step`
//! taking `&mut dyn ArithContext` does *not* intrinsically return
//! approximate data — it returns data that is approximate exactly when
//! the caller's context is, so the flow is kept symbolic here and
//! resolved at each call site.
//!
//! [`fixpoint`] runs the intraprocedural analysis
//! ([`Analyzer`](crate::taint::Analyzer)) over every function until no
//! summary changes. All transfer functions are monotone over the finite
//! lattice (three-point taint × two 64-bit flow sets), so the iteration
//! converges; [`MAX_ROUNDS`] is a belt-and-braces cap, not a tuning
//! knob.

use std::collections::BTreeMap;

use crate::callgraph::{FnId, Workspace};
use crate::config::AuditConfig;
use crate::report::TraceHop;
use crate::taint::{Analyzer, Taint};

/// Caller-facing abstraction of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Taint of the return value independent of any parameter (e.g. the
    /// function constructs its own `QcsContext` and returns its ops).
    pub intrinsic: Taint,
    /// Bitset over parameter indices: value parameters whose data
    /// reaches the return value.
    pub value_flow: u64,
    /// Bitset over parameter indices: context parameters whose fabric
    /// ops reach the return value (resolved per call site against the
    /// actual context's exact/approx kind).
    pub ctx_flow: u64,
    /// Representative source→return hops, used to extend call-site
    /// traces (does not participate in the fixpoint comparison).
    pub trace: Vec<TraceHop>,
}

impl Summary {
    /// Fixpoint-relevant projection (traces are presentation only).
    #[must_use]
    pub fn key(&self) -> (Taint, u64, u64) {
        (self.intrinsic, self.value_flow, self.ctx_flow)
    }
}

/// Hard cap on fixpoint rounds (the lattice guarantees convergence far
/// earlier; this bounds the damage of any non-monotone analysis bug).
pub const MAX_ROUNDS: usize = 16;

/// Iterate summaries for every function in the workspace to fixpoint.
///
/// Functions are visited in deterministic unit-major order each round;
/// the result is therefore reproducible run to run.
#[must_use]
pub fn fixpoint(ws: &Workspace, cfg: &AuditConfig) -> BTreeMap<FnId, Summary> {
    let ids = ws.fn_ids();
    let mut sums: BTreeMap<FnId, Summary> =
        ids.iter().map(|id| (*id, Summary::default())).collect();
    for _round in 0..MAX_ROUNDS {
        let mut changed = false;
        for id in &ids {
            if ws.def(*id).body.is_empty() {
                continue;
            }
            let next = Analyzer::new(ws, &sums, cfg).summarize(*id);
            if sums[id].key() != next.key() {
                changed = true;
            }
            sums.insert(*id, next);
        }
        if !changed {
            break;
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_key_ignores_traces() {
        let mut a = Summary::default();
        let b = Summary {
            trace: vec![TraceHop {
                file: "x.rs".into(),
                line: 1,
                col: 1,
                note: "op".into(),
            }],
            ..Summary::default()
        };
        assert_eq!(a.key(), b.key());
        a.intrinsic = Taint::Approx;
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn fixpoint_converges_on_mutual_recursion() {
        let cfg = AuditConfig::approxit(".");
        let files = vec![(
            "crates/solvers/src/planted.rs".to_owned(),
            "fn even(n: u32, ctx: &mut dyn ArithContext) -> f64 {\n    if n == 0 { 0.0 } else { odd(n - 1, ctx) }\n}\nfn odd(n: u32, ctx: &mut dyn ArithContext) -> f64 {\n    ctx.add(even(n - 1, ctx), 1.0)\n}\n"
                .to_owned(),
        )];
        let ws = Workspace::build(&files);
        let sums = fixpoint(&ws, &cfg);
        // Both functions' returns flow from their ctx parameter (the
        // mutual recursion must converge, not oscillate).
        let odd = ws.resolve("odd", None)[0];
        assert_ne!(sums[&odd].ctx_flow, 0, "{:?}", sums[&odd]);
        let even = ws.resolve("even", None)[0];
        assert_ne!(sums[&even].ctx_flow, 0, "{:?}", sums[&even]);
    }
}
