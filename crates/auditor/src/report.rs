//! Audit results: violations, suppressions, and the machine-readable
//! report.
//!
//! The JSON schema (`approxit-audit/1`) is what CI uploads as an
//! artifact, so it is rendered deterministically: files in sorted path
//! order, violations in (file, line, col, rule) order, rules in roster
//! order. The renderer is hand-rolled (the auditor is dependency-free),
//! mirroring the escaping rules of `bench::cli`.

use std::fmt::Write as _;

/// How bad a finding is. `Error` gates CI; `Warning` is reported (and
/// counted in the JSON artifact) but does not fail the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported but non-gating.
    Warning,
    /// Gates the audit: the tree is not clean while one is unsuppressed.
    Error,
}

impl Severity {
    /// Lower-case name used in reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Warning => "warning",
            Self::Error => "error",
        }
    }
}

/// One rule finding at a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (kebab-case, e.g. `hash-iter`).
    pub rule: &'static str,
    /// Severity the rule carries.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// `file:line:col` span string.
    #[must_use]
    pub fn span(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {} — {}",
            self.severity.name(),
            self.rule,
            self.span(),
            self.message
        )
    }
}

/// A parsed `// audit:allow(rule, reason)` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule id it suppresses.
    pub rule: String,
    /// Mandatory justification (empty reasons are themselves flagged).
    pub reason: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the marker.
    pub line: u32,
    /// Whether any violation actually matched this marker.
    pub used: bool,
}

/// The assembled result of an audit run.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Number of files scanned (Rust sources + manifests).
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, col, rule).
    pub violations: Vec<Violation>,
    /// Findings silenced by an `audit:allow`, same order.
    pub suppressed: Vec<Violation>,
    /// Every suppression marker found, with usage accounting.
    pub suppressions: Vec<Suppression>,
    /// Per-rule roster: (rule id, severity, unsuppressed, suppressed).
    pub rule_counts: Vec<(&'static str, Severity, usize, usize)>,
}

impl AuditReport {
    /// Unsuppressed errors — the number that must be zero for a clean
    /// tree.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// Unsuppressed warnings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Warning)
            .count()
    }

    /// Whether the tree passes the gate (no unsuppressed errors).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Render the `approxit-audit/1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"approxit-audit/1\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"errors\": {},", self.error_count());
        let _ = writeln!(out, "  \"warnings\": {},", self.warning_count());
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed.len());
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());

        out.push_str("  \"rules\": [\n");
        for (i, (rule, severity, open, suppressed)) in self.rule_counts.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": {}, \"severity\": {}, \"violations\": {open}, \"suppressed\": {suppressed}}}",
                json_str(rule),
                json_str(severity.name()),
            );
            out.push_str(if i + 1 < self.rule_counts.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");

        render_violations(&mut out, "violations", &self.violations);
        out.push_str(",\n");
        render_violations(&mut out, "suppressed_violations", &self.suppressed);
        out.push_str(",\n");

        out.push_str("  \"suppressions\": [\n");
        for (i, s) in self.suppressions.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"used\": {}, \"reason\": {}}}",
                json_str(&s.rule),
                json_str(&s.file),
                s.line,
                s.used,
                json_str(&s.reason),
            );
            out.push_str(if i + 1 < self.suppressions.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn render_violations(out: &mut String, key: &str, list: &[Violation]) {
    let _ = writeln!(out, "  \"{key}\": [");
    for (i, v) in list.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            json_str(v.rule),
            json_str(v.severity.name()),
            json_str(&v.file),
            v.line,
            v.col,
            json_str(&v.message),
        );
        out.push_str(if i + 1 < list.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
}

/// Escape a string as a JSON string literal.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            severity: Severity::Error,
            file: file.to_owned(),
            line,
            col: 5,
            message: "planted \"finding\"".to_owned(),
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let mut report = AuditReport {
            files_scanned: 2,
            ..Default::default()
        };
        assert!(report.is_clean());
        report.violations.push(violation("no-unsafe", "a.rs", 3));
        report.violations.push(Violation {
            severity: Severity::Warning,
            ..violation("allow-budget", "a.rs", 9)
        });
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let report = AuditReport {
            files_scanned: 1,
            violations: vec![violation("hash-iter", "crates/x/src/a.rs", 7)],
            suppressions: vec![Suppression {
                rule: "wall-clock".into(),
                reason: "bench \"timing\"".into(),
                file: "b.rs".into(),
                line: 2,
                used: true,
            }],
            rule_counts: vec![("hash-iter", Severity::Error, 1, 0)],
            ..Default::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"approxit-audit/1\""));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\\\"finding\\\""));
        assert!(json.contains("\\\"timing\\\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn display_span_format() {
        let v = violation("panic-path", "crates/core/src/service.rs", 505);
        assert_eq!(v.span(), "crates/core/src/service.rs:505:5");
        let text = v.to_string();
        assert!(text.starts_with("error[panic-path] "));
    }
}
