//! Audit results: violations, suppressions, and the machine-readable
//! report.
//!
//! The JSON schema ([`SCHEMA`], currently `approxit-audit/2`) is what
//! CI uploads as an artifact, so it is rendered deterministically:
//! files in sorted path order, violations in (file, line, col, rule)
//! order, rules in roster order, one violation object per line (which
//! [`parse_violation_keys`] relies on for baseline diffing). The
//! renderer is hand-rolled (the auditor is dependency-free), mirroring
//! the escaping rules of `bench::cli`.
//!
//! Schema history: `/1` had no `trace` arrays on violations; `/2` added
//! them for the taint pass. Consumers must call [`check_schema`] first
//! and fail loudly on a version they were not written for.

use std::fmt::Write as _;

/// The JSON schema version this build renders — and the only one
/// [`check_schema`] accepts.
pub const SCHEMA: &str = "approxit-audit/2";

/// How bad a finding is. `Error` gates CI; `Warning` is reported (and
/// counted in the JSON artifact) but does not fail the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported but non-gating.
    Warning,
    /// Gates the audit: the tree is not clean while one is unsuppressed.
    Error,
}

impl Severity {
    /// Lower-case name used in reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Warning => "warning",
            Self::Error => "error",
        }
    }
}

/// One hop of a taint source→sink path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHop {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What happened at this hop (`fabric op .mul on …`, `returned
    /// from …`, `reaches branch condition`).
    pub note: String,
}

impl std::fmt::Display for TraceHop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.col, self.note)
    }
}

/// One rule finding at a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (kebab-case, e.g. `hash-iter`).
    pub rule: &'static str,
    /// Severity the rule carries.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Source→sink hops for dataflow (`taint-*`) findings; empty for
    /// syntactic rules.
    pub trace: Vec<TraceHop>,
}

impl Violation {
    /// `file:line:col` span string.
    #[must_use]
    pub fn span(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {} — {}",
            self.severity.name(),
            self.rule,
            self.span(),
            self.message
        )?;
        for hop in &self.trace {
            write!(f, "\n    ↳ {hop}")?;
        }
        Ok(())
    }
}

/// A parsed `// audit:allow(rule, reason)` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule id it suppresses.
    pub rule: String,
    /// Mandatory justification (empty reasons are themselves flagged).
    pub reason: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the marker.
    pub line: u32,
    /// Whether any violation actually matched this marker.
    pub used: bool,
}

/// The assembled result of an audit run.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Number of files scanned (Rust sources + manifests).
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, col, rule).
    pub violations: Vec<Violation>,
    /// Findings silenced by an `audit:allow`, same order.
    pub suppressed: Vec<Violation>,
    /// Every suppression marker found, with usage accounting.
    pub suppressions: Vec<Suppression>,
    /// Per-rule roster: (rule id, severity, unsuppressed, suppressed).
    pub rule_counts: Vec<(&'static str, Severity, usize, usize)>,
}

impl AuditReport {
    /// Unsuppressed errors — the number that must be zero for a clean
    /// tree.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// Unsuppressed warnings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Warning)
            .count()
    }

    /// Whether the tree passes the gate (no unsuppressed errors).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Render the [`SCHEMA`] JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(SCHEMA));
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"errors\": {},", self.error_count());
        let _ = writeln!(out, "  \"warnings\": {},", self.warning_count());
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed.len());
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());

        out.push_str("  \"rules\": [\n");
        for (i, (rule, severity, open, suppressed)) in self.rule_counts.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": {}, \"severity\": {}, \"violations\": {open}, \"suppressed\": {suppressed}}}",
                json_str(rule),
                json_str(severity.name()),
            );
            out.push_str(if i + 1 < self.rule_counts.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");

        render_violations(&mut out, "violations", &self.violations);
        out.push_str(",\n");
        render_violations(&mut out, "suppressed_violations", &self.suppressed);
        out.push_str(",\n");

        out.push_str("  \"suppressions\": [\n");
        for (i, s) in self.suppressions.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"used\": {}, \"reason\": {}}}",
                json_str(&s.rule),
                json_str(&s.file),
                s.line,
                s.used,
                json_str(&s.reason),
            );
            out.push_str(if i + 1 < self.suppressions.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn render_violations(out: &mut String, key: &str, list: &[Violation]) {
    let _ = writeln!(out, "  \"{key}\": [");
    for (i, v) in list.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"trace\": [",
            json_str(v.rule),
            json_str(v.severity.name()),
            json_str(&v.file),
            v.line,
            v.col,
            json_str(&v.message),
        );
        for (h, hop) in v.trace.iter().enumerate() {
            if h > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"file\": {}, \"line\": {}, \"col\": {}, \"note\": {}}}",
                json_str(&hop.file),
                hop.line,
                hop.col,
                json_str(&hop.note),
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 < list.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
}

/// Validate a serialized report's `schema` field against [`SCHEMA`].
///
/// Every consumer of the artifact (the `--baseline` diff, external
/// tooling) must call this first: an `approxit-audit/1` document — or
/// any future `/3` — is rejected loudly instead of being misread.
///
/// # Errors
/// The schema field is missing, or names a version other than
/// [`SCHEMA`].
pub fn check_schema(json: &str) -> Result<(), String> {
    for line in json.lines() {
        let Some(v) = extract_str_field(line, "schema") else {
            continue;
        };
        if v == SCHEMA {
            return Ok(());
        }
        return Err(format!(
            "unsupported audit schema {v:?}: this reader handles {SCHEMA:?} only \
             (regenerate the document with the current `bench --bin audit`)"
        ));
    }
    Err(format!(
        "document has no \"schema\" field; refusing to guess (expected {SCHEMA:?})"
    ))
}

/// Extract `(rule, file, line)` keys from a report's *unsuppressed*
/// `violations` array (suppressed ones are excluded — a finding leaving
/// suppression must count as new in a baseline diff).
///
/// This is a line-oriented reader of our own renderer's output: one
/// violation object per line, fields rendered by [`json_str`]. It
/// checks the schema first.
///
/// # Errors
/// Bad schema, or a violation line whose `rule`/`file`/`line` fields
/// cannot be read back.
pub fn parse_violation_keys(json: &str) -> Result<Vec<(String, String, u32)>, String> {
    check_schema(json)?;
    let mut out = Vec::new();
    let mut inside = false;
    for line in json.lines() {
        let t = line.trim();
        if !inside {
            if t.starts_with("\"violations\": [") {
                inside = true;
            }
            continue;
        }
        if t.starts_with(']') {
            break;
        }
        if !t.starts_with('{') {
            continue;
        }
        let rule = extract_str_field(t, "rule")
            .ok_or_else(|| format!("violation line without a rule: {t}"))?;
        let file = extract_str_field(t, "file")
            .ok_or_else(|| format!("violation line without a file: {t}"))?;
        let line_no = extract_num_field(t, "line")
            .ok_or_else(|| format!("violation line without a line number: {t}"))?;
        out.push((rule, file, line_no));
    }
    Ok(out)
}

/// Read back a `"name": "value"` field rendered by [`json_str`] from a
/// single line; returns the unescaped value of the *first* occurrence.
fn extract_str_field(line: &str, name: &str) -> Option<String> {
    let needle = format!("\"{name}\": \"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Read back a `"name": 123` numeric field from a single line.
fn extract_num_field(line: &str, name: &str) -> Option<u32> {
    let needle = format!("\"{name}\": ");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Escape a string as a JSON string literal.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            severity: Severity::Error,
            file: file.to_owned(),
            line,
            col: 5,
            message: "planted \"finding\"".to_owned(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let mut report = AuditReport {
            files_scanned: 2,
            ..Default::default()
        };
        assert!(report.is_clean());
        report.violations.push(violation("no-unsafe", "a.rs", 3));
        report.violations.push(Violation {
            severity: Severity::Warning,
            ..violation("allow-budget", "a.rs", 9)
        });
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let report = AuditReport {
            files_scanned: 1,
            violations: vec![violation("hash-iter", "crates/x/src/a.rs", 7)],
            suppressions: vec![Suppression {
                rule: "wall-clock".into(),
                reason: "bench \"timing\"".into(),
                file: "b.rs".into(),
                line: 2,
                used: true,
            }],
            rule_counts: vec![("hash-iter", Severity::Error, 1, 0)],
            ..Default::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"approxit-audit/2\""));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\\\"finding\\\""));
        assert!(json.contains("\\\"timing\\\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn schema_check_rejects_v1_and_missing() {
        let v2 = AuditReport::default().to_json();
        assert!(check_schema(&v2).is_ok());
        let v1 = v2.replace("approxit-audit/2", "approxit-audit/1");
        let err = check_schema(&v1).unwrap_err();
        assert!(err.contains("approxit-audit/1"), "{err}");
        assert!(err.contains("approxit-audit/2"), "{err}");
        let none = "{\n  \"files_scanned\": 0\n}\n";
        assert!(check_schema(none).unwrap_err().contains("no \"schema\""));
    }

    #[test]
    fn violation_keys_round_trip_through_json() {
        let mut v = violation("taint-branch", "crates/solvers/src/cg.rs", 42);
        v.trace = vec![
            TraceHop {
                file: "crates/solvers/src/cg.rs".into(),
                line: 40,
                col: 17,
                note: "fabric op `.dot` on context parameter `ctx`".into(),
            },
            TraceHop {
                file: "crates/solvers/src/cg.rs".into(),
                line: 42,
                col: 9,
                note: "reaches branch condition".into(),
            },
        ];
        let report = AuditReport {
            files_scanned: 1,
            violations: vec![v.clone(), violation("hash-iter", "crates/x/src/a.rs", 7)],
            suppressed: vec![violation("taint-sink", "crates/core/src/quality.rs", 9)],
            ..Default::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"note\": \"fabric op `.dot` on context parameter `ctx`\""));
        let keys = parse_violation_keys(&json).unwrap();
        // Unsuppressed only: the suppressed taint-sink must not appear.
        assert_eq!(
            keys,
            vec![
                (
                    "taint-branch".to_owned(),
                    "crates/solvers/src/cg.rs".to_owned(),
                    42
                ),
                ("hash-iter".to_owned(), "crates/x/src/a.rs".to_owned(), 7),
            ]
        );
        // The rendered trace survives Display too.
        let text = v.to_string();
        assert!(text.contains("↳ crates/solvers/src/cg.rs:40:17: fabric op"));
    }

    #[test]
    fn display_span_format() {
        let v = violation("panic-path", "crates/core/src/service.rs", 505);
        assert_eq!(v.span(), "crates/core/src/service.rs:505:5");
        let text = v.to_string();
        assert!(text.starts_with("error[panic-path] "));
    }
}
