//! Workspace determinism & hermeticity auditor.
//!
//! ApproxIt's quality-control story rests on a contract the type system
//! cannot see: a given `(config, seed)` must always produce the same
//! trajectory, bit for bit, on any thread count. The service layer's
//! cross-thread identity checks and the model-checker proofs *assume*
//! that contract; this crate enforces it at the source level, so a
//! violation fails CI as a named lint instead of surfacing weeks later
//! as a flaky bench.
//!
//! The pass is deliberately dependency-free: a hand-rolled Rust
//! [`lexer`], a lightweight [`scope`] analysis for `#[cfg(test)]`
//! boundaries, a line-oriented [`manifest`] reader for `Cargo.toml`
//! hermeticity, and a token-level rule engine ([`rules`]) in the same
//! spirit as gatesim's netlist linter. See [`rules::RULES`] for the
//! roster; `DESIGN.md` §13 documents the contract each rule encodes.
//!
//! On top of the syntactic rules sits a semantic pass: the
//! approximation-taint dataflow analysis ([`symbols`] → [`callgraph`] →
//! [`taint`] with [`summaries`] iterated to fixpoint), which proves the
//! exact/approximate boundary the quality guarantee assumes. Its
//! `taint-*` findings carry full source→sink traces; `DESIGN.md` §14
//! documents the lattice and the source/sanitizer/sink tables.
//!
//! # Suppressions
//!
//! A finding can be silenced inline:
//!
//! ```text
//! let t0 = Instant::now(); // audit:allow(wall-clock, timing printout only)
//! ```
//!
//! The marker must name the rule and give a reason; it may sit on the
//! offending line or the line above. Suppressions are themselves
//! audited: an unused marker, an empty reason, or more markers than the
//! per-rule budget all raise `allow-budget` findings.
//!
//! # Example
//!
//! ```
//! use auditor::{audit_rust_source, AuditConfig};
//!
//! let config = AuditConfig::approxit(".");
//! let planted = "fn f() { std::thread::spawn(|| {}); }\n";
//! let findings = audit_rust_source("crates/solvers/src/x.rs", planted, &config);
//! assert_eq!(findings.violations.len(), 1);
//! assert_eq!(findings.violations[0].rule, "raw-parallel");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod scope;
pub mod summaries;
pub mod symbols;
pub mod taint;

pub use config::AuditConfig;
pub use report::{AuditReport, Severity, Suppression, TraceHop, Violation};
pub use rules::{audit_rust_source, FileFindings, RuleInfo, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Audit the whole workspace under `config.root`.
///
/// Walks every `Cargo.toml` plus every `.rs` file under `crates/*/src`,
/// `crates/*/tests`, `crates/*/benches`, root `tests/` and `examples/`
/// (in sorted path order, so reports are deterministic), runs the rule
/// engine, applies suppressions, and settles the suppression budget.
///
/// # Errors
/// Propagates I/O errors from the directory walk or file reads.
pub fn run_audit(config: &AuditConfig) -> io::Result<AuditReport> {
    let sources = collect_sources(config)?;
    Ok(audit_sources(&sources, config))
}

/// Read every audited workspace file into `(rel_path, source)` pairs, in
/// sorted path order. The same list feeds [`audit_sources`] and the
/// call-graph export, so the two always see an identical workspace.
///
/// # Errors
/// Propagates I/O errors from the directory walk or file reads.
pub fn collect_sources(config: &AuditConfig) -> io::Result<Vec<(String, String)>> {
    let mut sources = Vec::new();
    for path in workspace_files(&config.root)? {
        let rel = rel_path(&config.root, &path);
        let src = fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(sources)
}

/// Audit a set of in-memory `(rel_path, source)` pairs: per-file rules,
/// manifests, the workspace-wide taint dataflow pass, then suppression
/// and budget settlement. This is `run_audit` minus the I/O — fixture
/// tests feed it planted multi-file workspaces directly.
#[must_use]
pub fn audit_sources(sources: &[(String, String)], config: &AuditConfig) -> AuditReport {
    let mut findings = rules::FileFindings::default();
    for (rel, src) in sources {
        if rel.ends_with("Cargo.toml") {
            findings
                .violations
                .extend(manifest::audit_manifest(rel, src));
        } else {
            let file = rules::audit_rust_source(rel, src, config);
            findings.violations.extend(file.violations);
            findings.suppressions.extend(file.suppressions);
        }
    }
    findings
        .violations
        .extend(taint::audit_taint(sources, config));
    assemble(findings, sources.len(), config)
}

/// Apply suppressions and the per-rule budget to raw findings, producing
/// the final report. Exposed for fixture tests that audit in-memory
/// sources instead of a directory tree.
#[must_use]
pub fn assemble(
    findings: rules::FileFindings,
    files_scanned: usize,
    config: &AuditConfig,
) -> AuditReport {
    let rules::FileFindings {
        violations,
        mut suppressions,
    } = findings;

    // Match each violation against the markers in its file: same line
    // (trailing comment) or the line above (comment-above style).
    let mut open = Vec::new();
    let mut suppressed = Vec::new();
    for v in violations {
        let same_line = |s: &Suppression| s.rule == v.rule && s.file == v.file && s.line == v.line;
        let line_above =
            |s: &Suppression| s.rule == v.rule && s.file == v.file && s.line + 1 == v.line;
        // Prefer a trailing comment on the offending line; fall back to
        // a comment-above marker.
        let idx = suppressions
            .iter()
            .position(same_line)
            .or_else(|| suppressions.iter().position(line_above));
        match idx.map(|i| &mut suppressions[i]) {
            Some(s) if !s.reason.is_empty() => {
                s.used = true;
                suppressed.push(v);
            }
            _ => open.push(v),
        }
    }

    // Suppression hygiene: unknown rule ids and empty reasons are
    // errors; a marker that matched nothing is a warning (stale marker).
    for s in &suppressions {
        if rules::rule_info(&s.rule).is_none() {
            open.push(Violation {
                rule: "allow-budget",
                severity: Severity::Error,
                file: s.file.clone(),
                line: s.line,
                col: 1,
                message: format!("audit:allow names unknown rule `{}`", s.rule),
                trace: Vec::new(),
            });
        } else if s.reason.is_empty() {
            open.push(Violation {
                rule: "allow-budget",
                severity: Severity::Error,
                file: s.file.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "audit:allow({}) has no reason; suppressions must be justified",
                    s.rule
                ),
                trace: Vec::new(),
            });
        } else if !s.used {
            open.push(Violation {
                rule: "allow-budget",
                severity: Severity::Warning,
                file: s.file.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "audit:allow({}) matched no finding on its line or the line below; \
                     stale markers hide future regressions — delete it",
                    s.rule
                ),
                trace: Vec::new(),
            });
        }
    }

    // Per-rule budget: suppressing more than `suppression_budget`
    // findings of one rule means the rule is being worked around, not
    // excepted. Every marker past the budget (in file/line order) is an
    // error at its own span.
    for rule in RULES {
        let mut markers: Vec<&Suppression> = suppressions
            .iter()
            .filter(|s| s.used && s.rule == rule.id)
            .collect();
        markers.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        for s in markers.iter().skip(config.suppression_budget) {
            open.push(Violation {
                rule: "allow-budget",
                severity: Severity::Error,
                file: s.file.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "suppression budget exceeded for `{}` ({} markers, budget {}); \
                     fix the findings instead of allowlisting them",
                    rule.id,
                    markers.len(),
                    config.suppression_budget
                ),
                trace: Vec::new(),
            });
        }
    }

    open.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    suppressed
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));

    let rule_counts = RULES
        .iter()
        .map(|r| {
            (
                r.id,
                r.severity,
                open.iter().filter(|v| v.rule == r.id).count(),
                suppressed.iter().filter(|v| v.rule == r.id).count(),
            )
        })
        .collect();

    AuditReport {
        files_scanned,
        violations: open,
        suppressed,
        suppressions,
        rule_counts,
    }
}

/// Every file the audit covers, in sorted (deterministic) order.
///
/// # Errors
/// Propagates directory-walk I/O errors; missing optional directories
/// (e.g. a crate without `tests/`) are skipped silently.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let top_manifest = root.join("Cargo.toml");
    if top_manifest.is_file() {
        files.push(top_manifest);
    }
    for dir in ["tests", "examples"] {
        collect_rs(&root.join(dir), &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            let manifest = krate.join("Cargo.toml");
            if manifest.is_file() {
                files.push(manifest);
            }
            for dir in ["src", "tests", "benches"] {
                collect_rs(&krate.join(dir), &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively gather `.rs` files under `dir` (no-op if absent).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            // Fixture directories hold *planted violations*: they are
            // audit test data, not workspace source.
            if entry.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted(rule: &'static str, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            severity: Severity::Error,
            file: file.to_owned(),
            line,
            col: 1,
            message: "planted".to_owned(),
            trace: Vec::new(),
        }
    }

    fn marker(rule: &str, reason: &str, file: &str, line: u32) -> Suppression {
        Suppression {
            rule: rule.to_owned(),
            reason: reason.to_owned(),
            file: file.to_owned(),
            line,
            used: false,
        }
    }

    #[test]
    fn suppression_matches_same_line_and_line_above() {
        let cfg = AuditConfig::approxit(".");
        let findings = rules::FileFindings {
            violations: vec![
                planted("no-unsafe", "a.rs", 5),
                planted("no-unsafe", "a.rs", 9),
            ],
            suppressions: vec![
                marker("no-unsafe", "ffi shim", "a.rs", 5),
                marker("no-unsafe", "ffi shim", "a.rs", 8),
            ],
        };
        let report = assemble(findings, 1, &cfg);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.suppressed.len(), 2);
        assert!(report.is_clean());
    }

    #[test]
    fn wrong_rule_or_distance_does_not_suppress() {
        let cfg = AuditConfig::approxit(".");
        let findings = rules::FileFindings {
            violations: vec![planted("no-unsafe", "a.rs", 5)],
            suppressions: vec![marker("wall-clock", "wrong rule", "a.rs", 5)],
        };
        let report = assemble(findings, 1, &cfg);
        // The violation stays, and the stale marker is warned about.
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
    }

    #[test]
    fn empty_reason_and_unknown_rule_are_errors() {
        let cfg = AuditConfig::approxit(".");
        let findings = rules::FileFindings {
            violations: vec![planted("no-unsafe", "a.rs", 5)],
            suppressions: vec![
                marker("no-unsafe", "", "a.rs", 5),
                marker("not-a-rule", "whatever", "a.rs", 20),
            ],
        };
        let report = assemble(findings, 1, &cfg);
        // Empty reason: the finding stays open AND the marker errors.
        assert_eq!(report.error_count(), 3);
        assert!(report
            .violations
            .iter()
            .any(|v| v.message.contains("no reason")));
        assert!(report
            .violations
            .iter()
            .any(|v| v.message.contains("unknown rule")));
    }

    #[test]
    fn budget_overflow_flags_each_excess_marker() {
        let mut cfg = AuditConfig::approxit(".");
        cfg.suppression_budget = 2;
        let findings = rules::FileFindings {
            violations: (1..=4).map(|l| planted("wall-clock", "a.rs", l)).collect(),
            suppressions: (1..=4)
                .map(|l| marker("wall-clock", "why", "a.rs", l))
                .collect(),
        };
        let report = assemble(findings, 1, &cfg);
        let over: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.rule == "allow-budget")
            .collect();
        assert_eq!(over.len(), 2, "two markers past the budget of 2");
        assert!(over.iter().all(|v| v.message.contains("budget exceeded")));
        assert_eq!(report.suppressed.len(), 4);
        assert!(!report.is_clean());
    }

    #[test]
    fn rule_counts_cover_the_roster() {
        let cfg = AuditConfig::approxit(".");
        let report = assemble(rules::FileFindings::default(), 0, &cfg);
        assert_eq!(report.rule_counts.len(), RULES.len());
        assert!(report.is_clean());
    }
}
