//! Lightweight item/scope analysis on top of the token stream.
//!
//! The audit rules distinguish *product* code from *test* code: an
//! `unwrap()` inside `#[cfg(test)] mod tests { … }` is fine, the same
//! call on the service request path is not. This module finds the line
//! spans of test-only code by walking the token stream for
//! `#[cfg(test)]` / `#[test]` attributes and brace-matching the item
//! that follows. No AST is built — just attribute recognition plus a
//! depth counter, which is exactly as much parsing as the rules need.

use crate::lexer::{Token, TokenKind};

/// An inclusive 1-based line range of test-only code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineSpan {
    /// First line of the span.
    pub start: u32,
    /// Last line of the span.
    pub end: u32,
}

impl LineSpan {
    /// Whether `line` falls inside the span.
    #[must_use]
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// Find the line spans of items guarded by `#[cfg(test)]` or `#[test]`.
///
/// Handles the attribute being followed by further attributes or doc
/// comments before the item keyword, and items that end with `;`
/// (declaration-only, e.g. `#[cfg(test)] mod tests;`) by spanning just
/// that line.
#[must_use]
pub fn test_spans(tokens: &[Token]) -> Vec<LineSpan> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut spans: Vec<LineSpan> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if let Some(after_attr) = match_test_attribute(&code, i) {
            if let Some(span) = item_span(&code, after_attr) {
                // Collapse nested test items (a #[test] fn inside a
                // #[cfg(test)] mod) into the enclosing span.
                if !spans.iter().any(|s| s.contains(span.start)) {
                    spans.push(span);
                }
            }
            i = after_attr;
            continue;
        }
        i += 1;
    }
    spans
}

/// Whether any span in `spans` covers `line`.
#[must_use]
pub fn in_test_code(spans: &[LineSpan], line: u32) -> bool {
    spans.iter().any(|s| s.contains(line))
}

/// If `code[i..]` starts a `#[cfg(test)]` or `#[test]` attribute,
/// return the index just past its closing `]`.
fn match_test_attribute(code: &[&Token], i: usize) -> Option<usize> {
    if !(code.get(i)?.is_punct('#') && code.get(i + 1)?.is_punct('[')) {
        return None;
    }
    // Collect the attribute's tokens up to the matching `]`.
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut idents: Vec<&str> = Vec::new();
    while j < code.len() {
        let tok = code[j];
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if tok.kind == TokenKind::Ident {
            idents.push(&tok.text);
        }
        j += 1;
    }
    // Exactly `#[test]` or `#[cfg(test)]`: anything fancier (e.g.
    // `#[cfg(not(test))]`, `#[cfg(any(test, …))]`) also compiles into
    // non-test builds, so the conservative call is to keep auditing it.
    let is_test = idents.as_slice() == ["test"] || idents.as_slice() == ["cfg", "test"];
    if is_test {
        Some(j + 1)
    } else {
        None
    }
}

/// The line span of the item starting at `code[start]`: skips any
/// further attributes, then brace-matches the first `{ … }` block.
fn item_span(code: &[&Token], mut start: usize) -> Option<LineSpan> {
    // Skip stacked attributes (e.g. #[cfg(test)] #[allow(…)] mod t {…}).
    while start + 1 < code.len() && code[start].is_punct('#') && code[start + 1].is_punct('[') {
        let mut depth = 0usize;
        let mut j = start + 1;
        while j < code.len() {
            if code[j].is_punct('[') {
                depth += 1;
            } else if code[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        start = j + 1;
    }
    let first_line = code.get(start)?.line;
    // Find the opening brace of the item body; a `;` first means a
    // declaration-only item.
    let mut j = start;
    while j < code.len() {
        if code[j].is_punct(';') {
            return Some(LineSpan {
                start: first_line,
                end: code[j].line,
            });
        }
        if code[j].is_punct('{') {
            break;
        }
        j += 1;
    }
    if j >= code.len() {
        return None;
    }
    let mut depth = 0usize;
    while j < code.len() {
        if code[j].is_punct('{') {
            depth += 1;
        } else if code[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(LineSpan {
                    start: first_line,
                    end: code[j].line,
                });
            }
        }
        j += 1;
    }
    // Unbalanced braces (malformed input): treat the rest of the file
    // as part of the item so test code is never misclassified as prod.
    Some(LineSpan {
        start: first_line,
        end: code.last()?.line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_spanned() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let toks = lex(src);
        let spans = test_spans(&toks);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (3, 5));
        assert!(!in_test_code(&spans, 1));
        assert!(in_test_code(&spans, 4));
        assert!(!in_test_code(&spans, 6));
    }

    #[test]
    fn test_fn_and_stacked_attributes() {
        let src = "#[test]\n#[allow(clippy::all)]\nfn check() {\n    boom();\n}\n";
        let spans = test_spans(&lex(src));
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (3, 5));
    }

    #[test]
    fn nested_test_items_collapse() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn a() {}\n}\n";
        let spans = test_spans(&lex(src));
        assert_eq!(spans.len(), 1);
    }

    #[test]
    fn cfg_not_test_is_ignored() {
        let src = "#[cfg(feature = \"x\")]\nmod extra { fn f() {} }\n";
        assert!(test_spans(&lex(src)).is_empty());
    }

    #[test]
    fn declaration_only_items() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() {}\n";
        let spans = test_spans(&lex(src));
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (2, 2));
        assert!(!in_test_code(&spans, 3));
    }
}
