//! A hand-rolled Rust lexer, just deep enough for auditing.
//!
//! The rules in this crate must never fire on the word `unsafe` inside a
//! doc comment or on `"Instant"` inside a string literal, so the audit
//! cannot be a plain text grep: it needs real token boundaries. This
//! lexer produces a flat token stream with line/column spans, keeping
//! comments as tokens (the suppression syntax lives in them) while
//! folding string/char/number literals into opaque atoms.
//!
//! It is *not* a full Rust front end — no token trees, no macro
//! expansion — but it handles every construct that matters for lexical
//! soundness: nested block comments, raw strings with arbitrary `#`
//! fences, byte/raw-byte strings, char literals vs. lifetimes, and raw
//! identifiers.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe` is an `Ident` here).
    Ident,
    /// A single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// A lifetime (`'a`) — kept distinct from [`TokenKind::Char`].
    Lifetime,
    /// `// …` comment, including doc comments; text excludes the newline.
    LineComment,
    /// `/* … */` comment (possibly nested, possibly multi-line).
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Raw source text (for `Str`/`Char`/`Num` the literal body, for
    /// comments the full comment text).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// `true` when the token is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` for a specific punctuation character.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct(ch)
    }

    /// `true` for either comment kind.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    chars: std::str::Chars<'a>,
    peeked: Option<char>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars(),
            peeked: None,
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    /// Peek one character past [`peek`](Self::peek) without consuming.
    fn peek2(&mut self) -> Option<char> {
        let _ = self.peek();
        self.chars.clone().next()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peeked.take().or_else(|| self.chars.next())?;
        if ch == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(ch)
    }
}

/// Lex `src` into a flat token stream.
///
/// The lexer never fails: malformed input (an unterminated string, a
/// stray quote) degrades to best-effort tokens rather than an error, so
/// the audit still covers the rest of the file.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    // A leading shebang (`#!/usr/bin/env …`) is legal in a Rust source
    // file and is not an inner attribute (`#![…]`). Swallow it as a
    // line comment so it cannot masquerade as punctuation.
    if src.starts_with("#!") && !src.starts_with("#![") {
        tokens.push(line_comment(&mut cur, 1, 1));
    }
    while let Some(ch) = cur.peek() {
        let line = cur.line;
        let col = cur.col;
        if ch.is_whitespace() {
            cur.bump();
            continue;
        }
        if ch == '/' {
            match cur.peek2() {
                Some('/') => {
                    tokens.push(line_comment(&mut cur, line, col));
                    continue;
                }
                Some('*') => {
                    tokens.push(block_comment(&mut cur, line, col));
                    continue;
                }
                _ => {}
            }
        }
        if ch == '\'' {
            tokens.push(char_or_lifetime(&mut cur, line, col));
            continue;
        }
        if ch == '"' {
            tokens.push(string(&mut cur, line, col));
            continue;
        }
        if ch.is_ascii_digit() {
            tokens.push(number(&mut cur, line, col));
            continue;
        }
        if ch.is_alphabetic() || ch == '_' {
            tokens.push(ident_or_prefixed_literal(&mut cur, line, col));
            continue;
        }
        cur.bump();
        tokens.push(Token {
            kind: TokenKind::Punct(ch),
            text: ch.to_string(),
            line,
            col,
        });
    }
    tokens
}

fn line_comment(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(ch) = cur.peek() {
        if ch == '\n' {
            break;
        }
        text.push(ch);
        cur.bump();
    }
    // CRLF sources leave a trailing `\r` on the comment text; strip it
    // so suppression-marker parsing sees the same bytes either way.
    if text.ends_with('\r') {
        text.pop();
    }
    Token {
        kind: TokenKind::LineComment,
        text,
        line,
        col,
    }
}

fn block_comment(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut depth = 0u32;
    while let Some(ch) = cur.bump() {
        text.push(ch);
        if ch == '/' && cur.peek() == Some('*') {
            text.push('*');
            cur.bump();
            depth += 1;
        } else if ch == '*' && cur.peek() == Some('/') {
            text.push('/');
            cur.bump();
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
    }
    Token {
        kind: TokenKind::BlockComment,
        text,
        line,
        col,
    }
}

/// After a leading `'`: either a lifetime (`'a`, `'static`) or a char
/// literal (`'x'`, `'\n'`, `'\u{1F600}'`).
fn char_or_lifetime(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    cur.bump(); // the opening quote
    let first = cur.peek();
    let second = cur.peek2();
    let is_lifetime =
        matches!(first, Some(c) if c.is_alphabetic() || c == '_') && second != Some('\'');
    if is_lifetime {
        let mut text = String::from("'");
        while let Some(c) = cur.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Token {
            kind: TokenKind::Lifetime,
            text,
            line,
            col,
        };
    }
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        if c == '\\' {
            text.push(c);
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        if c == '\'' && !text.is_empty() {
            break;
        }
        text.push(c);
        // A char literal holds one (possibly escaped) character; stop at
        // the closing quote found above, or bail on newline (malformed).
        if c == '\n' {
            break;
        }
    }
    Token {
        kind: TokenKind::Char,
        text,
        line,
        col,
    }
}

fn string(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                text.push(c);
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            '"' => break,
            other => text.push(other),
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

/// `r"…"`, `r#"…"#` (any fence depth), after the `r`/`br` prefix and
/// with `fence` hashes already counted and consumed.
fn raw_string(cur: &mut Cursor<'_>, fence: usize, line: u32, col: u32) -> Token {
    cur.bump(); // opening quote
    let mut text = String::new();
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            // A candidate close: need `fence` hashes.
            let mut seen = 0usize;
            while seen < fence && cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            }
            if seen == fence {
                break 'scan;
            }
            text.push('"');
            for _ in 0..seen {
                text.push('#');
            }
            continue;
        }
        text.push(c);
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

fn number(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' || c == '.' {
            // Stop a range expression `0..n` from being eaten as `0..`.
            if c == '.' && cur.peek2() == Some('.') {
                break;
            }
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Token {
        kind: TokenKind::Num,
        text,
        line,
        col,
    }
}

fn ident_or_prefixed_literal(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Literal prefixes: r"…", b"…", br"…", r#"…"#, br#"…"#, b'…',
    // and raw identifiers r#name.
    match (text.as_str(), cur.peek()) {
        ("r" | "br" | "b" | "rb", Some('"')) => return raw_string(cur, 0, line, col),
        ("r" | "br" | "rb", Some('#')) => {
            // Count the fence; `r#ident` (fence then letter, no quote)
            // is a raw identifier instead.
            let mut fence = 0usize;
            while cur.peek() == Some('#') {
                cur.bump();
                fence += 1;
            }
            if cur.peek() == Some('"') {
                return raw_string(cur, fence, line, col);
            }
            // Raw identifier: keep lexing the name, report it bare.
            let mut name = String::new();
            while let Some(c) = cur.peek() {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            return Token {
                kind: TokenKind::Ident,
                text: name,
                line,
                col,
            };
        }
        ("b", Some('\'')) => {
            cur.bump(); // the quote
            let mut body = String::new();
            while let Some(c) = cur.bump() {
                if c == '\\' {
                    body.push(c);
                    if let Some(esc) = cur.bump() {
                        body.push(esc);
                    }
                    continue;
                }
                if c == '\'' {
                    break;
                }
                body.push(c);
            }
            return Token {
                kind: TokenKind::Char,
                text: body,
                line,
                col,
            };
        }
        _ => {}
    }
    Token {
        kind: TokenKind::Ident,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("let x = a.b;\nfn y() {}");
        assert!(toks[0].is_ident("let"));
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert!(toks[3].is_ident("a"));
        assert!(toks[4].is_punct('.'));
        let fn_tok = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!((fn_tok.line, fn_tok.col), (2, 1));
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = lex("// unsafe here\n/* Instant::now()\n * still comment */ real");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(toks[0].text.contains("unsafe"));
        assert_eq!(toks[1].kind, TokenKind::BlockComment);
        assert!(toks[1].text.contains("Instant"));
        assert!(toks[2].is_ident("real"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* a /* b */ c */ after");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[1].is_ident("after"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds("let s = \"unsafe \\\" thread::spawn\"; x");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("spawn")));
        // No Ident token for the words inside the string.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "spawn"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds("r#\"has \"quotes\" and unsafe\"# done");
        assert_eq!(toks[0].0, TokenKind::Str);
        assert!(toks[0].1.contains("\"quotes\""));
        assert_eq!(toks[1], (TokenKind::Ident, "done".into()));
        let toks = kinds("br\"bytes\" b\"more\"");
        assert!(toks.iter().all(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn crlf_sources_keep_line_numbers_and_clean_comments() {
        let toks = lex("let a = 1;\r\n// audit:allow(no-panic, crlf)\r\nfn b() {}\r\n");
        let fn_tok = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(fn_tok.line, 3);
        let comment = toks
            .iter()
            .find(|t| t.kind == TokenKind::LineComment)
            .unwrap();
        assert_eq!(comment.line, 2);
        // The trailing `\r` must not leak into the marker text.
        assert!(comment.text.ends_with("crlf)"));
        assert!(!comment.text.contains('\r'));
    }

    #[test]
    fn leading_shebang_is_swallowed_as_comment() {
        let toks = lex("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert!(toks[0].text.contains("env"));
        let fn_tok = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(fn_tok.line, 2);
        // No stray punctuation from the shebang line.
        assert!(!toks.iter().any(|t| t.is_punct('#')));
        // An inner attribute is NOT a shebang and must still lex as `#` `!` `[`.
        let attr = lex("#![allow(dead_code)]\nfn main() {}\n");
        assert!(attr[0].is_punct('#'));
        assert!(attr[1].is_punct('!'));
        assert!(attr[2].is_punct('['));
    }

    #[test]
    fn nested_block_comment_containing_raw_string_delimiters() {
        // The `r#"` inside the comment is plain text; both `*/` are
        // needed to close the two open comments.
        let toks = lex("/* outer /* r#\" inner */ tail */ after");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text.contains("r#\""));
        assert!(toks[0].text.contains("tail"));
        assert!(toks[1].is_ident("after"));
        assert_eq!(toks.len(), 2);
        // Dually: comment delimiters inside a raw string stay string text.
        let toks = lex("r#\"/* not a comment */\"# done");
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert!(toks[1].is_ident("done"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("'a' 'x 'static b'\\n' '\\''");
        assert_eq!(toks[0].0, TokenKind::Char);
        assert_eq!(toks[1].0, TokenKind::Lifetime);
        assert_eq!(toks[2].0, TokenKind::Lifetime);
        assert_eq!(toks[3].0, TokenKind::Char);
        assert_eq!(toks[4].0, TokenKind::Char);
    }

    #[test]
    fn raw_identifiers_lex_bare() {
        let toks = kinds("r#unsafe r#fn");
        assert_eq!(toks[0], (TokenKind::Ident, "unsafe".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "fn".into()));
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("0..n 1.5 0xFF 1_000u64");
        assert_eq!(toks[0], (TokenKind::Num, "0".into()));
        assert_eq!(toks[1].0, TokenKind::Punct('.'));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "1.5"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Num && t == "0xFF"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Num && t == "1_000u64"));
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        let _ = lex("\"never closed");
        let _ = lex("/* never closed");
        let _ = lex("r#\"never closed");
    }
}
