//! Plain-text table rendering for the benchmark binaries.

/// Render rows as an aligned plain-text table with a header rule.
///
/// # Panics
/// Panics if any row has a different number of columns than the header.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float compactly: scientific for tiny magnitudes, fixed
/// otherwise.
#[must_use]
pub fn fmt_value(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() < 1e-3 || x.abs() >= 1e6 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// Render an ASCII scatter plot of 2-D points, one glyph per cluster —
/// the textual stand-in for the paper's Figure 3 panels.
///
/// # Panics
/// Panics if points are not 2-D or a label is out of glyph range (>= 8).
#[must_use]
pub fn ascii_scatter(points: &[Vec<f64>], labels: &[usize], width: usize, height: usize) -> String {
    const GLYPHS: [char; 8] = ['o', '+', 'x', '#', '*', '@', '%', '&'];
    assert_eq!(points.len(), labels.len(), "one label per point");
    assert!(points.iter().all(|p| p.len() == 2), "points must be 2-D");
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        min_x = min_x.min(p[0]);
        max_x = max_x.max(p[0]);
        min_y = min_y.min(p[1]);
        max_y = max_y.max(p[1]);
    }
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (p, &label) in points.iter().zip(labels) {
        let col = (((p[0] - min_x) / span_x) * (width - 1) as f64).round() as usize;
        let row = (((max_y - p[1]) / span_y) * (height - 1) as f64).round() as usize;
        grid[row][col] = GLYPHS[label];
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let rows = vec![
            vec!["a".into(), "1.25".into()],
            vec!["bbbb".into(), "2".into()],
        ];
        let text = render_table(&["name", "value"], &rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn fmt_value_picks_representation() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(0.5), "0.5000");
        assert!(fmt_value(1e-6).contains('e'));
        assert!(fmt_value(2e7).contains('e'));
    }

    #[test]
    fn scatter_places_clusters_apart() {
        let points = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        let labels = vec![0, 1];
        let plot = ascii_scatter(&points, &labels, 11, 11);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 11);
        // label 1 (+) at top-right, label 0 (o) at bottom-left.
        assert_eq!(lines[0].chars().nth(10), Some('+'));
        assert_eq!(lines[10].chars().next(), Some('o'));
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
