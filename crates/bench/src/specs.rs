//! Experiment specifications — the single source of truth for every
//! parameter in Tables 2–4.

use std::sync::OnceLock;

use approx_arith::EnergyProfile;
use iter_solvers::datasets::{self, ClusterDataset, SeriesDataset};
use iter_solvers::{AutoRegression, GaussianMixture};

/// The energy profile shared by every experiment (characterized once by
/// gate-level simulation of the paper-default QCS adder).
pub fn shared_profile() -> &'static EnergyProfile {
    static PROFILE: OnceLock<EnergyProfile> = OnceLock::new();
    PROFILE.get_or_init(EnergyProfile::paper_default)
}

/// One GMM experiment configuration (a row of Table 2).
#[derive(Debug, Clone)]
pub struct GmmSpec {
    /// The dataset.
    pub dataset: ClusterDataset,
    /// Convergence tolerance on the per-coordinate mean movement.
    pub convergence: f64,
    /// Iteration budget (`MAX_ITER`).
    pub max_iterations: usize,
    /// Initialization seed (identical across configurations, as the
    /// paper requires).
    pub init_seed: u64,
}

impl GmmSpec {
    /// Instantiate the model for this spec.
    #[must_use]
    pub fn model(&self) -> GaussianMixture {
        GaussianMixture::from_dataset(
            &self.dataset,
            self.convergence,
            self.max_iterations,
            self.init_seed,
        )
    }

    /// Dataset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.dataset.name
    }
}

/// The three GMM rows of Table 2: `3cluster`, `3d3cluster`, `4cluster`
/// with their MAX_ITER = 500 and convergence tolerances (1e-10, 1e-6,
/// 1e-6).
#[must_use]
pub fn gmm_specs() -> Vec<GmmSpec> {
    vec![
        GmmSpec {
            dataset: datasets::three_cluster(),
            convergence: 1e-10,
            max_iterations: 500,
            init_seed: 7,
        },
        GmmSpec {
            dataset: datasets::three_d_three_cluster(),
            convergence: 1e-6,
            max_iterations: 500,
            init_seed: 7,
        },
        GmmSpec {
            dataset: datasets::four_cluster(),
            convergence: 1e-6,
            max_iterations: 500,
            init_seed: 7,
        },
    ]
}

/// One AutoRegression experiment configuration (a row of Table 2).
#[derive(Debug, Clone)]
pub struct ArSpec {
    /// The series.
    pub series: SeriesDataset,
    /// Gradient-descent step size α.
    pub step_size: f64,
    /// Convergence tolerance on the per-coefficient movement.
    pub convergence: f64,
    /// Iteration budget (`MAX_ITER`).
    pub max_iterations: usize,
}

impl ArSpec {
    /// Instantiate the regression for this spec.
    #[must_use]
    pub fn model(&self) -> AutoRegression {
        AutoRegression::from_series(
            &self.series,
            self.step_size,
            self.convergence,
            self.max_iterations,
        )
    }

    /// Dataset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.series.name
    }
}

/// The three AR rows of Table 2: HangSeng-, NASDAQ- and S&P-500-like
/// series, order 10, tolerance 1e-13, MAX_ITER = 1000.
#[must_use]
pub fn ar_specs() -> Vec<ArSpec> {
    vec![
        ArSpec {
            series: datasets::hang_seng_like(),
            step_size: 0.2,
            convergence: 1e-13,
            max_iterations: 1000,
        },
        ArSpec {
            series: datasets::nasdaq_like(),
            step_size: 0.2,
            convergence: 1e-13,
            max_iterations: 1000,
        },
        ArSpec {
            series: datasets::sp500_like(),
            step_size: 0.2,
            convergence: 1e-13,
            max_iterations: 1000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table2_shapes() {
        let gmm = gmm_specs();
        assert_eq!(gmm.len(), 3);
        assert_eq!(gmm[0].dataset.len(), 1000);
        assert_eq!(gmm[1].dataset.len(), 1900);
        assert_eq!(gmm[2].dataset.len(), 2350);
        assert!(gmm.iter().all(|s| s.max_iterations == 500));

        let ar = ar_specs();
        assert_eq!(ar.len(), 3);
        assert_eq!(ar[0].series.num_samples(), 6694);
        assert_eq!(ar[1].series.num_samples(), 10799);
        assert_eq!(ar[2].series.num_samples(), 16080);
        assert!(ar.iter().all(|s| s.max_iterations == 1000));
        assert!(ar.iter().all(|s| s.convergence == 1e-13));
    }

    #[test]
    fn shared_profile_is_cached() {
        let a = shared_profile();
        let b = shared_profile();
        assert!(std::ptr::eq(a, b));
    }
}
