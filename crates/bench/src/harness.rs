//! A minimal, dependency-free micro-benchmark harness.
//!
//! The bench targets (`benches/*.rs`, built with `harness = false`) used
//! to rely on an external benchmarking crate; that made `cargo build`
//! depend on a reachable registry. This harness keeps the same shape —
//! named benchmarks, warm-up, repeated timed samples, a median
//! nanoseconds-per-iteration report — with nothing but `std::time`.
//!
//! Run with `cargo bench -p approxit-bench` (all targets) or pass a
//! substring to filter: `cargo bench -p approxit-bench -- context_add`.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Named-benchmark runner with a substring filter taken from argv.
#[derive(Debug)]
pub struct Harness {
    filters: Vec<String>,
    samples: usize,
    target_sample_time: Duration,
}

impl Harness {
    /// Build a harness from the process arguments. Positional arguments
    /// are name filters (substring match); flags (anything starting with
    /// `-`, e.g. the `--bench` cargo passes) are ignored.
    #[must_use]
    pub fn from_args() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Self {
            filters,
            samples: 7,
            target_sample_time: Duration::from_millis(40),
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Time `f`, printing a `name ... median ns/iter (min..max)` line.
    ///
    /// The closure's return value is routed through [`black_box`] so the
    /// computation cannot be optimized away.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if !self.matches(name) {
            return;
        }
        // Warm-up and per-sample iteration-count calibration.
        let mut iters: u64 = 1;
        let calibration = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break elapsed;
            }
            iters *= 4;
        };
        let per_iter = calibration.as_nanos().max(1) / u128::from(iters);
        let sample_iters = (self.target_sample_time.as_nanos() / per_iter.max(1)).clamp(1, 1 << 28);
        let sample_iters = u64::try_from(sample_iters).expect("clamped above");

        let mut ns_per_iter: Vec<u128> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..sample_iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() / u128::from(sample_iters)
            })
            .collect();
        ns_per_iter.sort_unstable();
        let median = ns_per_iter[ns_per_iter.len() / 2];
        let min = ns_per_iter[0];
        let max = ns_per_iter[ns_per_iter.len() - 1];
        println!(
            "{name:<40} {median:>12} ns/iter  (min {min}, max {max}, {sample_iters} iters/sample)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_matches_substrings() {
        let h = Harness {
            filters: vec!["add".to_owned()],
            samples: 1,
            target_sample_time: Duration::from_micros(1),
        };
        assert!(h.matches("context_add/level1"));
        assert!(!h.matches("lp/solve"));
    }

    #[test]
    fn empty_filter_matches_everything() {
        let h = Harness {
            filters: Vec::new(),
            samples: 1,
            target_sample_time: Duration::from_micros(1),
        };
        assert!(h.matches("anything"));
    }

    #[test]
    fn bench_runs_the_closure() {
        let h = Harness {
            filters: Vec::new(),
            samples: 1,
            target_sample_time: Duration::from_micros(10),
        };
        let mut calls = 0u64;
        h.bench("smoke", || {
            calls += 1;
            calls
        });
        assert!(calls > 0);
    }
}
