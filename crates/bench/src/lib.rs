//! Benchmark harness regenerating every table and figure of the ApproxIt
//! paper.
//!
//! Each binary in `src/bin/` reproduces one exhibit:
//!
//! | binary    | paper exhibit |
//! |-----------|---------------|
//! | `table2`  | Table 2 — dataset & parameter description |
//! | `table3`  | Table 3 — GMM single-mode and reconfiguration results |
//! | `table4`  | Table 4 — AutoRegression single-mode and reconfiguration results |
//! | `fig3`    | Figure 3 — GMM clustering scatter (per-mode assignments) |
//! | `fig4`    | Figure 4 — GMM energy comparison (total & per-iteration) |
//! | `ablation`| extensions: scheme ablation, f-step sweep, PID baseline, width sweep |
//! | `verify`  | formal pipeline: lint, BDD equivalence proofs, exact error characterization, static range analysis |
//! | `guarantee` | static quality-guarantee proofs: controller model checking (+ symbolic BDD cross-check), error-propagation × contraction recurrence, dominance over the measured characterization table |
//! | `resilience` | fault campaign: quality vs fault rate under the runner watchdog |
//! | `survey`  | adder design-space survey: error × energy × delay |
//! | `perf`    | packed-vs-scalar cross-check + exhaustive-sweep speedup measurement |
//! | `experiment` | general runner for ad-hoc method/dataset/strategy sweeps |
//!
//! This library holds the shared experiment definitions so the binaries,
//! the integration tests, and the micro-benchmarks agree on every
//! parameter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod harness;
pub mod render;
pub mod specs;
pub mod tables;

pub use specs::{ar_specs, gmm_specs, shared_profile, ArSpec, GmmSpec};
pub use tables::{
    ar_reconfig_rows, ar_single_mode_rows, gmm_reconfig_rows, gmm_single_mode_rows, ReconfigRow,
    SingleModeRow,
};
