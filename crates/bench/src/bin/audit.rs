//! Workspace determinism & hermeticity audit.
//!
//! Runs the static-analysis pass from `crates/auditor` over every
//! workspace source file and `Cargo.toml`, and converts the result into
//! the shared [`Checker`] verdict format: one check per rule (zero
//! unsuppressed findings), plus suppression-hygiene and coverage
//! checks. CI runs this in the lint job; a clean tree is the merge
//! gate.
//!
//! Unlike the other binaries, `--json PATH` writes the full
//! `approxit-audit/2` report (every violation and suppression with
//! file:line spans and source→sink traces) rather than the check
//! summary — that document is the CI artifact.
//!
//! Two further outputs support the taint pass:
//!
//! - `--baseline PATH` diffs the current findings against a committed
//!   `approxit-audit/2` report: the run fails only on findings **new**
//!   relative to the baseline, so a burn-down of historical findings
//!   can land incrementally without blocking unrelated PRs.
//! - `--dot PATH` writes the workspace call graph (the interprocedural
//!   skeleton the taint fixpoint runs on) in Graphviz format.
//!
//! ```text
//! cargo run --release -p bench --bin audit            # human output
//! cargo run --release -p bench --bin audit -- --json AUDIT_report.json
//! cargo run --release -p bench --bin audit -- --baseline AUDIT_baseline.json
//! cargo run --release -p bench --bin audit -- --dot CALLGRAPH.dot
//! ```

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::ExitCode;

use approxit_bench::cli::{BenchOpts, Checker};
use auditor::report::{check_schema, parse_violation_keys};
use auditor::{audit_sources, collect_sources, taint, AuditConfig, Violation, RULES};

fn main() -> ExitCode {
    let mut opts = BenchOpts::parse();
    let json = opts.json.take(); // reserved for the audit report itself
    let baseline_path = opts.flag_value("--baseline").map(PathBuf::from);
    let dot_path = opts.flag_value("--dot").map(PathBuf::from);

    let root = workspace_root();
    opts.say(&format!("auditing workspace at {}", root.display()));
    let config = AuditConfig::approxit(&root);
    let sources = match collect_sources(&config) {
        Ok(sources) => sources,
        Err(error) => {
            eprintln!("audit: walking {} failed: {error}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let report = audit_sources(&sources, &config);

    // With a baseline, only findings absent from it gate the run.
    let known = match &baseline_path {
        Some(path) => match load_baseline_keys(path) {
            Ok(keys) => Some(keys),
            Err(error) => {
                eprintln!("audit: baseline {}: {error}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let is_new = |v: &Violation| {
        known
            .as_ref()
            .is_none_or(|k| !k.contains(&(v.rule.to_owned(), v.file.clone(), v.line)))
    };

    // Findings always print, sorted; known/suppressed ones only without -q.
    for violation in &report.violations {
        if is_new(violation) {
            println!("  {violation}");
        } else if !opts.quiet {
            println!("  baseline   {violation}");
        }
    }
    if !opts.quiet {
        for violation in &report.suppressed {
            println!("  allowed    {violation}");
        }
    }

    let mut checker = Checker::new(opts.quiet);
    checker.note(&format!(
        "scanned {} files: {} unsuppressed ({} errors, {} warnings), {} suppressed",
        report.files_scanned,
        report.violations.len(),
        report.error_count(),
        report.warning_count(),
        report.suppressed.len(),
    ));
    if let Some(keys) = &known {
        checker.note(&format!(
            "baseline {} carries {} known finding(s)",
            baseline_path
                .as_ref()
                .map_or_else(String::new, |p| p.display().to_string()),
            keys.len(),
        ));
    }
    for (rule, _, open, suppressed) in &report.rule_counts {
        let new = report
            .violations
            .iter()
            .filter(|v| v.rule == *rule && is_new(v))
            .count();
        let detail = match (new, *open, *suppressed) {
            (0, 0, 0) => "clean".to_owned(),
            (0, 0, s) => format!("clean ({s} suppressed)"),
            (0, o, _) => format!("clean ({o} known in baseline)"),
            (n, o, _) if n < o => format!("{n} new finding(s), {} known", o - n),
            (n, _, _) => format!("{n} unsuppressed finding(s)"),
        };
        checker.check(&format!("rule {rule}"), new == 0, &detail);
    }
    checker.check(
        "rule roster covers the contract",
        report.rule_counts.len() == RULES.len(),
        &format!("{} rules", RULES.len()),
    );
    checker.check(
        "suppressions are budgeted and justified",
        report
            .suppressions
            .iter()
            .all(|s| s.used && !s.reason.is_empty()),
        &format!("{} markers", report.suppressions.len()),
    );
    // A collapsing walk (wrong root, renamed dirs) must fail loudly
    // rather than report a vacuously clean tree.
    checker.check(
        "workspace coverage",
        report.files_scanned >= 60,
        &format!("{} files", report.files_scanned),
    );

    if let Some(path) = &json {
        if let Err(error) = std::fs::write(path, report.to_json()) {
            eprintln!("audit: could not write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        checker.note(&format!("wrote {}", path.display()));
    }
    if let Some(path) = &dot_path {
        let workspace = taint::build_workspace(&sources, &config);
        if let Err(error) = std::fs::write(path, workspace.to_dot()) {
            eprintln!("audit: could not write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        checker.note(&format!("wrote call graph to {}", path.display()));
    }
    checker.finish("audit", &opts)
}

/// Read and validate a committed baseline report, returning its
/// unsuppressed violation keys as a `(rule, file, line)` set.
fn load_baseline_keys(path: &std::path::Path) -> Result<HashSet<(String, String, u32)>, String> {
    let text = std::fs::read_to_string(path).map_err(|error| format!("could not read: {error}"))?;
    check_schema(&text)?;
    Ok(parse_violation_keys(&text)?.into_iter().collect())
}

/// The workspace root: two levels above this crate's manifest dir, with
/// the current directory as fallback for a relocated binary.
fn workspace_root() -> PathBuf {
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    compiled
        .parent()
        .and_then(std::path::Path::parent)
        .filter(|root| root.join("Cargo.toml").is_file())
        .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf)
}
