//! Workspace determinism & hermeticity audit.
//!
//! Runs the static-analysis pass from `crates/auditor` over every
//! workspace source file and `Cargo.toml`, and converts the result into
//! the shared [`Checker`] verdict format: one check per rule (zero
//! unsuppressed findings), plus suppression-hygiene and coverage
//! checks. CI runs this in the lint job; a clean tree is the merge
//! gate.
//!
//! Unlike the other binaries, `--json PATH` writes the full
//! `approxit-audit/1` report (every violation and suppression with
//! file:line spans) rather than the check summary — that document is
//! the CI artifact.
//!
//! ```text
//! cargo run --release -p bench --bin audit            # human output
//! cargo run --release -p bench --bin audit -- --json AUDIT_report.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use approxit_bench::cli::{BenchOpts, Checker};
use auditor::{run_audit, AuditConfig, RULES};

fn main() -> ExitCode {
    let mut opts = BenchOpts::parse();
    let json = opts.json.take(); // reserved for the audit report itself

    let root = workspace_root();
    opts.say(&format!("auditing workspace at {}", root.display()));
    let config = AuditConfig::approxit(&root);
    let report = match run_audit(&config) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("audit: walking {} failed: {error}", root.display());
            return ExitCode::FAILURE;
        }
    };

    // Findings always print, sorted; suppressed ones only without -q.
    for violation in &report.violations {
        println!("  {violation}");
    }
    if !opts.quiet {
        for violation in &report.suppressed {
            println!("  allowed    {violation}");
        }
    }

    let mut checker = Checker::new(opts.quiet);
    checker.note(&format!(
        "scanned {} files: {} unsuppressed ({} errors, {} warnings), {} suppressed",
        report.files_scanned,
        report.violations.len(),
        report.error_count(),
        report.warning_count(),
        report.suppressed.len(),
    ));
    for (rule, _, open, suppressed) in &report.rule_counts {
        let detail = match (open, suppressed) {
            (0, 0) => "clean".to_owned(),
            (0, s) => format!("clean ({s} suppressed)"),
            (n, _) => format!("{n} unsuppressed finding(s)"),
        };
        checker.check(&format!("rule {rule}"), *open == 0, &detail);
    }
    checker.check(
        "rule roster covers the contract",
        report.rule_counts.len() == RULES.len(),
        &format!("{} rules", RULES.len()),
    );
    checker.check(
        "suppressions are budgeted and justified",
        report
            .suppressions
            .iter()
            .all(|s| s.used && !s.reason.is_empty()),
        &format!("{} markers", report.suppressions.len()),
    );
    // A collapsing walk (wrong root, renamed dirs) must fail loudly
    // rather than report a vacuously clean tree.
    checker.check(
        "workspace coverage",
        report.files_scanned >= 60,
        &format!("{} files", report.files_scanned),
    );

    if let Some(path) = &json {
        if let Err(error) = std::fs::write(path, report.to_json()) {
            eprintln!("audit: could not write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        checker.note(&format!("wrote {}", path.display()));
    }
    checker.finish("audit", &opts)
}

/// The workspace root: two levels above this crate's manifest dir, with
/// the current directory as fallback for a relocated binary.
fn workspace_root() -> PathBuf {
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    compiled
        .parent()
        .and_then(std::path::Path::parent)
        .filter(|root| root.join("Cargo.toml").is_file())
        .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf)
}
