//! General experiment runner: any benchmark method × any strategy, with
//! table or CSV output.
//!
//! ```text
//! experiment --method gmm --dataset 3cluster --strategy adaptive --f 2
//! experiment --method ar --dataset sp500 --strategy all --csv
//! experiment --method kmeans --dataset 4cluster --strategy pid
//! experiment --method poisson --grid 23 --strategy incremental
//! ```
//!
//! `--strategy all` runs Truth, every single mode, both ApproxIt
//! strategies, and the PID baseline. Add `--csv` for machine-readable
//! output (one [`approxit::RunReport`] row per run).

use std::process::ExitCode;

use approx_arith::{AccuracyLevel, QcsContext};
use approxit::{
    characterize, AdaptiveAngleStrategy, IncrementalStrategy, PidStrategy, ReconfigStrategy,
    RunConfig, RunReport, SingleMode,
};
use approxit_bench::cli::BenchOpts;
use approxit_bench::render::{fmt_value, render_table};
use approxit_bench::{ar_specs, gmm_specs, shared_profile};
use iter_solvers::{IterativeMethod, KMeans, PoissonJacobi, PoissonSource};

struct Options {
    method: String,
    dataset: String,
    strategy: String,
    update_period: usize,
    grid: usize,
    csv: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        method: "gmm".to_owned(),
        dataset: "3cluster".to_owned(),
        strategy: "all".to_owned(),
        update_period: 1,
        grid: 23,
        csv: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag {
            "--method" => options.method = take_value("--method")?,
            "--dataset" => options.dataset = take_value("--dataset")?,
            "--strategy" => options.strategy = take_value("--strategy")?,
            "--f" => {
                options.update_period = take_value("--f")?
                    .parse()
                    .map_err(|_| "--f expects a positive integer".to_owned())?;
            }
            "--grid" => {
                options.grid = take_value("--grid")?
                    .parse()
                    .map_err(|_| "--grid expects a positive integer".to_owned())?;
            }
            "--csv" => options.csv = true,
            "--help" | "-h" => {
                return Err("usage: experiment --method gmm|ar|kmeans|poisson \
                            [--dataset NAME] [--strategy all|truth|level1..level4|\
                            incremental|adaptive|pid] [--f N] [--grid N] [--csv]"
                    .to_owned())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    Ok(options)
}

/// Everything the harness needs from a method, type-erased per method
/// family via a driver closure.
fn drive<M>(method: &M, options: &Options) -> Result<Vec<(String, RunReport, f64)>, String>
where
    M: IterativeMethod + Sync,
    M::State: Sync,
{
    let table = characterize(method, shared_profile(), 5);
    let mut ctx = QcsContext::with_profile(shared_profile().clone());
    let truth = RunConfig::new(method, &mut ctx).execute(&mut SingleMode::accurate());

    let mut selected: Vec<(String, Box<dyn ReconfigStrategy>)> = Vec::new();
    let mut add = |name: &str, strategy: Box<dyn ReconfigStrategy>| {
        selected.push((name.to_owned(), strategy));
    };
    let want = options.strategy.as_str();
    let wants = |name: &str| want == "all" || want == name;
    if wants("truth") {
        add("truth", Box::new(SingleMode::accurate()));
    }
    for level in AccuracyLevel::APPROXIMATE {
        if wants(&level.to_string()) {
            add(&level.to_string(), Box::new(SingleMode::new(level)));
        }
    }
    if wants("incremental") {
        add(
            "incremental",
            Box::new(IncrementalStrategy::from_characterization(&table)),
        );
    }
    if wants("adaptive") {
        add(
            "adaptive",
            Box::new(AdaptiveAngleStrategy::from_characterization(
                &table,
                options.update_period,
            )),
        );
    }
    if wants("pid") {
        add("pid", Box::<PidStrategy>::default());
    }
    if selected.is_empty() {
        return Err(format!("unknown strategy {want} (try --help)"));
    }

    Ok(selected
        .into_iter()
        .map(|(name, mut strategy)| {
            let outcome = RunConfig::new(method, &mut ctx).execute(strategy.as_mut());
            let energy = outcome.report.normalized_energy(&truth.report);
            (name, outcome.report, energy)
        })
        .collect())
}

fn main() -> ExitCode {
    let opts = BenchOpts::parse();
    let options = match parse_args(opts.rest()) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let result = match options.method.as_str() {
        "gmm" => {
            let Some(spec) = gmm_specs()
                .into_iter()
                .find(|s| s.name() == options.dataset)
            else {
                eprintln!(
                    "unknown GMM dataset {} (3cluster, 3d3cluster, 4cluster)",
                    options.dataset
                );
                return ExitCode::FAILURE;
            };
            drive(&spec.model(), &options)
        }
        "ar" => {
            let Some(spec) = ar_specs().into_iter().find(|s| s.name() == options.dataset) else {
                eprintln!(
                    "unknown AR dataset {} (hangseng, nasdaq, sp500)",
                    options.dataset
                );
                return ExitCode::FAILURE;
            };
            drive(&spec.model(), &options)
        }
        "kmeans" => {
            let Some(spec) = gmm_specs()
                .into_iter()
                .find(|s| s.name() == options.dataset)
            else {
                eprintln!("unknown dataset {} for kmeans", options.dataset);
                return ExitCode::FAILURE;
            };
            let km = KMeans::from_dataset(&spec.dataset, 1e-6, 500, spec.init_seed);
            drive(&km, &options)
        }
        "poisson" => {
            let pde = PoissonJacobi::new(
                options.grid,
                PoissonSource::Sine { amplitude: 8.0 },
                0.9,
                1e-7,
                5000,
            );
            drive(&pde, &options)
        }
        other => {
            eprintln!("unknown method {other} (gmm, ar, kmeans, poisson)");
            return ExitCode::FAILURE;
        }
    };

    let rows = match result {
        Ok(rows) => rows,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if options.csv {
        println!("{},norm_energy", RunReport::csv_header());
        for (_, report, energy) in &rows {
            println!("{},{}", report.to_csv_row(), energy);
        }
    } else {
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|(name, report, energy)| {
                vec![
                    name.clone(),
                    report.iterations.to_string(),
                    if report.converged { "yes" } else { "NO" }.to_owned(),
                    fmt_value(*energy),
                    report.rollbacks.to_string(),
                    report.schedule_summary(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Strategy",
                    "Iterations",
                    "Converged",
                    "Energy",
                    "Rollbacks",
                    "Schedule"
                ],
                &table_rows,
            )
        );
    }
    ExitCode::SUCCESS
}
