//! End-to-end resilience campaign: structural faults at the netlist
//! level, then quality vs. SEU rate per strategy on GMM and
//! AutoRegression workloads.
//!
//! The application sweep runs every single-mode baseline on raw
//! hardware (guards-only watchdog, no recovery) and the online
//! reconfiguration strategies under the resilient watchdog
//! ([`WatchdogConfig::resilient`]); faults strike the voltage-overscaled
//! approximate modes only (`FaultInjector::sparing_accurate`), so a
//! single-mode approximate baseline has no escape while the adaptive
//! strategy can climb to the dependable accurate mode and still bank the
//! energy saved in its approximate iterations. The tables demonstrate
//! the graceful-degradation claim: at SEU rates where approximate
//! baselines stall at `MAX_ITER`, the adaptive strategy converges to
//! Truth quality with nonzero recovery telemetry.

use std::process::ExitCode;

use approx_arith::{AccuracyLevel, Adder, FaultInjector, FaultModel, QcsAdder, QcsContext};
use approxit::{
    characterize, AdaptiveAngleStrategy, IncrementalStrategy, ReconfigStrategy, RunConfig,
    RunReport, SingleMode, WatchdogConfig,
};
use approxit_bench::cli::{BenchOpts, Checker};
use approxit_bench::render::{fmt_value, render_table};
use approxit_bench::specs::shared_profile;
use gatesim::FaultCampaign;
use iter_solvers::datasets::{ar_series, gaussian_blobs};
use iter_solvers::metrics::{hamming_distance, l2_error};
use iter_solvers::{AutoRegression, GaussianMixture, IterativeMethod};

/// Per-operation SEU rates swept in the application campaign.
const SEU_RATES: [f64; 4] = [0.0, 1e-4, 1e-3, 1e-2];
/// Low result bits exposed to upsets (up to bit 15 of Q15.16 — flips of
/// magnitude up to 0.5, well above any convergence tolerance).
const FAULT_BITS: u32 = 16;
/// Default fault-stream seed: every run of this binary replays the same
/// faults unless `--seed` overrides it.
const SEED: u64 = 0xF01D;

fn faulty_ctx(rate: f64, seed: u64) -> FaultInjector<QcsContext> {
    let inner = QcsContext::with_profile(shared_profile().clone());
    FaultInjector::new(inner, rate, FAULT_BITS, seed).sparing_accurate()
}

fn level_label(level: AccuracyLevel) -> String {
    if level.is_accurate() {
        "Truth".to_owned()
    } else {
        level.to_string()
    }
}

/// Structural campaign on the QCS adder netlist: stuck-at, transient,
/// and timing-overscaling faults with error-magnitude statistics.
fn structural_section(opts: &BenchOpts, c: &mut Checker) {
    opts.say("Structural fault campaign (QCS adder netlist, level2 configuration)\n");
    let adder = QcsAdder::paper_default().at(AccuracyLevel::Level2);
    let (netlist, ports) = adder.netlist();
    let campaign = FaultCampaign::new(&netlist, &ports).vectors(256).seed(3);

    let inputs = netlist.primary_inputs();
    let sites = [
        inputs[0],
        inputs[inputs.len() / 2],
        inputs[inputs.len() - 1],
    ];
    let mut rows = campaign.sweep_stuck_at(&sites);
    rows.extend(campaign.sweep_transient(&[1e-4, 1e-3, 1e-2]));
    rows.extend(campaign.sweep_timing(&[1.0, 0.8, 0.5]));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.label.clone(),
                format!("{:.4}", row.stats.error_rate()),
                fmt_value(row.stats.mean_abs_error),
                fmt_value(row.stats.max_abs_error),
                row.stats.faults_fired.to_string(),
            ]
        })
        .collect();
    opts.say(&render_table(
        &[
            "Fault",
            "Error rate",
            "Mean |err|",
            "Max |err|",
            "Faults fired",
        ],
        &table,
    ));
    c.check(
        "structural: every fault family produced rows with sane statistics",
        !rows.is_empty()
            && rows.iter().all(|row| {
                (0.0..=1.0).contains(&row.stats.error_rate())
                    && row.stats.mean_abs_error.is_finite()
                    && row.stats.max_abs_error.is_finite()
            }),
        &format!("{} fault rows", rows.len()),
    );
    c.check(
        "structural: faults actually fired during the campaign",
        rows.iter().any(|row| row.stats.faults_fired > 0),
        "at least one injection site was exercised",
    );
}

fn report_row(
    rate: f64,
    configuration: &str,
    report: &RunReport,
    qem: f64,
    truth: &RunReport,
) -> Vec<String> {
    vec![
        if rate == 0.0 {
            "0".to_owned()
        } else {
            format!("{rate:.0e}")
        },
        configuration.to_owned(),
        if report.converged {
            report.iterations.to_string()
        } else {
            "MAX_ITER".to_owned()
        },
        fmt_value(qem),
        fmt_value(report.normalized_energy(truth)),
        report.rollbacks.to_string(),
        report.recovery.restores.to_string(),
        report.recovery.escalations.to_string(),
    ]
}

/// Sweep one application over `SEU_RATES`: single-mode baselines on the
/// guards-only watchdog, reconfiguration strategies on the resilient
/// one. `quality_ok` decides whether a QEM value counts as Truth
/// quality.
#[allow(clippy::too_many_arguments)]
fn application_section<M, Q, G>(
    title: &str,
    name: &str,
    method: &M,
    seed: u64,
    qem: Q,
    quality_ok: G,
    opts: &BenchOpts,
    c: &mut Checker,
) where
    M: IterativeMethod + Sync,
    M::State: Sync,
    Q: Fn(&M::State, &M::State) -> f64,
    G: Fn(f64) -> bool,
{
    let mut clean = QcsContext::with_profile(shared_profile().clone());
    let truth = RunConfig::new(method, &mut clean)
        .with_watchdog(WatchdogConfig::default())
        .execute(&mut SingleMode::accurate());
    c.check(
        &format!("{name}: the accurate baseline converges on clean hardware"),
        truth.report.converged,
        &format!("{} iterations", truth.report.iterations),
    );
    let table = characterize(method, shared_profile(), 5);

    let mut rows = Vec::new();
    let mut findings = Vec::new();
    for &rate in &SEU_RATES {
        let mut failed_baselines: Vec<String> = Vec::new();
        for &level in &AccuracyLevel::ALL {
            let mut ctx = faulty_ctx(rate, seed);
            let outcome = RunConfig::new(method, &mut ctx)
                .with_watchdog(WatchdogConfig::default())
                .execute(&mut SingleMode::new(level));
            let q = qem(&outcome.state, &truth.state);
            if !level.is_accurate() && (!outcome.report.converged || !quality_ok(q)) {
                failed_baselines.push(format!(
                    "{} ({})",
                    level_label(level),
                    if outcome.report.converged {
                        "quality loss"
                    } else {
                        "MAX_ITER"
                    }
                ));
            }
            rows.push(report_row(
                rate,
                &level_label(level),
                &outcome.report,
                q,
                &truth.report,
            ));
        }

        let strategies: Vec<Box<dyn ReconfigStrategy>> = vec![
            Box::new(IncrementalStrategy::from_characterization(&table)),
            Box::new(AdaptiveAngleStrategy::from_characterization(&table, 1)),
        ];
        for (index, mut strategy) in strategies.into_iter().enumerate() {
            let mut ctx = faulty_ctx(rate, seed);
            let outcome = RunConfig::new(method, &mut ctx)
                .with_watchdog(WatchdogConfig::resilient())
                .execute(strategy.as_mut());
            let q = qem(&outcome.state, &truth.state);
            let label = outcome.report.strategy.clone();
            rows.push(report_row(rate, &label, &outcome.report, q, &truth.report));
            if rate == 0.0 {
                c.check(
                    &format!("{name}: {label} reaches Truth quality on clean hardware"),
                    outcome.report.converged && quality_ok(q),
                    &format!(
                        "{} iterations, QEM {}",
                        outcome.report.iterations,
                        fmt_value(q)
                    ),
                );
            }
            let is_adaptive = index == 1;
            if is_adaptive
                && rate > 0.0
                && outcome.report.converged
                && quality_ok(q)
                && !failed_baselines.is_empty()
            {
                let recovery = outcome.report.recovery;
                findings.push(format!(
                    "  at SEU rate {rate:.0e}: {} failed, yet {label} converged to Truth \
                     quality in {} iterations (rollbacks {}, restores {}, escalations {})",
                    failed_baselines.join(", "),
                    outcome.report.iterations,
                    outcome.report.rollbacks,
                    recovery.restores,
                    recovery.escalations,
                ));
            }
        }
    }

    opts.say(&format!("{title}\n"));
    opts.say(&render_table(
        &[
            "SEU rate",
            "Configuration",
            "Iterations",
            "QEM",
            "Energy",
            "Rollbacks",
            "Restores",
            "Escalations",
        ],
        &rows,
    ));
    c.check(
        &format!(
            "{name}: graceful degradation — some SEU rate fails approximate baselines \
             while the adaptive strategy holds Truth quality"
        ),
        !findings.is_empty(),
        &format!("{} separating rates", findings.len()),
    );
    if findings.is_empty() {
        opts.say(
            "graceful degradation: no rate separated the adaptive strategy from the baselines\n",
        );
    } else {
        opts.say("graceful degradation:");
        for line in &findings {
            opts.say(line);
        }
        opts.say("");
    }
}

/// Drive the adaptive strategy through multi-bit burst upsets violent
/// enough to trip the hard-failure guards, and show the watchdog's
/// checkpoint restores and escalations pulling the run back to Truth
/// quality.
fn burst_recovery_section<M, Q, G>(
    method: &M,
    name: &str,
    seed: u64,
    qem: Q,
    quality_ok: G,
    opts: &BenchOpts,
    c: &mut Checker,
) where
    M: IterativeMethod + Sync,
    M::State: Sync,
    Q: Fn(&M::State, &M::State) -> f64,
    G: Fn(f64) -> bool,
{
    let mut clean = QcsContext::with_profile(shared_profile().clone());
    let truth = RunConfig::new(method, &mut clean)
        .with_watchdog(WatchdogConfig::default())
        .execute(&mut SingleMode::accurate());
    let table = characterize(method, shared_profile(), 5);

    let (burst_rate, burst_width) = (1e-2, 16);
    let model = FaultModel::Burst {
        rate: burst_rate,
        width: burst_width,
    };
    let inner = QcsContext::with_profile(shared_profile().clone());
    let mut ctx = FaultInjector::with_model(inner, model, seed).sparing_accurate();
    let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
    // Calibrate the overflow guard against the clean run: a healthy
    // objective never exceeds its starting value by orders of magnitude.
    let objective_scale = method.objective(&method.initial_state()).abs();
    let watchdog = WatchdogConfig {
        overflow_threshold: Some(100.0 * (objective_scale + 1.0)),
        divergence_window: Some(3),
        checkpoint_interval: 2,
        escalation_threshold: Some(2),
        ..WatchdogConfig::resilient()
    };
    let outcome = RunConfig::new(method, &mut ctx)
        .with_watchdog(watchdog.clone())
        .execute(&mut strategy);
    let q = qem(&outcome.state, &truth.state);
    opts.say(&format!(
        "{name}: burst faults (rate {burst_rate:.0e}, width {burst_width}), \
         adaptive + resilient watchdog:\n  \
         {} in {} iterations, QEM {} — rollbacks {}, {}",
        if outcome.report.converged {
            "converged"
        } else {
            "hit MAX_ITER"
        },
        outcome.report.iterations,
        fmt_value(q),
        outcome.report.rollbacks,
        outcome.report.recovery,
    ));
    c.check(
        &format!("{name}: adaptive + resilient watchdog rides out burst faults at Truth quality"),
        outcome.report.converged && quality_ok(q),
        &format!(
            "{} iterations, QEM {}",
            outcome.report.iterations,
            fmt_value(q)
        ),
    );

    // A single-mode approximate baseline has no reconfiguration
    // escape: recovery is carried entirely by the watchdog's checkpoint
    // restores and forced escalations.
    let inner = QcsContext::with_profile(shared_profile().clone());
    let mut ctx = FaultInjector::with_model(inner, model, seed).sparing_accurate();
    let outcome = RunConfig::new(method, &mut ctx)
        .with_watchdog(watchdog.clone())
        .execute(&mut SingleMode::new(AccuracyLevel::Level2));
    let q = qem(&outcome.state, &truth.state);
    opts.say(&format!(
        "{name}: same faults, single-mode level2 + resilient watchdog:\n  \
         {} in {} iterations, QEM {} — rollbacks {}, {}\n",
        if outcome.report.converged {
            "converged"
        } else {
            "hit MAX_ITER"
        },
        outcome.report.iterations,
        fmt_value(q),
        outcome.report.rollbacks,
        outcome.report.recovery,
    ));
}

fn main() -> ExitCode {
    let opts = BenchOpts::parse();
    let seed = opts.seed_or(SEED);
    opts.say("ApproxIt resilience campaign");
    opts.say("============================\n");
    let mut c = Checker::new(opts.quiet);

    structural_section(&opts, &mut c);

    let data = gaussian_blobs(
        "gmm-resilience",
        &[120, 120, 120],
        &[vec![0.0, 0.0], vec![8.0, 0.0], vec![4.0, 7.0]],
        &[0.9, 0.9, 0.9],
        17,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-8, 300, 5);
    application_section(
        "GMM quality vs. SEU rate (QEM = Hamming distance to Truth assignments)",
        "gmm",
        &gmm,
        seed,
        |state, truth_state| {
            hamming_distance(&gmm.assignments(state), &gmm.assignments(truth_state), 3) as f64
        },
        |q| q == 0.0,
        &opts,
        &mut c,
    );

    let series = ar_series(
        "ar-resilience",
        1500,
        &[0.35, 0.22, 0.1, 0.05, -0.06],
        1.0,
        23,
    );
    let ar = AutoRegression::from_series(&series, 0.2, 1e-10, 400);
    application_section(
        "AutoRegression quality vs. SEU rate (QEM = coefficient l2 error to Truth)",
        "ar",
        &ar,
        seed,
        |state, truth_state| l2_error(state, truth_state),
        |q| q < 1e-3,
        &opts,
        &mut c,
    );

    opts.say("Watchdog recovery under burst faults\n");
    burst_recovery_section(
        &gmm,
        "GMM",
        seed,
        |state, truth_state| {
            hamming_distance(&gmm.assignments(state), &gmm.assignments(truth_state), 3) as f64
        },
        |q| q == 0.0,
        &opts,
        &mut c,
    );
    burst_recovery_section(
        &ar,
        "AutoRegression",
        seed,
        |state, truth_state| l2_error(state, truth_state),
        |q| q < 1e-3,
        &opts,
        &mut c,
    );
    c.finish("resilience", &opts)
}
