//! Regenerates the paper's Figure 3: GMM clustering results on
//! `3cluster` under each single-mode configuration.
//!
//! Prints an ASCII scatter of the hard assignments per mode (the paper
//! shows five scatter panels) and writes per-mode assignment CSVs to
//! `target/fig3/` for external plotting.

use std::fs;
use std::io::Write as _;

use approx_arith::{AccuracyLevel, QcsContext};
use approxit::{RunConfig, SingleMode};
use approxit_bench::cli::BenchOpts;
use approxit_bench::render::ascii_scatter;
use approxit_bench::{gmm_specs, shared_profile};

fn main() {
    let opts = BenchOpts::parse();
    let spec = &gmm_specs()[0]; // 3cluster
    let gmm = spec.model();
    let mut ctx = QcsContext::with_profile(shared_profile().clone());
    let out_dir = std::path::Path::new("target/fig3");
    fs::create_dir_all(out_dir).expect("create output directory");

    opts.say(&format!(
        "Figure 3: GMM single-mode clustering on {}\n",
        spec.name()
    ));
    // Panels in the paper's order: Truth, level4, level3, level2, level1.
    let panels = [
        AccuracyLevel::Accurate,
        AccuracyLevel::Level4,
        AccuracyLevel::Level3,
        AccuracyLevel::Level2,
        AccuracyLevel::Level1,
    ];
    for level in panels {
        let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::new(level));
        let labels = gmm.assignments(&outcome.state);
        let distinct = {
            let mut seen = [false; 8];
            for &l in &labels {
                seen[l] = true;
            }
            seen.iter().filter(|&&s| s).count()
        };
        opts.say(&format!(
            "--- {} ({} iterations, {} clusters populated) ---",
            if level.is_accurate() {
                "Truth".to_owned()
            } else {
                level.to_string()
            },
            outcome.report.iterations,
            distinct,
        ));
        opts.say(&format!(
            "{}\n",
            ascii_scatter(&spec.dataset.points, &labels, 72, 24)
        ));

        let path = out_dir.join(format!("assignments_{level}.csv"));
        let mut file = fs::File::create(&path).expect("create csv");
        writeln!(file, "x,y,cluster").expect("write header");
        for (p, l) in spec.dataset.points.iter().zip(&labels) {
            writeln!(file, "{},{},{}", p[0], p[1], l).expect("write row");
        }
        opts.say(&format!("(wrote {})\n", path.display()));
    }
}
