//! Regenerates the paper's Table 2: dataset and parameter description.

use approxit_bench::cli::BenchOpts;
use approxit_bench::render::render_table;
use approxit_bench::{ar_specs, gmm_specs};

fn main() {
    let _opts = BenchOpts::parse();
    println!("Table 2: Dataset and Parameter Description\n");
    let mut rows = Vec::new();
    for spec in gmm_specs() {
        rows.push(vec![
            spec.name().to_owned(),
            "Gaussian Mixture Model".to_owned(),
            format!("{}*{}", spec.dataset.len(), spec.dataset.dim()),
            "synthetic (seeded)".to_owned(),
            spec.max_iterations.to_string(),
            format!("{:.0e}", spec.convergence),
            "Mean Value".to_owned(),
        ]);
    }
    for spec in ar_specs() {
        rows.push(vec![
            spec.name().to_owned(),
            "AutoRegression".to_owned(),
            format!("{}*{}", spec.series.num_samples(), spec.series.order),
            "synthetic (seeded)".to_owned(),
            spec.max_iterations.to_string(),
            format!("{:.0e}", spec.convergence),
            "Gradient Accumulation".to_owned(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset",
                "Application",
                "Samples",
                "Source",
                "MAX_ITER",
                "Convergence",
                "Adder Impact",
            ],
            &rows,
        )
    );
}
