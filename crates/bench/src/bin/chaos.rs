//! Chaos-injection harness for the resilient solver service.
//!
//! Drives one [`SolverService`] campaign through the failure modes a
//! deployed solver fleet actually sees — composed, not in isolation:
//!
//! * a **fault storm**: SEU injection at high rate confined to the two
//!   cheapest accuracy levels, tripping their circuit breakers and
//!   forcing retry-with-escalation;
//! * a **clean wave** after the storm clears, whose traffic probes and
//!   heals the quarantined levels;
//! * a **burst arrival** beyond queue capacity (load shedding), spiked
//!   with an ill-conditioned system under a hopeless deadline and a
//!   NaN-seeded right-hand side, under background burst faults.
//!
//! Every check is a **hard invariant** — violations exit non-zero:
//!
//! 1. *No request lost*: every submission (including shed ones) ends in
//!    exactly one of completed / degraded / shed / failed, with
//!    telemetry.
//! 2. *Determinism*: the whole campaign replayed under a fixed seed is
//!    bit-identical — outcomes, telemetry, final states — across
//!    executor thread counts.
//! 3. *Quality floor*: every completed or degraded request with a
//!    quality floor meets it.
//! 4. *Breaker lifecycle*: the storm trips breakers, the clean wave
//!    probes and heals them.
//! 5. *Shedding*: exactly the over-capacity tail of the burst is shed,
//!    with telemetry but no execution.
//! 6. *Poison containment*: the NaN request fails with full telemetry
//!    instead of poisoning the drain; the deadline-starved
//!    ill-conditioned request exhausts its attempts and fails.
//!
//! Modes: default, `--smoke` (CI: smaller fleet, fewer thread counts).
//! `--json PATH` writes the machine-readable summary (`BENCH_chaos.json`
//! in CI).

use std::process::ExitCode;

use approx_arith::{AccuracyLevel, ArithContext, FaultInjector, FaultModel, QcsContext};
use approxit::service::{
    AttemptSpec, BreakerConfig, Request, ServiceConfig, ServiceReport, SolverService,
};
use approxit::Outcome;
use approxit_bench::cli::{BenchOpts, Checker};
use approxit_bench::specs::shared_profile;
use iter_solvers::rng::Pcg32;
use iter_solvers::{CgState, ConjugateGradient};
use parx::Executor;

use approx_linalg::Matrix;

/// Default campaign seed (`--seed` overrides).
const SEED: u64 = 0xC4A0;
/// Low result bits exposed to upsets during the storm.
const FAULT_BITS: u32 = 16;

/// A well-conditioned SPD system `A = M·Mᵀ/n + I`.
fn spd_system(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = Pcg32::seeded(seed, 0);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = rng.uniform(-1.0, 1.0);
        }
    }
    let mut a = m.matmul_exact(&m.transpose());
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] /= n as f64;
        }
        a[(i, i)] += 1.0;
    }
    let b: Vec<f64> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
    (a, b)
}

/// A healthy request: moderate order, loose-enough tolerance for the
/// approximate levels, a zero quality floor (the quadratic objective is
/// strictly negative at any useful iterate).
fn healthy(n: usize, seed: u64) -> Request<ConjugateGradient> {
    let (a, b) = spd_system(n, seed);
    Request::new(ConjugateGradient::new(a, b, 1e-4, 200)).with_quality_floor(0.0)
}

/// An ill-conditioned SPD system: the same construction with the
/// identity shift collapsed to `1e-6`, pushing the condition number far
/// beyond what any 8-iteration deadline can absorb.
fn ill_conditioned(n: usize, seed: u64) -> ConjugateGradient {
    let mut rng = Pcg32::seeded(seed, 1);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = rng.uniform(-1.0, 1.0);
        }
    }
    let mut a = m.matmul_exact(&m.transpose());
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] /= n as f64;
        }
        a[(i, i)] += 1e-6;
    }
    let b: Vec<f64> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
    ConjugateGradient::new(a, b, 1e-10, 200)
}

/// A NaN-seeded right-hand side: the iterate is poisoned from step one
/// and can never converge at any level.
fn nan_seeded(n: usize, seed: u64) -> ConjugateGradient {
    let (a, mut b) = spd_system(n, seed);
    b[0] = f64::NAN;
    ConjugateGradient::new(a, b, 1e-6, 50)
}

fn clean_ctx(spec: &AttemptSpec) -> QcsContext {
    let mut ctx = QcsContext::with_profile(shared_profile().clone());
    ctx.set_level(spec.level);
    ctx
}

/// Everything one campaign replay produces, for bit-exact comparison
/// across thread counts.
#[derive(Debug)]
struct Campaign {
    storm: ServiceReport<CgState>,
    clean: ServiceReport<CgState>,
    burst: ServiceReport<CgState>,
    storm_ids: Vec<u64>,
    clean_ids: Vec<u64>,
    burst_ids: Vec<u64>,
    illcond_id: u64,
    nan_id: u64,
    shed_count: usize,
    max_attempts: usize,
}

struct Scale {
    storm: usize,
    clean: usize,
    capacity: usize,
    overflow: usize,
}

fn run_campaign(threads: usize, scale: &Scale, seed: u64) -> Campaign {
    let exec = Executor::with_threads(threads);
    let config = ServiceConfig {
        queue_capacity: scale.capacity,
        max_attempts: 4,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_rounds: 1,
        },
        base_seed: seed,
        ..ServiceConfig::default()
    };
    let max_attempts = config.max_attempts;
    let mut service = SolverService::new(config);

    // Phase 1 — fault storm: heavy SEUs confined to the two cheapest
    // levels; every request starts on the cheapest.
    let storm_ids: Vec<u64> = (0..scale.storm)
        .map(|i| {
            service
                .submit(healthy(8 + i % 3, seed ^ (0x100 + i as u64)))
                .id()
        })
        .collect();
    let storm = service.run(&exec, |spec| {
        let ctx = clean_ctx(spec);
        FaultInjector::new(ctx, 0.9, FAULT_BITS, spec.seed)
            .striking_only(&[AccuracyLevel::Level1, AccuracyLevel::Level2])
    });

    // Phase 2 — clean wave: the storm has passed; fresh traffic probes
    // the quarantined levels and heals them.
    let clean_ids: Vec<u64> = (0..scale.clean)
        .map(|i| {
            service
                .submit(healthy(8 + i % 3, seed ^ (0x200 + i as u64)))
                .id()
        })
        .collect();
    let clean = service.run(&exec, clean_ctx);

    // Phase 3 — burst arrival over capacity, spiked with poisoned
    // inputs, under background burst faults.
    let mut burst_ids = Vec::new();
    let illcond_id = service
        .submit(
            Request::new(ill_conditioned(12, seed ^ 0x300))
                .at_level(AccuracyLevel::Level2)
                .with_deadline(8),
        )
        .id();
    burst_ids.push(illcond_id);
    let nan_id = service
        .submit(Request::new(nan_seeded(8, seed ^ 0x400)).at_level(AccuracyLevel::Level3))
        .id();
    burst_ids.push(nan_id);
    let mut shed_count = 0;
    for i in 0..scale.capacity - 2 + scale.overflow {
        let submission = service.submit(healthy(8 + i % 3, seed ^ (0x500 + i as u64)));
        if !submission.accepted() {
            shed_count += 1;
        }
        burst_ids.push(submission.id());
    }
    let burst = service.run(&exec, |spec| {
        let ctx = clean_ctx(spec);
        let model = FaultModel::Burst {
            rate: 2e-3,
            width: 8,
        };
        FaultInjector::with_model(ctx, model, spec.seed).sparing_accurate()
    });

    Campaign {
        storm,
        clean,
        burst,
        storm_ids,
        clean_ids,
        burst_ids,
        illcond_id,
        nan_id,
        shed_count,
        max_attempts,
    }
}

fn total_attempts(report: &ServiceReport<CgState>) -> usize {
    report.requests.iter().map(|r| r.telemetry.attempts).sum()
}

/// A bit-exact fingerprint of a campaign: the full telemetry JSON of
/// every drain plus every final state's raw f64 bits. Plain `==` on the
/// reports would be wrong here — the NaN-seeded request makes two
/// bit-identical campaigns compare unequal (`NaN != NaN`), so equality
/// must go through `to_bits`.
fn fingerprint(campaign: &Campaign) -> (String, Vec<Option<Vec<u64>>>) {
    let json = format!(
        "{}\n{}\n{}",
        campaign.storm.to_json(),
        campaign.clean.to_json(),
        campaign.burst.to_json()
    );
    let states = [&campaign.storm, &campaign.clean, &campaign.burst]
        .iter()
        .flat_map(|report| {
            report.requests.iter().map(|r| {
                r.state.as_ref().map(|s| {
                    s.x.iter()
                        .chain(&s.r)
                        .chain(&s.p)
                        .map(|v| v.to_bits())
                        .collect()
                })
            })
        })
        .collect();
    (json, states)
}

fn main() -> ExitCode {
    let opts = BenchOpts::parse();
    let smoke = opts.has_flag("--smoke");
    let seed = opts.seed_or(SEED);
    let scale = if smoke {
        Scale {
            storm: 3,
            clean: 3,
            capacity: 5,
            overflow: 3,
        }
    } else {
        Scale {
            storm: 6,
            clean: 6,
            capacity: 10,
            overflow: 5,
        }
    };
    let thread_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    opts.say(&format!(
        "chaos: service campaign (storm {}, clean {}, burst {}+{} over capacity), \
         threads {thread_counts:?}, seed {seed:#x}",
        scale.storm, scale.clean, scale.capacity, scale.overflow
    ));
    let mut c = Checker::new(opts.quiet);

    // Invariant 2 (determinism) drives the structure: replay the whole
    // campaign per thread count and demand bit-identical results.
    let reference = run_campaign(thread_counts[0], &scale, seed);
    let reference_print = fingerprint(&reference);
    for &threads in &thread_counts[1..] {
        let replay = run_campaign(threads, &scale, seed);
        c.check(
            &format!("determinism: campaign at {threads} threads matches the serial reference"),
            fingerprint(&replay) == reference_print,
            "outcomes, telemetry, and final states compared for bit equality",
        );
    }

    // Invariant 1 — no request lost, phase by phase and overall.
    c.check(
        "no request lost: storm drain accounts for every submission",
        reference.storm.accounts_for(&reference.storm_ids),
        &format!("{} requests", reference.storm_ids.len()),
    );
    c.check(
        "no request lost: clean drain accounts for every submission",
        reference.clean.accounts_for(&reference.clean_ids),
        &format!("{} requests", reference.clean_ids.len()),
    );
    c.check(
        "no request lost: burst drain accounts for every submission",
        reference.burst.accounts_for(&reference.burst_ids),
        &format!("{} requests", reference.burst_ids.len()),
    );
    let submitted =
        reference.storm_ids.len() + reference.clean_ids.len() + reference.burst_ids.len();
    let reported = reference.storm.requests.len()
        + reference.clean.requests.len()
        + reference.burst.requests.len();
    c.check(
        "no request lost: every id 0..N appears exactly once across all drains",
        reported == submitted
            && reference
                .storm_ids
                .iter()
                .chain(&reference.clean_ids)
                .chain(&reference.burst_ids)
                .copied()
                .eq(0..submitted as u64),
        &format!("{submitted} submissions"),
    );
    for (name, report) in [
        ("storm", &reference.storm),
        ("clean", &reference.clean),
        ("burst", &reference.burst),
    ] {
        let counts = report.counts();
        c.check(
            &format!("outcome histogram of the {name} drain sums to its request count"),
            counts.total() == report.requests.len(),
            &format!(
                "{} completed, {} degraded, {} shed, {} failed",
                counts.completed, counts.degraded, counts.shed, counts.failed
            ),
        );
    }

    // Invariant 3 — quality floors hold for every successful request
    // that declared one (healthy requests pin floor 0.0; CG's quadratic
    // objective is strictly negative at any useful iterate).
    let mut floor_ok = true;
    let mut floor_checked = 0;
    for report in [&reference.storm, &reference.clean, &reference.burst] {
        for r in &report.requests {
            if r.telemetry.outcome.is_success()
                && r.telemetry.id != reference.illcond_id
                && r.telemetry.id != reference.nan_id
            {
                let rep = r.telemetry.report.as_ref().expect("successful → executed");
                floor_checked += 1;
                floor_ok &=
                    rep.converged && rep.final_objective.is_finite() && rep.final_objective <= 0.0;
            }
        }
    }
    c.check(
        "quality floor: every successful floored request converged below its floor",
        floor_ok && floor_checked > 0,
        &format!("{floor_checked} successful requests checked against floor 0.0"),
    );

    // Invariant 4 — breaker lifecycle (telemetry is cumulative, so the
    // clean wave's contribution is the delta over the storm).
    c.check(
        "breaker: the fault storm tripped at least one level",
        reference.storm.breaker.trips >= 1,
        &format!("{}", reference.storm.breaker),
    );
    c.check(
        "breaker: the storm survived via escalated retries",
        reference.storm.counts().all_succeeded()
            && total_attempts(&reference.storm) > reference.storm_ids.len(),
        &format!(
            "{} attempts for {} requests, {} rounds",
            total_attempts(&reference.storm),
            reference.storm_ids.len(),
            reference.storm.rounds
        ),
    );
    c.check(
        "breaker: the clean wave probed the quarantined level",
        reference.clean.breaker.probes > reference.storm.breaker.probes,
        &format!("{}", reference.clean.breaker),
    );
    c.check(
        "breaker: a clean probe healed the level",
        reference.clean.breaker.heals > reference.storm.breaker.heals,
        &format!("{}", reference.clean.breaker),
    );
    c.check(
        "breaker: waiting traffic was rerouted around the quarantine",
        reference.clean.breaker.reroutes > reference.storm.breaker.reroutes,
        &format!("{}", reference.clean.breaker),
    );

    // Invariant 5 — load shedding: exactly the over-capacity tail.
    let burst_counts = reference.burst.counts();
    c.check(
        "shedding: exactly the over-capacity tail of the burst was shed",
        reference.shed_count == scale.overflow && burst_counts.shed == scale.overflow,
        &format!(
            "{} shed of {} submitted (capacity {})",
            burst_counts.shed,
            reference.burst_ids.len(),
            scale.capacity
        ),
    );
    let shed_sound = reference
        .burst
        .requests
        .iter()
        .filter(|r| r.telemetry.outcome == Outcome::Shed)
        .all(|r| r.telemetry.attempts == 0 && r.telemetry.report.is_none() && r.state.is_none());
    c.check(
        "shedding: shed requests carry telemetry but were never executed",
        shed_sound,
        "attempts 0, no report, no state",
    );

    // Invariant 6 — poison containment.
    let nan = reference
        .burst
        .requests
        .iter()
        .find(|r| r.telemetry.id == reference.nan_id)
        .expect("nan request reported");
    c.check(
        "poison: the NaN-seeded request failed with full telemetry",
        nan.telemetry.outcome == Outcome::Failed
            && nan.telemetry.attempts == reference.max_attempts
            && nan.telemetry.report.is_some(),
        &format!(
            "outcome {}, {} attempts, guard trips {}",
            nan.telemetry.outcome,
            nan.telemetry.attempts,
            nan.telemetry
                .report
                .as_ref()
                .map_or(0, |rep| rep.recovery.guard_trips)
        ),
    );
    let illcond = reference
        .burst
        .requests
        .iter()
        .find(|r| r.telemetry.id == reference.illcond_id)
        .expect("ill-conditioned request reported");
    c.check(
        "deadline: the ill-conditioned request exhausted its attempts under deadline pressure",
        illcond.telemetry.outcome == Outcome::Failed
            && illcond.telemetry.attempts == reference.max_attempts,
        &format!(
            "outcome {} after {} attempts at deadline 8",
            illcond.telemetry.outcome, illcond.telemetry.attempts
        ),
    );
    let poison_contained = reference
        .burst
        .requests
        .iter()
        .filter(|r| {
            r.telemetry.id != reference.nan_id
                && r.telemetry.id != reference.illcond_id
                && r.telemetry.outcome != Outcome::Shed
        })
        .all(|r| r.telemetry.outcome.is_success());
    c.check(
        "poison: the poisoned requests did not take healthy neighbors down",
        poison_contained,
        "every executed healthy burst request succeeded",
    );

    let energy: f64 = reference.storm.total_energy()
        + reference.clean.total_energy()
        + reference.burst.total_energy();
    c.check(
        "telemetry: metered campaign energy is finite and positive",
        energy.is_finite() && energy > 0.0,
        &format!("{energy:.3e} units"),
    );

    c.note(&format!(
        "campaign: {} submissions, {} attempts, breaker {} — energy {energy:.3e}",
        submitted,
        total_attempts(&reference.storm)
            + total_attempts(&reference.clean)
            + total_attempts(&reference.burst),
        reference.burst.breaker,
    ));
    c.finish("chaos", &opts)
}
