//! Regenerates the paper's Table 4: results on AutoRegression.
//!
//! Part (a) runs every single-mode configuration on each series; part
//! (b) runs the incremental and adaptive (f = 1) online reconfiguration
//! strategies. Pass `--part a` or `--part b` to run one part only.

use approxit_bench::cli::BenchOpts;
use approxit_bench::render::{fmt_value, render_table};
use approxit_bench::{ar_reconfig_rows, ar_single_mode_rows, ar_specs};

fn main() {
    let opts = BenchOpts::parse();
    let part = opts.flag_value("--part").unwrap_or("ab");

    if part.contains('a') {
        println!("Table 4(a): AutoRegression single-mode results\n");
        for spec in ar_specs() {
            println!("dataset: {}", spec.name());
            let rows: Vec<Vec<String>> = ar_single_mode_rows(&spec)
                .into_iter()
                .map(|r| {
                    vec![
                        r.configuration,
                        if r.converged {
                            r.iterations.to_string()
                        } else {
                            "MAX_ITER".to_owned()
                        },
                        fmt_value(r.qem),
                        fmt_value(r.energy),
                    ]
                })
                .collect();
            println!(
                "{}",
                render_table(&["Configuration", "Iteration", "QEM", "Energy"], &rows)
            );
        }
    }

    if part.contains('b') {
        println!("Table 4(b): AutoRegression online reconfiguration results (f = 1)\n");
        let mut rows = Vec::new();
        for spec in ar_specs() {
            for r in ar_reconfig_rows(&spec, 1) {
                rows.push(vec![
                    r.dataset,
                    r.strategy,
                    r.steps[0].to_string(),
                    r.steps[1].to_string(),
                    r.steps[2].to_string(),
                    r.steps[3].to_string(),
                    r.steps[4].to_string(),
                    r.total.to_string(),
                    fmt_value(r.error),
                    fmt_value(r.energy),
                    r.rollbacks.to_string(),
                ]);
            }
        }
        println!(
            "{}",
            render_table(
                &[
                    "Dataset",
                    "Strategy",
                    "level1",
                    "level2",
                    "level3",
                    "level4",
                    "acc",
                    "Total",
                    "Error",
                    "Energy",
                    "Rollbacks",
                ],
                &rows,
            )
        );
    }
}
