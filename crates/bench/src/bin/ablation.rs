//! Extension experiments beyond the paper's exhibits (ablations called
//! out in DESIGN.md §5):
//!
//! * scheme ablation — incremental with each scheme disabled;
//! * quality-scheme variant — step-distance vs objective-decrease;
//! * f-step sweep — adaptive with update periods 1, 2, 5, 10;
//! * PID baseline — the controller of Chippa et al. head-to-head;
//! * fixed-point width sweep — Q15.16 vs Q31.32 datapaths;
//! * k-means with the MCD sensor — the paper's §2.3 motivating example.

use approx_arith::{EnergyProfile, QFormat, QcsAdder, QcsContext};
use approxit::{
    characterize, AdaptiveAngleStrategy, IncrementalConfig, IncrementalStrategy, PidStrategy,
    QualitySchemeVariant, ReconfigStrategy, RunConfig, SingleMode,
};
use approxit_bench::cli::BenchOpts;
use approxit_bench::render::{fmt_value, render_table};
use approxit_bench::{gmm_specs, shared_profile};
use iter_solvers::metrics::hamming_distance;

fn main() {
    let _opts = BenchOpts::parse();
    let spec = &gmm_specs()[0]; // 3cluster
    let gmm = spec.model();
    let k = spec.dataset.k;
    let table = characterize(&gmm, shared_profile(), 5);
    let mut ctx = QcsContext::with_profile(shared_profile().clone());
    let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
    let truth_labels = gmm.assignments(&truth.state);

    let mut score = |name: String, strategy: &mut dyn ReconfigStrategy| -> Vec<String> {
        let outcome = RunConfig::new(&gmm, &mut ctx).execute(strategy);
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, k);
        vec![
            name,
            outcome.report.iterations.to_string(),
            if outcome.report.converged {
                "yes"
            } else {
                "NO"
            }
            .to_owned(),
            qem.to_string(),
            fmt_value(outcome.report.normalized_energy(&truth.report)),
            outcome.report.rollbacks.to_string(),
        ]
    };

    println!("Ablation 1: incremental schemes on {}\n", spec.name());
    let mut rows = Vec::new();
    let configs = [
        ("all schemes (paper)", IncrementalConfig::default()),
        (
            "no gradient scheme",
            IncrementalConfig {
                gradient_scheme: false,
                ..IncrementalConfig::default()
            },
        ),
        (
            "no quality scheme",
            IncrementalConfig {
                quality_scheme: false,
                ..IncrementalConfig::default()
            },
        ),
        (
            "no function scheme",
            IncrementalConfig {
                function_scheme: false,
                ..IncrementalConfig::default()
            },
        ),
        (
            "objective-decrease variant",
            IncrementalConfig {
                quality_variant: QualitySchemeVariant::ObjectiveDecrease,
                ..IncrementalConfig::default()
            },
        ),
    ];
    for (name, config) in configs {
        let mut strategy = IncrementalStrategy::with_config(table.update_errors, config);
        rows.push(score(name.to_owned(), &mut strategy));
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Iterations",
                "Converged",
                "QEM",
                "Energy",
                "Rollbacks"
            ],
            &rows,
        )
    );

    println!("Ablation 2: adaptive f-step sweep on {}\n", spec.name());
    let mut rows = Vec::new();
    for f in [1usize, 2, 5, 10] {
        let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, f);
        rows.push(score(format!("f = {f}"), &mut strategy));
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Iterations",
                "Converged",
                "QEM",
                "Energy",
                "Rollbacks"
            ],
            &rows,
        )
    );

    println!(
        "Ablation 3: PID baseline (Chippa et al.) on {}\n",
        spec.name()
    );
    let rows = vec![
        score("pid-baseline".to_owned(), &mut PidStrategy::default()),
        score(
            "approxit incremental".to_owned(),
            &mut IncrementalStrategy::from_characterization(&table),
        ),
        score(
            "approxit adaptive".to_owned(),
            &mut AdaptiveAngleStrategy::from_characterization(&table, 1),
        ),
    ];
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Iterations",
                "Converged",
                "QEM",
                "Energy",
                "Rollbacks"
            ],
            &rows,
        )
    );

    println!("Ablation 4: datapath width sweep on {}\n", spec.name());
    let mut rows = Vec::new();
    let widths = [
        (
            "Q15.16 / 32-bit (default)",
            QcsAdder::paper_default(),
            QFormat::Q15_16,
        ),
        (
            "Q31.32 / 64-bit",
            QcsAdder::new(64, [36, 31, 26, 21]),
            QFormat::Q31_32,
        ),
    ];
    for (name, adder, format) in widths {
        let profile = EnergyProfile::characterize(&adder, 256, 0x5EED, &gatesim_default());
        let mut wide_ctx = QcsContext::new(adder, format, profile);
        let truth_w = RunConfig::new(&gmm, &mut wide_ctx).execute(&mut SingleMode::accurate());
        let table_w = approxit::characterize_on(&gmm, &wide_ctx, 5);
        let mut strategy = IncrementalStrategy::from_characterization(&table_w);
        let outcome = RunConfig::new(&gmm, &mut wide_ctx).execute(&mut strategy);
        let qem = hamming_distance(
            &gmm.assignments(&outcome.state),
            &gmm.assignments(&truth_w.state),
            k,
        );
        rows.push(vec![
            name.to_owned(),
            outcome.report.iterations.to_string(),
            if outcome.report.converged {
                "yes"
            } else {
                "NO"
            }
            .to_owned(),
            qem.to_string(),
            fmt_value(outcome.report.normalized_energy(&truth_w.report)),
            outcome.report.rollbacks.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Iterations",
                "Converged",
                "QEM",
                "Energy",
                "Rollbacks"
            ],
            &rows,
        )
    );

    kmeans_mcd_ablation();
}

/// The paper's §2.3 motivating example: approximate k-means with the
/// mean-centroid-distance sensor driving a PID controller, against
/// ApproxIt's incremental strategy on the same workload. K-means
/// provides no analytic gradient, so ApproxIt's direction-criterion veto
/// is unavailable — the function scheme alone carries the recovery.
fn kmeans_mcd_ablation() {
    use iter_solvers::KMeans;

    let spec = &gmm_specs()[0];
    let km = KMeans::from_dataset(&spec.dataset, 1e-6, 500, 7);
    let mut ctx = QcsContext::with_profile(shared_profile().clone());
    let truth = RunConfig::new(&km, &mut ctx).execute(&mut SingleMode::accurate());
    let truth_labels = km.assignments(&truth.state);
    let table = approxit::characterize(&km, shared_profile(), 5);

    println!(
        "Ablation 5: k-means + MCD sensor on {} (truth MCD {:.4})\n",
        spec.dataset.name,
        km.mean_centroid_distance(&truth.state),
    );
    let mut rows = Vec::new();
    let mut score = |name: &str, strategy: &mut dyn ReconfigStrategy| {
        let outcome = RunConfig::new(&km, &mut ctx).execute(strategy);
        let qem = hamming_distance(
            &km.assignments(&outcome.state),
            &truth_labels,
            spec.dataset.k,
        );
        rows.push(vec![
            name.to_owned(),
            outcome.report.iterations.to_string(),
            if outcome.report.converged {
                "yes"
            } else {
                "NO"
            }
            .to_owned(),
            qem.to_string(),
            format!("{:.4}", km.mean_centroid_distance(&outcome.state)),
            fmt_value(outcome.report.normalized_energy(&truth.report)),
        ]);
    };
    score("pid + mcd sensor", &mut PidStrategy::default());
    score(
        "approxit incremental",
        &mut IncrementalStrategy::from_characterization(&table),
    );
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Iterations",
                "Converged",
                "QEM",
                "MCD",
                "Energy"
            ],
            &rows,
        )
    );
}

fn gatesim_default() -> gatesim::EnergyModel {
    gatesim::EnergyModel::default()
}
