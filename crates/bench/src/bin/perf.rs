//! Packed-vs-scalar performance harness: proves the bit-parallel
//! simulation backend agrees with the scalar reference, then measures
//! the speedup it buys on exhaustive adder error sweeps.
//!
//! Quick mode (the default) runs the full scalar/packed/packed+threads
//! comparison at 12 bits and the packed+threads sweep at 16 bits
//! (2³² patterns), extrapolating the 16-bit scalar cost from the
//! measured 12-bit per-pattern rate. Pass `--full` to measure the
//! 16-bit scalar sweep directly (minutes), or `--smoke` (the CI mode)
//! to skip the 16-bit sweeps and judge the speedup at 12 bits only.
//!
//! Correctness checks are hard failures (non-zero exit). The wall-clock
//! budget is a soft threshold: exceeding it only logs a warning, so a
//! loaded CI machine cannot flake the job.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use approxit_bench::cli::{BenchOpts, Checker};
use gatesim::builders::{self, declare_ab, full_adder, half_adder};
use gatesim::equiv::{error_bound, exhaustive_error_bound_with, ErrorBound};
use gatesim::packed::{exhaustive_input_words, PackedSimulator, LANES};
use gatesim::{EnergyModel, Netlist, Simulator};
use parx::Executor;

/// Soft wall-clock budget for the quick run (log-only).
const QUICK_BUDGET: Duration = Duration::from_secs(120);

/// A `width`-bit truncated adder: the low `approx_bits` sum bits are
/// carry-free XORs and the exact carry chain starts above them — the
/// classic lower-bits approximation the QCS adder family is built from.
/// Input declaration order matches [`builders::modular_adder`] so the
/// two netlists see every exhaustive pattern identically.
fn truncated_adder(width: usize, approx_bits: usize) -> Netlist {
    assert!(approx_bits < width, "at least one exact bit");
    let mut nl = Netlist::new();
    let (a, b) = declare_ab(&mut nl, width);
    for i in 0..approx_bits {
        let sum = nl.xor2(a[i], b[i]);
        nl.mark_output(sum, format!("sum{i}"));
    }
    let (sum, mut carry) = half_adder(&mut nl, a[approx_bits], b[approx_bits]);
    nl.mark_output(sum, format!("sum{approx_bits}"));
    for i in approx_bits + 1..width {
        let (s, c) = full_adder(&mut nl, a[i], b[i], carry);
        nl.mark_output(s, format!("sum{i}"));
        carry = c;
    }
    nl
}

/// The benchmark pair at one width: truncated approximation vs the
/// exact modular adder.
fn sweep_pair(width: usize) -> (Netlist, Netlist) {
    (
        truncated_adder(width, width / 3),
        builders::modular_adder(width).0,
    )
}

/// The pre-packed reference: one scalar [`Simulator`] evaluation per
/// input vector, accumulating the same statistics as
/// [`exhaustive_error_bound_with`].
fn scalar_error_bound(approx: &Netlist, exact: &Netlist) -> ErrorBound {
    let n = approx.num_inputs();
    let out_bits = approx.num_outputs();
    let modulus = 1u64 << out_bits;
    let ring_mask = modulus - 1;
    let total = 1u64 << n;
    let mut sim_approx = Simulator::new(approx);
    let mut sim_exact = Simulator::new(exact);
    let mut mismatches = 0u64;
    let mut max_abs = 0u64;
    let mut max_ring = 0u64;
    let mut witness = 0u64;
    let mut inputs = vec![false; n];
    for pattern in 0..total {
        for (i, bit) in inputs.iter_mut().enumerate() {
            *bit = (pattern >> i) & 1 == 1;
        }
        let out_approx = sim_approx.evaluate(&inputs).expect("interface matches");
        let approx_word = word_of(&out_approx);
        let out_exact = sim_exact.evaluate(&inputs).expect("interface matches");
        let exact_word = word_of(&out_exact);
        if approx_word != exact_word {
            mismatches += 1;
            let abs = approx_word.abs_diff(exact_word);
            if abs > max_abs {
                max_abs = abs;
                witness = pattern;
            }
            let wrapped = approx_word.wrapping_sub(exact_word) & ring_mask;
            max_ring = max_ring.max(wrapped.min(modulus - wrapped));
        }
    }
    ErrorBound {
        error_rate: mismatches as f64 / total as f64,
        max_abs_error: max_abs,
        max_ring_error: max_ring,
        worst_case_inputs: (0..n).map(|i| (witness >> i) & 1 == 1).collect(),
    }
}

fn word_of(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |w, (i, &b)| w | (u64::from(b) << i))
}

fn bounds_match(left: &ErrorBound, right: &ErrorBound) -> bool {
    left.error_rate.to_bits() == right.error_rate.to_bits()
        && left.max_abs_error == right.max_abs_error
        && left.max_ring_error == right.max_ring_error
        && left.worst_case_inputs == right.worst_case_inputs
}

/// Packed-vs-scalar agreement at a width small enough to cross-check
/// everything exhaustively, including the independent symbolic engine.
fn correctness_stage(c: &mut Checker, threads: usize) {
    let width = 8;
    let (approx, exact) = sweep_pair(width);
    let scalar = scalar_error_bound(&approx, &exact);
    let serial = exhaustive_error_bound_with(&approx, &exact, &Executor::with_threads(1))
        .expect("within ceiling");
    let parallel = exhaustive_error_bound_with(&approx, &exact, &Executor::with_threads(threads))
        .expect("within ceiling");
    c.check(
        "packed sweep matches the scalar reference (width 8, exhaustive)",
        bounds_match(&scalar, &serial),
        &format!(
            "rate {:.6}, max |err| {}",
            serial.error_rate, serial.max_abs_error
        ),
    );
    c.check(
        &format!("packed sweep is thread-count invariant (1 vs {threads} threads)"),
        bounds_match(&serial, &parallel),
        "",
    );
    let symbolic = error_bound(&approx, &exact).expect("within BDD ceiling");
    c.check(
        "packed sweep matches the symbolic BDD engine",
        symbolic.error_rate.to_bits() == serial.error_rate.to_bits()
            && symbolic.max_abs_error == serial.max_abs_error
            && symbolic.max_ring_error == serial.max_ring_error,
        &format!("both report max |err| {}", symbolic.max_abs_error),
    );

    // Toggle identity: the packed simulator charges exactly the toggles
    // the scalar one does, so energy numbers are bit-identical.
    let mut scalar_sim = Simulator::new(&exact);
    let mut inputs = vec![false; exact.num_inputs()];
    for pattern in 0..(1u64 << exact.num_inputs()) {
        for (i, bit) in inputs.iter_mut().enumerate() {
            *bit = (pattern >> i) & 1 == 1;
        }
        scalar_sim.evaluate(&inputs).expect("interface matches");
    }
    let mut packed_sim = PackedSimulator::new(&exact);
    let mut base = 0u64;
    let total = 1u64 << exact.num_inputs();
    while base < total {
        let lanes = usize::try_from(total - base).map_or(LANES, |r| r.min(LANES));
        packed_sim
            .evaluate_packed(&exhaustive_input_words(exact.num_inputs(), base), lanes)
            .expect("interface matches");
        base += lanes as u64;
    }
    let model = EnergyModel::default();
    c.check(
        "packed toggles and energy are bit-identical to scalar (width 8)",
        packed_sim.toggles() == scalar_sim.toggles()
            && packed_sim.energy(&model).to_bits() == scalar_sim.energy(&model).to_bits(),
        &format!("{} toggles", packed_sim.total_toggles()),
    );
}

struct TimedSweep {
    label: String,
    patterns: u64,
    elapsed: Duration,
    measured: bool,
}

impl TimedSweep {
    fn throughput(&self) -> f64 {
        self.patterns as f64 / self.elapsed.as_secs_f64()
    }

    fn row(&self) -> String {
        format!(
            "  {:<44} {:>10} {:>12} {:>14}",
            self.label,
            fmt_count(self.patterns),
            if self.measured {
                format!("{:.3}s", self.elapsed.as_secs_f64())
            } else {
                format!("~{:.1}s*", self.elapsed.as_secs_f64())
            },
            format!("{}/s", fmt_count(self.throughput() as u64)),
        )
    }
}

fn fmt_count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn time_sweep<F: FnMut() -> ErrorBound>(
    label: &str,
    patterns: u64,
    mut run: F,
) -> (TimedSweep, ErrorBound) {
    let start = Instant::now();
    let bound = run();
    (
        TimedSweep {
            label: label.to_owned(),
            patterns,
            elapsed: start.elapsed(),
            measured: true,
        },
        bound,
    )
}

fn main() -> ExitCode {
    let opts = BenchOpts::parse();
    let full = opts.has_flag("--full");
    let smoke = opts.has_flag("--smoke") && !full;
    let threads = Executor::new().threads();
    opts.say(&format!(
        "perf: packed-vs-scalar cross-check and speedup measurement ({threads} threads)"
    ));
    let started = Instant::now();
    let mut c = Checker::new(opts.quiet);

    correctness_stage(&mut c, threads.max(2));

    // --- Timed sweeps ----------------------------------------------------
    let mut rows: Vec<TimedSweep> = Vec::new();

    let width = 12usize;
    let (approx, exact) = sweep_pair(width);
    let patterns_12 = 1u64 << (2 * width);
    let (scalar_12, scalar_bound) = time_sweep(
        &format!("scalar   {width}-bit exhaustive error_bound"),
        patterns_12,
        || scalar_error_bound(&approx, &exact),
    );
    let (packed_12, packed_bound) = time_sweep(
        &format!("packed×1 {width}-bit exhaustive error_bound"),
        patterns_12,
        || {
            exhaustive_error_bound_with(&approx, &exact, &Executor::with_threads(1))
                .expect("in range")
        },
    );
    let (threaded_12, threaded_bound) = time_sweep(
        &format!("packed×{threads} {width}-bit exhaustive error_bound"),
        patterns_12,
        || exhaustive_error_bound_with(&approx, &exact, &Executor::new()).expect("in range"),
    );
    c.check(
        &format!("scalar, packed and packed×{threads} agree at {width} bits"),
        bounds_match(&scalar_bound, &packed_bound) && bounds_match(&scalar_bound, &threaded_bound),
        &format!(
            "rate {:.6}, max |err| {}",
            scalar_bound.error_rate, scalar_bound.max_abs_error
        ),
    );

    let speedup_12_packed = scalar_12.elapsed.as_secs_f64() / packed_12.elapsed.as_secs_f64();
    let speedup_12_threads = scalar_12.elapsed.as_secs_f64() / threaded_12.elapsed.as_secs_f64();
    rows.push(scalar_12);
    rows.push(packed_12);
    rows.push(threaded_12);

    let mut speedup_16 = None;
    if smoke {
        // CI smoke mode: the 2³² sweeps would dominate the job, and the
        // 12-bit comparison already exercises every code path. Judge the
        // speedup target here instead.
        c.check(
            "packed 12-bit sweep beats the scalar path by ≥10×",
            speedup_12_packed >= 10.0 || speedup_12_threads >= 10.0,
            &format!("{speedup_12_packed:.0}× on one thread"),
        );
    } else {
        let width = 16usize;
        let (approx_16, exact_16) = sweep_pair(width);
        let patterns_16 = 1u64 << (2 * width);
        let (threaded_16, bound_16) = time_sweep(
            &format!("packed×{threads} {width}-bit exhaustive error_bound"),
            patterns_16,
            || {
                exhaustive_error_bound_with(&approx_16, &exact_16, &Executor::new())
                    .expect("in range")
            },
        );
        c.check(
            "16-bit sweep finds the truncation's worst case",
            bound_16.max_abs_error > 0 && bound_16.error_rate > 0.0,
            &format!(
                "rate {:.4}, max |err| {} over {} patterns",
                bound_16.error_rate,
                bound_16.max_abs_error,
                fmt_count(patterns_16)
            ),
        );

        let scalar_16 = if full {
            let (timed, bound) = time_sweep(
                "scalar   16-bit exhaustive error_bound",
                patterns_16,
                || scalar_error_bound(&approx_16, &exact_16),
            );
            c.check(
                "full 16-bit scalar sweep agrees with packed",
                bounds_match(&bound, &bound_16),
                "",
            );
            timed
        } else {
            // Extrapolate from the measured 12-bit scalar rate, corrected
            // for netlist size (scalar cost is per pattern per node).
            let nodes_12 = (sweep_pair(12).0.len() + sweep_pair(12).1.len()) as f64;
            let nodes_16 = (approx_16.len() + exact_16.len()) as f64;
            let per_pattern = rows[0].elapsed.as_secs_f64() / patterns_12 as f64;
            TimedSweep {
                label: "scalar   16-bit exhaustive error_bound".to_owned(),
                patterns: patterns_16,
                elapsed: Duration::from_secs_f64(
                    per_pattern * (nodes_16 / nodes_12) * patterns_16 as f64,
                ),
                measured: false,
            }
        };

        let ratio = scalar_16.elapsed.as_secs_f64() / threaded_16.elapsed.as_secs_f64();
        c.check(
            "packed 16-bit sweep beats the scalar path by ≥10×",
            ratio >= 10.0,
            &format!(
                "{ratio:.0}×{}",
                if scalar_16.measured {
                    ""
                } else {
                    " (scalar extrapolated; pass --full to measure)"
                }
            ),
        );
        speedup_16 = Some(ratio);
        rows.push(scalar_16);
        rows.push(threaded_16);
    }

    println!(
        "\n  {:<44} {:>10} {:>12} {:>14}",
        "sweep", "patterns", "time", "throughput"
    );
    for row in &rows {
        println!("{}", row.row());
    }
    if rows.iter().any(|r| !r.measured) {
        println!("  (* extrapolated from the 12-bit scalar rate, node-count corrected)");
    }
    let tail = speedup_16.map_or_else(String::new, |s| format!(", {s:.0}× (16-bit)"));
    println!(
        "\n  speedup vs scalar: packed×1 {speedup_12_packed:.0}× (12-bit), \
         packed×{threads} {speedup_12_threads:.0}× (12-bit){tail}\n"
    );

    let elapsed = started.elapsed();
    if elapsed > QUICK_BUDGET && !full {
        println!(
            "  warning: quick run took {:.0}s (soft budget {}s) — wall clock is \
             informational only, not failing the job",
            elapsed.as_secs_f64(),
            QUICK_BUDGET.as_secs()
        );
    }
    c.finish("perf", &opts)
}
