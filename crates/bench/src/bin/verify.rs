//! `verify` — the formal verification and static-analysis pipeline.
//!
//! Runs, end to end and with a non-zero exit code on any failure:
//!
//! 1. **Lint** — every shipped adder netlist must validate and lint
//!    free of error-severity findings. (Warnings are reported but
//!    allowed: truncated adders leave low input bits floating by
//!    design, and the raw prefix-tree builders carry dead gates that
//!    the optimizer strips.)
//! 2. **Equivalence proofs** — for every adder variant the optimizer's
//!    output is *proven* (BDD miter, not sampled) equal to the original;
//!    every exact configuration is proven equal to an independently
//!    constructed ripple-carry reference.
//! 3. **Counterexample demo** — a deliberately broken 16-bit adder must
//!    yield a concrete counterexample that reproduces in simulation.
//! 4. **Exact error characterization** — BDD model counting
//!    (`equiv::error_bound`) is cross-checked against exhaustive netlist
//!    simulation at width 8, and the 32-bit QCS modes are proven to
//!    respect their family error bound `< 2^(k+1)`.
//! 5. **Static range analysis** — the CG / AR / GMM datapath models are
//!    proven overflow-free for the paper's Q15.16 format in accurate
//!    mode, the per-level behaviour is reported, and the proof is
//!    attached to a real `RunReport`.

use std::process::ExitCode;

use approx_arith::{
    AccuracyLevel, Adder, ArithContext, EtaIiAdder, GeArAdder, KoggeStoneAdder, LowerOrAdder,
    LowerZeroAdder, QcsAdder, QcsContext, RippleCarryAdder, WindowedCarryAdder,
};
use approxit::{RangeProofSummary, RunConfig, SingleMode};
use approxit_bench::cli::{BenchOpts, Checker};
use gatesim::builders::{self, AdderPorts};
use gatesim::equiv::{self, Equivalence};
use gatesim::{optimize, GateKind, Netlist, NodeId, Simulator};
use iter_solvers::{
    ar_range_model, cg_range_model, datasets, gmm_range_model, ArRangeSpec, AutoRegression,
    CgRangeSpec, ConjugateGradient, GaussianMixture, GmmRangeSpec,
};

/// The full 16-bit roster: every adder architecture the crate ships, in
/// both exact and approximate configurations.
fn roster_16() -> Vec<Box<dyn Adder>> {
    let qcs = QcsAdder::new(16, [10, 8, 6, 4]);
    let mut v: Vec<Box<dyn Adder>> = vec![
        Box::new(RippleCarryAdder::new(16)),
        Box::new(KoggeStoneAdder::new(16)),
        Box::new(LowerZeroAdder::new(16, 4)),
        Box::new(LowerOrAdder::new(16, 4, false)),
        Box::new(EtaIiAdder::new(16, 4)),
        Box::new(GeArAdder::new(16, 4, 4)),
        Box::new(WindowedCarryAdder::new(16, 8)),
    ];
    for level in AccuracyLevel::ALL {
        v.push(Box::new(qcs.at(level)));
    }
    v
}

/// Exactly-configured variants: all must be provably equal to a
/// ripple-carry reference.
fn exact_roster_16() -> Vec<Box<dyn Adder>> {
    let qcs = QcsAdder::new(16, [10, 8, 6, 4]);
    vec![
        Box::new(RippleCarryAdder::new(16)),
        Box::new(KoggeStoneAdder::new(16)),
        Box::new(LowerZeroAdder::new(16, 0)),
        Box::new(LowerOrAdder::new(16, 0, false)),
        Box::new(EtaIiAdder::new(16, 16)),
        Box::new(GeArAdder::new(16, 8, 8)),
        Box::new(WindowedCarryAdder::new(16, 16)),
        Box::new(qcs.at(AccuracyLevel::Accurate)),
    ]
}

/// Build an exact ripple-carry reference with the same port interface
/// (carry-in / carry-out presence) and input order as `ports`.
fn exact_reference(ports: &AdderPorts) -> Netlist {
    let w = ports.width();
    let mut nl = Netlist::new();
    let a: Vec<NodeId> = (0..w).map(|i| nl.input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..w).map(|i| nl.input(format!("b{i}"))).collect();
    let mut carry = ports.cin().map(|_| nl.input("cin"));
    let mut sums = Vec::with_capacity(w);
    for i in 0..w {
        let (s, c) = match carry {
            Some(c0) => builders::full_adder(&mut nl, a[i], b[i], c0),
            None => builders::half_adder(&mut nl, a[i], b[i]),
        };
        sums.push(s);
        carry = Some(c);
    }
    for (i, s) in sums.iter().enumerate() {
        nl.mark_output(*s, format!("sum{i}"));
    }
    if ports.has_cout() {
        nl.mark_output(carry.expect("width >= 1"), "cout");
    }
    nl
}

/// Rebuild `nl` with the first gate of `kind` replaced by `replacement`.
fn break_netlist(nl: &Netlist, kind: GateKind, replacement: GateKind) -> Netlist {
    let victim = nl
        .nodes()
        .iter()
        .position(|n| n.kind() == kind)
        .expect("victim gate kind present");
    let mut out = Netlist::new();
    let mut remap: Vec<NodeId> = Vec::with_capacity(nl.len());
    for (idx, node) in nl.nodes().iter().enumerate() {
        let k = if idx == victim {
            replacement
        } else {
            node.kind()
        };
        let get = |i: usize| remap[node.inputs()[i].index()];
        let id = match k {
            GateKind::Input => out.input(node.name().unwrap_or("in").to_owned()),
            GateKind::Const0 => out.constant(false),
            GateKind::Const1 => out.constant(true),
            GateKind::Buf => out.buf(get(0)),
            GateKind::Not => out.not(get(0)),
            GateKind::And2 => out.and2(get(0), get(1)),
            GateKind::Or2 => out.or2(get(0), get(1)),
            GateKind::Xor2 => out.xor2(get(0), get(1)),
            GateKind::Nand2 => out.nand2(get(0), get(1)),
            GateKind::Nor2 => out.nor2(get(0), get(1)),
            GateKind::Xnor2 => out.xnor2(get(0), get(1)),
            GateKind::Mux2 => out.mux2(get(0), get(1), get(2)),
            GateKind::Maj3 => out.maj3(get(0), get(1), get(2)),
        };
        remap.push(id);
    }
    for (id, name) in nl.primary_outputs() {
        out.mark_output(remap[id.index()], name.clone());
    }
    out
}

/// Exhaustive netlist-vs-netlist error statistics over every input
/// assignment: `(error_rate, worst_case_abs_error)` with outputs read as
/// unsigned words in output order.
fn exhaustive_netlist_error(approx: &Netlist, exact: &Netlist) -> (f64, u64) {
    let n = approx.num_inputs();
    assert!(n <= 20, "exhaustive sweep limited to 20 inputs");
    let mut sim_a = Simulator::new(approx);
    let mut sim_e = Simulator::new(exact);
    let mut errors = 0u64;
    let mut wce = 0u64;
    let total = 1u64 << n;
    for x in 0..total {
        let inputs: Vec<bool> = (0..n).map(|i| (x >> i) & 1 == 1).collect();
        let oa = sim_a.evaluate(&inputs).expect("approx netlist simulates");
        let oe = sim_e.evaluate(&inputs).expect("exact netlist simulates");
        let word = |bits: &[bool]| {
            bits.iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
        };
        let (va, ve) = (word(&oa), word(&oe));
        if va != ve {
            errors += 1;
        }
        wce = wce.max(va.abs_diff(ve));
    }
    (errors as f64 / total as f64, wce)
}

fn lint_stage(c: &mut Checker) {
    c.note("[1/5] lint: every shipped adder netlist");
    for adder in roster_16() {
        let (nl, _) = adder.netlist();
        let valid = nl.validate().is_ok();
        let report = nl.lint();
        c.check(
            &format!("lint {}", adder.name()),
            valid && report.is_clean(),
            &format!(
                "{} errors, {} warnings",
                report.error_count(),
                report.warning_count()
            ),
        );
    }
}

fn equivalence_stage(c: &mut Checker) {
    c.note("[2/5] equivalence: optimizer exactness + exact-config proofs");
    for adder in roster_16() {
        let (nl, _) = adder.netlist();
        let optimized = optimize::optimize(&nl).netlist;
        let verdict = equiv::prove(&nl, &optimized);
        c.check(
            &format!("optimize({}) preserves function", adder.name()),
            verdict.is_proven(),
            &format!("{} -> {} gates", nl.len(), optimized.len()),
        );
    }
    for adder in exact_roster_16() {
        let (nl, ports) = adder.netlist();
        let reference = exact_reference(&ports);
        let verdict = equiv::prove(&nl, &reference);
        c.check(
            &format!("{} == ripple-carry reference", adder.name()),
            verdict.is_proven(),
            "",
        );
    }
}

fn counterexample_stage(c: &mut Checker) {
    c.note("[3/5] counterexample: a broken 16-bit adder must be caught");
    let (nl, _) = RippleCarryAdder::new(16).netlist();
    let broken = break_netlist(&nl, GateKind::Maj3, GateKind::And2);
    match equiv::prove(&nl, &broken) {
        Equivalence::Counterexample {
            inputs,
            left,
            right,
        } => {
            let got_l = Simulator::new(&nl).evaluate(&inputs).expect("simulates");
            let got_r = Simulator::new(&broken)
                .evaluate(&inputs)
                .expect("simulates");
            let reproduces = got_l == left && got_r == right && left != right;
            c.check(
                "counterexample reproduces in simulation",
                reproduces,
                &format!(
                    "inputs {}",
                    inputs
                        .iter()
                        .map(|&b| if b { '1' } else { '0' })
                        .collect::<String>()
                ),
            );
        }
        other => c.check(
            "broken adder yields counterexample",
            false,
            &format!("got {other:?}"),
        ),
    }
}

fn error_bound_stage(c: &mut Checker) {
    c.note("[4/5] exact error characterization via BDD model counting");
    // Width-8 cross-check: BDD counting vs exhaustive netlist simulation.
    let qcs8 = QcsAdder::new(8, [4, 3, 2, 1]);
    let small: Vec<Box<dyn Adder>> = vec![
        Box::new(LowerZeroAdder::new(8, 3)),
        Box::new(LowerOrAdder::new(8, 3, false)),
        Box::new(EtaIiAdder::new(8, 2)),
        Box::new(GeArAdder::new(8, 2, 2)),
        Box::new(WindowedCarryAdder::new(8, 4)),
        Box::new(qcs8.at(AccuracyLevel::Level1)),
        Box::new(qcs8.at(AccuracyLevel::Level3)),
    ];
    for adder in small {
        let (nl, ports) = adder.netlist();
        let reference = exact_reference(&ports);
        let bound = equiv::error_bound(&nl, &reference).expect("BDD fits");
        let (swept_rate, swept_wce) = exhaustive_netlist_error(&nl, &reference);
        let rate_matches = (bound.error_rate - swept_rate).abs() < 1e-12;
        let wce_matches = bound.max_abs_error == swept_wce;
        c.check(
            &format!("BDD counting == exhaustive sweep for {}", adder.name()),
            rate_matches && wce_matches,
            &format!(
                "ER {:.6} (swept {:.6}), WCE {} (swept {})",
                bound.error_rate, swept_rate, bound.max_abs_error, swept_wce
            ),
        );
    }

    // 32-bit QCS family bound: ring error < 2^(k+1) raw, proven over
    // the full 2^64 operand space by the BDD — no sampling involved.
    // The ring metric is the right one here: a dropped carry wraps the
    // plain |approx − exact| to nearly 2^32, but modulo the word width
    // the damage is only the carry's weight.
    let qcs = QcsAdder::paper_default();
    for level in AccuracyLevel::ALL {
        let mode = qcs.at(level);
        let (nl, ports) = mode.netlist();
        let reference = exact_reference(&ports);
        let bound = equiv::error_bound(&nl, &reference).expect("BDD fits");
        let k = qcs.approx_bits(level);
        let family = if k == 0 { 0 } else { 1u64 << (k + 1) };
        let ok = if k == 0 {
            bound.is_exact()
        } else {
            bound.max_ring_error < family
        };
        c.check(
            &format!("qcs32 {level}: ring WCE within family bound"),
            ok,
            &format!(
                "ring WCE {} (bound {}), ER {:.4}",
                bound.max_ring_error, family, bound.error_rate
            ),
        );
    }
}

fn range_stage(c: &mut Checker) {
    c.note("[5/5] static range analysis of the benchmark datapaths");
    let mut ctx = QcsContext::with_paper_defaults();

    // Build the three workload models at benchmark scale.
    let mut a = approx_linalg::Matrix::zeros(10, 10);
    for i in 0..10 {
        a[(i, i)] = 4.0;
        if i + 1 < 10 {
            a[(i, i + 1)] = -1.0;
            a[(i + 1, i)] = -1.0;
        }
    }
    let b: Vec<f64> = (0..10).map(|i| 1.0 + i as f64 * 0.5).collect();
    let cg = ConjugateGradient::new(a, b, 1e-12, 100);
    let cg_model = cg_range_model(&cg, &CgRangeSpec::default());

    let series = datasets::ar_series("verify", 400, &[0.6, 0.2], 1.0, 3);
    let ar = AutoRegression::from_series(&series, 0.5, 1e-10, 500);
    let ar_model = ar_range_model(&ar, &ArRangeSpec::default());

    let blobs = datasets::gaussian_blobs(
        "verify",
        &[30, 30],
        &[vec![0.0, 0.0], vec![6.0, 6.0]],
        &[0.6, 0.6],
        1,
    );
    let gmm = GaussianMixture::from_dataset(&blobs, 1e-9, 100, 7);
    let gmm_model = gmm_range_model(&gmm, &GmmRangeSpec::default());

    // In accurate mode all three datapaths must be proven overflow-free
    // for the paper's Q15.16 format; per-level verdicts are reported.
    for model in [&cg_model, &ar_model, &gmm_model] {
        for level in AccuracyLevel::ALL {
            ctx.set_level(level);
            let config = ctx.range_config().expect("QCS context models hardware");
            let report = model.analyze(&config);
            if level == AccuracyLevel::Accurate {
                c.check(
                    &format!("{} proven at {level}", model.name()),
                    report.proven(),
                    &report.verdict.to_string(),
                );
            } else {
                c.note(&format!(
                    "       {} @ {level}: {}",
                    model.name(),
                    report.verdict
                ));
            }
        }
    }

    // The proof travels with the run report.
    ctx.set_level(AccuracyLevel::Accurate);
    ctx.reset_counters();
    let config = ctx.range_config().expect("QCS context models hardware");
    let summary = RangeProofSummary::from_model(&cg_model, &config);
    let mut strategy = SingleMode::new(AccuracyLevel::Accurate);
    let mut outcome = RunConfig::new(&cg, &mut ctx).execute(&mut strategy);
    outcome.report.range_proof = Some(summary);
    let json = outcome.report.to_json();
    c.check(
        "RunReport carries the range proof",
        json.contains("\"range_proof\":{\"proven\":true")
            && outcome.report.to_string().contains("range: proven"),
        &format!("{} iterations, verdict attached", outcome.report.iterations),
    );
}

fn main() -> ExitCode {
    let opts = BenchOpts::parse();
    opts.say("verify: BDD equivalence proofs, netlist lint, static range analysis");
    let mut c = Checker::new(opts.quiet);
    lint_stage(&mut c);
    equivalence_stage(&mut c);
    counterexample_stage(&mut c);
    error_bound_stage(&mut c);
    range_stage(&mut c);
    c.finish("verify", &opts)
}
