//! Batched-vs-scalar solver performance harness.
//!
//! The slice kernels on [`QcsContext`] promise two things: they are
//! **bit-identical** to the scalar per-operation path — values,
//! operation counts, metered energy — and they are much faster, because
//! the f64↔fixed-point conversions happen once per slice and the inner
//! loops run branch-free over raw words. This harness verifies the
//! first claim as hard failures and measures the second on end-to-end
//! solves of the paper's workloads: conjugate gradient, autoregression
//! by gradient descent, and GMM-EM.
//!
//! The scalar baseline is [`ScalarPath`], which wraps an identically
//! configured `QcsContext` but deliberately routes every slice kernel
//! through the trait's scalar-loop defaults.
//!
//! Modes: default (paper-scale problems, best of 3 repetitions),
//! `--full` (larger problems, best of 5), `--smoke` (CI: small
//! problems, single repetition). Cross-check failures exit non-zero;
//! wall clock never does.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, OpCounts, QcsContext, ScalarPath};
use approx_linalg::Matrix;
use approxit_bench::cli::{BenchOpts, Checker};
use iter_solvers::datasets::{ar_series, gaussian_blobs};
use iter_solvers::rng::Pcg32;
use iter_solvers::{AutoRegression, ConjugateGradient, GaussianMixture, IterativeMethod};
use parx::Executor;

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

/// A dense, well-conditioned SPD system: `A = M·Mᵀ/n + I`.
fn spd_system(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = Pcg32::seeded(seed, 0);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = rng.uniform(-1.0, 1.0);
        }
    }
    let mut a = m.matmul_exact(&m.transpose());
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] /= n as f64;
        }
        a[(i, i)] += 1.0;
    }
    let b: Vec<f64> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
    (a, b)
}

/// Outcome of driving one method for a fixed iteration budget.
struct Drive {
    params: Vec<f64>,
    counts: OpCounts,
    energy: f64,
    elapsed: Duration,
}

/// Run `iters` steps of `method` on `ctx`, timing only the stepping
/// loop (monitoring stays outside, as the controller does).
fn drive<M: IterativeMethod, C: ArithContext>(method: &M, ctx: &mut C, iters: usize) -> Drive {
    ctx.reset_counters();
    let mut state = method.initial_state();
    let start = Instant::now();
    for _ in 0..iters {
        state = method.step(&state, ctx);
    }
    let elapsed = start.elapsed();
    Drive {
        params: method.params(&state),
        counts: ctx.counts(),
        energy: ctx.total_energy(),
        elapsed,
    }
}

struct Row {
    label: String,
    ops: u64,
    scalar: Duration,
    batched: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar.as_secs_f64() / self.batched.as_secs_f64()
    }
}

/// Benchmark one workload: cross-check the two paths, then keep the
/// best-of-`reps` timing for each.
fn bench_workload<M: IterativeMethod>(
    c: &mut Checker,
    label: &str,
    method: &M,
    level: AccuracyLevel,
    iters: usize,
    reps: usize,
) -> Row {
    let mut scalar_best = Duration::MAX;
    let mut batched_best = Duration::MAX;
    let mut ops = 0;
    let mut checked = false;
    for _ in 0..reps {
        // The batched context runs with the ambient executor attached
        // (`APPROXIT_THREADS` sets its worker count), so the timing —
        // and the cross-check below — covers the parallel dispatch.
        let mut batched_ctx = QcsContext::with_profile(profile()).with_executor(Executor::new());
        batched_ctx.set_level(level);
        let mut scalar_ctx = ScalarPath::new({
            let mut inner = QcsContext::with_profile(profile());
            inner.set_level(level);
            inner
        });
        let batched = drive(method, &mut batched_ctx, iters);
        let scalar = drive(method, &mut scalar_ctx, iters);
        if !checked {
            checked = true;
            // Determinism contract: the parallel dispatch at an awkward
            // thread count must reproduce the serial batched bits.
            let mut par_ctx =
                QcsContext::with_profile(profile()).with_executor(Executor::with_threads(7));
            par_ctx.set_level(level);
            let parallel = drive(method, &mut par_ctx, iters);
            c.check(
                &format!("{label}: 7-thread solve is bit-identical to the serial one"),
                parallel.params.len() == batched.params.len()
                    && parallel
                        .params
                        .iter()
                        .zip(&batched.params)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                    && parallel.counts == batched.counts
                    && parallel.energy.to_bits() == batched.energy.to_bits(),
                "values, op counts and energy across thread counts",
            );
            let values_ok = batched.params.len() == scalar.params.len()
                && batched
                    .params
                    .iter()
                    .zip(&scalar.params)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            c.check(
                &format!("{label}: batched solve is bit-identical to the scalar path"),
                values_ok,
                &format!(
                    "{} parameters over {iters} iterations",
                    batched.params.len()
                ),
            );
            c.check(
                &format!("{label}: operation counts match exactly"),
                batched.counts == scalar.counts,
                &format!(
                    "{} adds, {} muls, {} divs",
                    batched.counts.adds, batched.counts.muls, batched.counts.divs
                ),
            );
            c.check(
                &format!("{label}: metered energy matches to the last bit"),
                batched.energy.to_bits() == scalar.energy.to_bits(),
                &format!("{:.3e} units", batched.energy),
            );
        }
        ops = batched.counts.total();
        scalar_best = scalar_best.min(scalar.elapsed);
        batched_best = batched_best.min(batched.elapsed);
    }
    Row {
        label: label.to_owned(),
        ops,
        scalar: scalar_best,
        batched: batched_best,
    }
}

fn fmt_ops(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn main() -> ExitCode {
    let opts = BenchOpts::parse();
    let full = opts.has_flag("--full");
    let smoke = opts.has_flag("--smoke") && !full;
    let seed = opts.seed_or(17);
    opts.say("solverperf: batched slice kernels vs scalar per-op path, end-to-end solves");
    let mut c = Checker::new(opts.quiet);

    // Problem scales: CG order, CG iters, AR samples, AR iters, GMM
    // points per blob, GMM iters, repetitions.
    let (cg_n, cg_iters, ar_n, ar_iters, gmm_per_blob, gmm_iters, reps) = if smoke {
        (48, 60, 800, 25, 60, 6, 1)
    } else if full {
        (192, 300, 8000, 150, 500, 20, 5)
    } else {
        (128, 200, 4000, 100, 300, 15, 3)
    };

    let mut rows = Vec::new();

    // Conjugate gradient on a dense SPD system (paper §3.2's linear
    // solver), dominated by matvec dot-reductions and axpy updates.
    let (a, b) = spd_system(cg_n, seed);
    let cg = ConjugateGradient::new(a, b, 1e-12, cg_iters.max(2));
    rows.push(bench_workload(
        &mut c,
        &format!("cg n={cg_n}"),
        &cg,
        AccuracyLevel::Level2,
        cg_iters,
        reps,
    ));

    // Autoregression by gradient descent (the paper's AR benchmark):
    // long dot products over the design matrix plus axpy accumulations.
    let series = ar_series(
        "perf-ar",
        ar_n,
        &[0.55, -0.2, 0.1, 0.05, -0.03, 0.02, 0.01, -0.01],
        0.05,
        seed + 1,
    );
    let ar = AutoRegression::from_series(&series, 0.05, 1e-12, ar_iters.max(2));
    rows.push(bench_workload(
        &mut c,
        &format!("ar N={ar_n} p=8"),
        &ar,
        AccuracyLevel::Level2,
        ar_iters,
        reps,
    ));

    // GMM-EM on Gaussian blobs (the paper's Table 2 workload): the
    // M-step means run through the weighted-mean slice kernels.
    let blobs = gaussian_blobs(
        "perf-gmm",
        &[gmm_per_blob, gmm_per_blob, gmm_per_blob],
        &[vec![0.0, 0.0], vec![6.0, 0.0], vec![3.0, 5.0]],
        &[0.8, 0.8, 0.8],
        seed + 2,
    );
    let gmm = GaussianMixture::from_dataset(&blobs, 1e-12, gmm_iters.max(2), 3);
    rows.push(bench_workload(
        &mut c,
        &format!("gmm k=3 n={}", 3 * gmm_per_blob),
        &gmm,
        AccuracyLevel::Level3,
        gmm_iters,
        reps,
    ));

    println!(
        "\n  {:<18} {:>10} {:>12} {:>12} {:>9}",
        "workload", "ops", "scalar", "batched", "speedup"
    );
    for row in &rows {
        println!(
            "  {:<18} {:>10} {:>12} {:>12} {:>8.1}×",
            row.label,
            fmt_ops(row.ops),
            format!("{:.3}s", row.scalar.as_secs_f64()),
            format!("{:.3}s", row.batched.as_secs_f64()),
            row.speedup()
        );
    }
    let geomean = (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("\n  geometric-mean speedup: {geomean:.1}×");
    if geomean < 5.0 {
        // Wall clock is informational: a loaded machine must not flake
        // the job, so this logs instead of failing.
        println!(
            "  warning: speedup {geomean:.1}× below the 5× target — \
             wall clock is informational only, not failing the job"
        );
    }
    c.note(&format!(
        "speedups (scalar/batched best-of-{reps}): {}",
        rows.iter()
            .map(|r| format!("{} {:.1}×", r.label, r.speedup()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    c.finish("solverperf", &opts)
}
