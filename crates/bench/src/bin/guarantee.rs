//! `guarantee` — static proof of the quality guarantee.
//!
//! Where `verify` proves the *hardware* (netlists, error bounds,
//! overflow-freedom), this binary proves the *control loop*: that the
//! online reconfiguration policies can never livelock away from the
//! accurate mode, and that the error injected per iteration — bounded
//! statically, before any simulation — is tamed by the solvers'
//! contraction. Runs, end to end and with a non-zero exit code on any
//! failure:
//!
//! 1. **Controller model checking** — the shipped strategies
//!    (adaptive, adaptive + watchdog, watchdogged single-mode) are
//!    proven livelock-free, monotone in their escalation order, and
//!    checkpoint-disciplined over their *entire* reachable state
//!    spaces.
//! 2. **Counterexample demo** — a deliberately broken controller with
//!    the escalation order inverted, and the unprotected single-mode
//!    baseline, must each yield concrete decision traces that replay
//!    against their specs (the same philosophy as `verify`'s broken
//!    adder: the checker earns trust by catching planted bugs with
//!    evidence).
//! 3. **Symbolic cross-check** — an independent BDD-based engine
//!    (forward reachability fixpoint + backward `EF accurate`) must
//!    agree with the explicit exploration on every controller.
//! 4. **Error propagation & contraction** — per-solver contraction
//!    factors (CG via Gershgorin + Chebyshev, AR via its exactly
//!    linear error map, GMM by validated declaration) are combined
//!    with the per-mode injected-error bounds of the datapath into the
//!    recurrence `e' ≤ ρ·e + δ`; its steady state `δ/(1−ρ)` must stay
//!    below the controller's switching budget (the paper's Eq. 5 error
//!    budget `E`).
//! 5. **Static dominance over Monte Carlo** — the static per-mode
//!    injected bounds must dominate *every* measured row of the
//!    offline `CharacterizationTable` for CG, AR and GMM: anything the
//!    simulation observes, the analysis predicted.

use std::process::ExitCode;

use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, QcsContext, RangeConfig};
use approxit::modelcheck::{symbolic_cross_check, ControllerSpec};
use approxit::{characterize, model_check, CharacterizationTable};
use approxit_bench::cli::{BenchOpts, Checker};
use approxit_bench::shared_profile;
use iter_solvers::{
    ar_contraction, ar_range_model, cg_contraction, cg_range_model, datasets, gmm_contraction,
    gmm_range_model, injected_error_bound, ArRangeSpec, AutoRegression, CgRangeSpec,
    ConjugateGradient, ContractionReport, GaussianMixture, GmmRangeSpec, IterativeMethod,
    RangeModel,
};

/// Characterization iterations per workload (kept small: the stage is
/// re-run per mode).
const CHAR_ITERS: usize = 4;

/// Declared contraction factor for GMM EM on the well-separated
/// benchmark blobs (validated against measured update ratios in stage
/// 4 before anything depends on it).
const GMM_DECLARED_RHO: f64 = 0.9;

fn shipped_specs() -> Vec<ControllerSpec> {
    vec![
        ControllerSpec::adaptive(),
        ControllerSpec::adaptive_with_watchdog(3),
        ControllerSpec::single_mode_with_watchdog(AccuracyLevel::Level1, 3),
        ControllerSpec::single_mode_with_watchdog(AccuracyLevel::Level4, 3),
    ]
}

fn modelcheck_stage(c: &mut Checker) {
    c.note("[1/5] model checking: shipped controllers over their full state spaces");
    for spec in shipped_specs() {
        let report = model_check(&spec);
        c.check(
            &format!("{} proven", report.controller),
            report.proven(),
            &format!(
                "{} states, {} transitions{}",
                report.states_explored,
                report.transitions,
                report
                    .violations
                    .first()
                    .map(|v| format!("; first violation: {v}"))
                    .unwrap_or_default()
            ),
        );
    }
}

fn counterexample_stage(c: &mut Checker) {
    c.note("[2/5] counterexamples: planted controller bugs must be caught with traces");

    // The inverted-escalation mutant: damage *lowers* the level.
    let mutant = ControllerSpec::inverted_escalation_mutant();
    let report = model_check(&mutant);
    let monotone = report
        .violations
        .iter()
        .find(|v| v.property.contains("monotone"));
    match monotone {
        Some(cx) => {
            c.check(
                "inverted-escalation mutant violates monotone order",
                cx.replay(&mutant),
                &format!("trace of {} steps replays against the spec", cx.trace.len()),
            );
            // Show the concrete decision trace, like verify prints the
            // broken adder's input assignment.
            for line in cx.to_string().lines() {
                c.note(&format!("       {line}"));
            }
        }
        None => c.check(
            "inverted-escalation mutant violates monotone order",
            false,
            "checker failed to catch the planted bug",
        ),
    }

    // The unprotected single-mode baseline livelocks below accurate —
    // the exact failure the watchdog exists to break.
    let unprotected = ControllerSpec::single_mode_unprotected(AccuracyLevel::Level1);
    let report = model_check(&unprotected);
    let livelock = report
        .violations
        .iter()
        .find(|v| v.property.contains("livelock"));
    c.check(
        "unprotected single-mode livelocks (watchdog is load-bearing)",
        livelock.is_some_and(|cx| cx.replay(&unprotected)),
        &format!("{} violations, all replayable", report.violations.len()),
    );
}

fn symbolic_stage(c: &mut Checker) {
    c.note("[3/5] symbolic cross-check: BDD engine vs explicit exploration");
    let mut specs = shipped_specs();
    specs.push(ControllerSpec::inverted_escalation_mutant());
    specs.push(ControllerSpec::single_mode_unprotected(
        AccuracyLevel::Level1,
    ));
    for spec in &specs {
        match symbolic_cross_check(spec) {
            Ok(cc) => c.check(
                &format!("symbolic == explicit for {}", spec.name()),
                cc.counts_agree(),
                &format!(
                    "{} reachable states, {} BDD nodes, EF accurate everywhere: {}",
                    cc.symbolic_reachable, cc.bdd_nodes, cc.all_reach_accurate
                ),
            ),
            Err(e) => c.check(
                &format!("symbolic == explicit for {}", spec.name()),
                false,
                &format!("BDD blow-up: {e:?}"),
            ),
        }
    }

    // EF accurate must hold for every *protected* controller and fail
    // for the unprotected baseline: the symbolic engine independently
    // rediscovers what the watchdog buys.
    let protected_ok = shipped_specs()
        .iter()
        .all(|s| symbolic_cross_check(s).is_ok_and(|cc| cc.all_reach_accurate));
    let unprotected_stuck = symbolic_cross_check(&ControllerSpec::single_mode_unprotected(
        AccuracyLevel::Level1,
    ))
    .is_ok_and(|cc| !cc.all_reach_accurate);
    c.check(
        "EF-accurate separates protected from unprotected controllers",
        protected_ok && unprotected_stuck,
        "",
    );
}

/// Everything the guarantee stages need to know about one workload.
struct Workload {
    model: RangeModel,
    contraction: ContractionReport,
    table: CharacterizationTable,
    /// Dimension of the parameter vector (for the √n norm conversion).
    dim: usize,
    /// Smallest exact next-iterate 2-norm over the characterized steps
    /// — the denominator floor when converting absolute bounds to the
    /// table's relative metric.
    min_exact_norm: f64,
    /// For *declared* (assume-guarantee) contraction factors: the
    /// largest measured successive update-norm ratio, which must stay
    /// at or below the declaration.
    declared_validation: Option<f64>,
}

/// Largest successive mean-update-norm ratio of the GMM EM trajectory
/// (exact datapath) while the updates are still numerically meaningful
/// — the measurement that backs the declared EM contraction factor.
fn gmm_measured_ratio(gmm: &GaussianMixture, profile: &EnergyProfile) -> f64 {
    let mut ctx = QcsContext::with_profile(profile.clone());
    ctx.set_level(AccuracyLevel::Accurate);
    let mut prev = gmm.initial_state();
    let mut prev_update: Option<f64> = None;
    let mut worst: f64 = 0.0;
    for _ in 0..25 {
        let next = gmm.step(&prev, &mut ctx);
        let update: f64 = next
            .means
            .iter()
            .flatten()
            .zip(prev.means.iter().flatten())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        if let Some(p) = prev_update {
            if p > 1e-8 {
                worst = worst.max(update / p);
            }
        }
        prev_update = Some(update);
        prev = next;
    }
    worst
}

fn exact_norm_floor<M: IterativeMethod>(method: &M, profile: &EnergyProfile) -> f64 {
    let mut ctx = QcsContext::with_profile(profile.clone());
    ctx.set_level(AccuracyLevel::Accurate);
    let mut state = method.initial_state();
    let mut floor = f64::INFINITY;
    for _ in 0..CHAR_ITERS {
        state = method.step(&state, &mut ctx);
        let p = method.params(&state);
        let norm = p.iter().map(|x| x * x).sum::<f64>().sqrt();
        floor = floor.min(norm);
    }
    floor
}

fn workloads(profile: &EnergyProfile) -> Vec<Workload> {
    // The same benchmark instances as `verify`'s range stage.
    let mut a = approx_linalg::Matrix::zeros(10, 10);
    for i in 0..10 {
        a[(i, i)] = 4.0;
        if i + 1 < 10 {
            a[(i, i + 1)] = -1.0;
            a[(i + 1, i)] = -1.0;
        }
    }
    let b: Vec<f64> = (0..10).map(|i| 1.0 + i as f64 * 0.5).collect();
    let cg = ConjugateGradient::new(a, b, 1e-12, 100);

    let series = datasets::ar_series("guarantee", 400, &[0.6, 0.2], 1.0, 3);
    let ar = AutoRegression::from_series(&series, 0.5, 1e-10, 500);

    let blobs = datasets::gaussian_blobs(
        "guarantee",
        &[30, 30],
        &[vec![0.0, 0.0], vec![6.0, 6.0]],
        &[0.6, 0.6],
        1,
    );
    let gmm = GaussianMixture::from_dataset(&blobs, 1e-9, 100, 7);

    vec![
        Workload {
            model: cg_range_model(&cg, &CgRangeSpec::default()),
            contraction: cg_contraction(&cg),
            table: characterize(&cg, profile, CHAR_ITERS),
            dim: cg.initial_state().x.len(),
            min_exact_norm: exact_norm_floor(&cg, profile),
            declared_validation: None,
        },
        Workload {
            model: ar_range_model(&ar, &ArRangeSpec::default()),
            contraction: ar_contraction(&ar),
            table: characterize(&ar, profile, CHAR_ITERS),
            dim: ar.order(),
            min_exact_norm: exact_norm_floor(&ar, profile),
            declared_validation: None,
        },
        Workload {
            model: gmm_range_model(&gmm, &GmmRangeSpec::default()),
            contraction: gmm_contraction(&gmm, GMM_DECLARED_RHO),
            table: characterize(&gmm, profile, CHAR_ITERS),
            dim: gmm.initial_state().means.iter().map(Vec::len).sum(),
            min_exact_norm: exact_norm_floor(&gmm, profile),
            declared_validation: Some(gmm_measured_ratio(&gmm, profile)),
        },
    ]
}

/// Per-mode hardware range configuration of the paper-default datapath.
fn config_at(ctx: &mut QcsContext, level: AccuracyLevel) -> RangeConfig {
    ctx.set_level(level);
    ctx.range_config().expect("QCS context models hardware")
}

/// Static per-mode injected bound, converted to the characterization
/// table's *relative parameter-space* metric: per-component absolute
/// bound × √dim (2-norm over the parameter vector), divided by the
/// smallest exact iterate norm observed over the characterized window.
fn relative_static_bound(w: &Workload, ctx: &mut QcsContext, level: AccuracyLevel) -> f64 {
    let approx = config_at(ctx, level);
    let exact = config_at(ctx, AccuracyLevel::Accurate);
    let abs = injected_error_bound(&w.model, &approx, &exact);
    abs * (w.dim as f64).sqrt() / w.min_exact_norm
}

fn contraction_stage(c: &mut Checker, loads: &[Workload], ctx: &mut QcsContext) {
    c.note("[4/5] error propagation x contraction: the recurrence e' <= rho*e + delta");
    for w in loads {
        for note in w.contraction.notes() {
            c.note(&format!("       {}: {note}", w.model.name()));
        }
        c.check(
            &format!("{} contraction certified", w.contraction.name()),
            w.contraction.is_contracting(),
            &format!("rho = {:.6}", w.contraction.factor()),
        );
        if let Some(measured) = w.declared_validation {
            c.check(
                &format!(
                    "{} declared factor backed by measurement",
                    w.contraction.name()
                ),
                measured <= w.contraction.factor(),
                &format!(
                    "worst measured update ratio {measured:.4} <= declared {:.4}",
                    w.contraction.factor()
                ),
            );
        }

        // The controller's switching budget is the paper's Eq. 5 error
        // budget E = the exact run's initial objective drop — the total
        // error the adaptive LUT is allowed to distribute over the run.
        // The *steady state* of the error recurrence at the finest
        // approximate mode must sit below it: sustained Level4
        // approximation can never exhaust the budget on its own.
        let delta = relative_static_bound(w, ctx, AccuracyLevel::Level4);
        let rec = w.contraction.recurrence(delta);
        let budget = w.table.initial_objective_drop;
        match rec.steady_state() {
            Some(ss) => c.check(
                &format!("{} steady state below switching budget", w.model.name()),
                rec.stays_below(budget),
                &format!("delta/(1-rho) = {ss:.4e}, budget E = {budget:.4e}"),
            ),
            None => c.check(
                &format!("{} steady state below switching budget", w.model.name()),
                false,
                "no steady state: contraction not certified",
            ),
        }
    }
}

fn dominance_stage(c: &mut Checker, loads: &[Workload], ctx: &mut QcsContext) {
    c.note("[5/5] dominance: static bounds vs the measured characterization table");
    for w in loads {
        c.note(&format!(
            "       {} (dim {}, exact-norm floor {:.3e}):",
            w.model.name(),
            w.dim,
            w.min_exact_norm
        ));
        c.note(&format!(
            "       {:>8} {:>14} {:>14}",
            "mode", "measured eps", "static bound"
        ));
        let mut dominated = true;
        let mut worst = String::new();
        for level in AccuracyLevel::APPROXIMATE {
            let measured = w.table.update_error(level);
            let stat = relative_static_bound(w, ctx, level);
            c.note(&format!(
                "       {:>8} {measured:>14.4e} {stat:>14.4e}",
                level.to_string()
            ));
            if !(stat.is_finite() && measured <= stat) {
                dominated = false;
                worst = format!("{level}: measured {measured:.4e} > static {stat:.4e}");
            }
        }
        c.check(
            &format!(
                "static bounds dominate every measured row for {}",
                w.model.name()
            ),
            dominated,
            &worst,
        );
    }
}

fn main() -> ExitCode {
    let opts = BenchOpts::parse();
    opts.say("guarantee: controller model checking + static error-propagation proofs");
    let mut c = Checker::new(opts.quiet);
    modelcheck_stage(&mut c);
    counterexample_stage(&mut c);
    symbolic_stage(&mut c);

    let profile = shared_profile();
    let loads = workloads(profile);
    let mut ctx = QcsContext::with_profile(profile.clone());
    contraction_stage(&mut c, &loads, &mut ctx);
    dominance_stage(&mut c, &loads, &mut ctx);

    c.finish("guarantee", &opts)
}
