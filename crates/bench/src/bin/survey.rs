//! Adder architecture survey: the design space the QCS adder was picked
//! from, quantified on three axes — accuracy (Monte-Carlo error
//! metrics), energy (switching activity of the gate netlist), and delay
//! (critical path under the standard-cell delay model).
//!
//! This is the kind of table an approximate-arithmetic paper (e.g. the
//! paper's refs [5, 11–14]) reports for its building blocks.

use approx_arith::rng::Pcg32;
use approx_arith::{
    characterize_adder_energy, characterize_monte_carlo, Adder, EtaIiAdder, GeArAdder,
    KoggeStoneAdder, LowerOrAdder, LowerZeroAdder, RippleCarryAdder, WindowedCarryAdder,
};
use approxit_bench::cli::BenchOpts;
use approxit_bench::render::{fmt_value, render_table};
use gatesim::timing::DelayModel;
use gatesim::EnergyModel;

fn main() {
    let opts = BenchOpts::parse();
    let seed = opts.seed_or(0x5EED);
    let width = 32u32;
    let adders: Vec<Box<dyn Adder>> = vec![
        Box::new(RippleCarryAdder::new(width)),
        Box::new(KoggeStoneAdder::new(width)),
        Box::new(LowerZeroAdder::new(width, 5)),
        Box::new(LowerZeroAdder::new(width, 10)),
        Box::new(LowerZeroAdder::new(width, 15)),
        Box::new(LowerZeroAdder::new(width, 20)),
        Box::new(LowerOrAdder::new(width, 10, false)),
        Box::new(LowerOrAdder::new(width, 10, true)),
        Box::new(EtaIiAdder::new(width, 8)),
        Box::new(EtaIiAdder::new(width, 4)),
        Box::new(WindowedCarryAdder::new(width, 8)),
        Box::new(GeArAdder::new(width, 4, 4)),
        Box::new(GeArAdder::new(width, 8, 4)),
        Box::new(GeArAdder::new(width, 2, 6)),
    ];

    let energy_model = EnergyModel::default();
    let delay_model = DelayModel::default();
    let samples = 4000;

    println!("Adder architecture survey ({width}-bit, {samples} Monte-Carlo samples)\n");
    let baseline_energy =
        characterize_adder_energy(&RippleCarryAdder::new(width), 512, 0xCAFE, &energy_model);
    let baseline_delay = {
        let (nl, _) = RippleCarryAdder::new(width).netlist();
        delay_model.critical_path(&nl)
    };

    let mut rows = Vec::new();
    for adder in &adders {
        let mut rng = Pcg32::seeded(seed, 1);
        let stats = characterize_monte_carlo(adder.as_ref(), samples, &mut rng);
        let energy = characterize_adder_energy(adder.as_ref(), 512, 0xCAFE, &energy_model);
        let (nl, _) = adder.netlist();
        let delay = delay_model.critical_path(&nl);
        rows.push(vec![
            adder.name(),
            format!("{:.3}", stats.error_rate),
            fmt_value(stats.mean_error_distance),
            fmt_value(stats.normalized_med),
            fmt_value(stats.mean_relative_error),
            format!("{:.3}", energy / baseline_energy),
            format!("{:.3}", delay / baseline_delay),
            format!("{}", nl.transistor_count()),
            format!("{}", DelayModel::logic_depth(&nl)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Adder",
                "ER",
                "MED",
                "NMED",
                "MRED",
                "Energy",
                "Delay",
                "Transistors",
                "Depth",
            ],
            &rows,
        )
    );
    println!(
        "Energy and Delay are normalized to the exact ripple-carry adder \
         (energy {baseline_energy:.1}, delay {baseline_delay:.1})."
    );

    optimizer_effect();
}

/// Logic-optimization effect on each QCS mode's netlist: constant
/// folding strips the tied-to-zero low bits a naive truncation netlist
/// carries, confirming the hand-built netlists are already minimal.
fn optimizer_effect() {
    use approx_arith::{AccuracyLevel, QcsAdder};
    use gatesim::optimize::optimize;

    println!("\nNetlist optimization effect on the QCS adder modes\n");
    let qcs = QcsAdder::paper_default();
    let mut rows = Vec::new();
    for level in AccuracyLevel::ALL {
        let (nl, _) = qcs.at(level).netlist();
        let report = optimize(&nl);
        rows.push(vec![
            format!("qcs32/{level}"),
            nl.len().to_string(),
            report.netlist.len().to_string(),
            report.folded.to_string(),
            report.dead.to_string(),
            nl.transistor_count().to_string(),
            report.netlist.transistor_count().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Mode",
                "Nodes",
                "Optimized",
                "Folded",
                "Dead",
                "Transistors",
                "OptTransistors",
            ],
            &rows,
        )
    );
}
