//! Regenerates the paper's Figure 4: GMM energy comparison.
//!
//! For each GMM dataset, prints the total approximate-part energy and
//! the per-iteration energy (both normalized to Truth) of the Truth,
//! incremental, and adaptive runs — the two bar groups of the paper's
//! figure — plus the percentage savings the paper quotes in the text.

use approx_arith::QcsContext;
use approxit::{
    characterize, AdaptiveAngleStrategy, IncrementalStrategy, ReconfigStrategy, RunConfig,
    SingleMode,
};
use approxit_bench::cli::BenchOpts;
use approxit_bench::render::{fmt_value, render_table};
use approxit_bench::{gmm_specs, shared_profile};

fn main() {
    let opts = BenchOpts::parse();
    opts.say("Figure 4: GMM comparison on energy consumption\n");
    let mut rows = Vec::new();
    for spec in gmm_specs() {
        let gmm = spec.model();
        let table = characterize(&gmm, shared_profile(), 5);
        let mut ctx = QcsContext::with_profile(shared_profile().clone());
        let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());

        let mut strategies: Vec<(&str, Box<dyn ReconfigStrategy>)> = vec![
            ("truth", Box::new(SingleMode::accurate())),
            (
                "incremental",
                Box::new(IncrementalStrategy::from_characterization(&table)),
            ),
            (
                "adaptive",
                Box::new(AdaptiveAngleStrategy::from_characterization(&table, 1)),
            ),
        ];
        for (name, strategy) in &mut strategies {
            let outcome = RunConfig::new(&gmm, &mut ctx).execute(strategy.as_mut());
            let total = outcome.report.normalized_energy(&truth.report);
            let per_iter = outcome.report.energy_per_iteration_mean()
                / truth.report.energy_per_iteration_mean();
            rows.push(vec![
                spec.name().to_owned(),
                (*name).to_owned(),
                outcome.report.iterations.to_string(),
                fmt_value(total),
                fmt_value(per_iter),
                format!("{:+.1}%", (total - 1.0) * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset",
                "Strategy",
                "Iterations",
                "TotalEnergy",
                "EnergyPerIter",
                "vsTruth",
            ],
            &rows,
        )
    );
}
