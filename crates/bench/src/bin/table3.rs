//! Regenerates the paper's Table 3: results on Gaussian Mixture Models.
//!
//! Part (a) runs every single-mode configuration on each dataset; part
//! (b) runs the incremental and adaptive (f = 1) online reconfiguration
//! strategies. Pass `--part a` or `--part b` to run one part only.

use approxit_bench::cli::BenchOpts;
use approxit_bench::render::{fmt_value, render_table};
use approxit_bench::{gmm_reconfig_rows, gmm_single_mode_rows, gmm_specs};

fn main() {
    let opts = BenchOpts::parse();
    let part = opts.flag_value("--part").unwrap_or("ab");

    if part.contains('a') {
        println!("Table 3(a): GMM single-mode results\n");
        for spec in gmm_specs() {
            println!("dataset: {}", spec.name());
            let rows: Vec<Vec<String>> = gmm_single_mode_rows(&spec)
                .into_iter()
                .map(|r| {
                    vec![
                        r.configuration,
                        if r.converged {
                            r.iterations.to_string()
                        } else {
                            "MAX_ITER".to_owned()
                        },
                        format!("{:.0}", r.qem),
                        fmt_value(r.energy),
                    ]
                })
                .collect();
            println!(
                "{}",
                render_table(&["Configuration", "Iteration", "QEM", "Energy"], &rows)
            );
        }
    }

    if part.contains('b') {
        println!("Table 3(b): GMM online reconfiguration results (f = 1)\n");
        let mut rows = Vec::new();
        for spec in gmm_specs() {
            for r in gmm_reconfig_rows(&spec, 1) {
                rows.push(vec![
                    r.dataset,
                    r.strategy,
                    r.steps[0].to_string(),
                    r.steps[1].to_string(),
                    r.steps[2].to_string(),
                    r.steps[3].to_string(),
                    r.steps[4].to_string(),
                    r.total.to_string(),
                    format!("{:.0}", r.error),
                    fmt_value(r.energy),
                    r.rollbacks.to_string(),
                ]);
            }
        }
        println!(
            "{}",
            render_table(
                &[
                    "Dataset",
                    "Strategy",
                    "level1",
                    "level2",
                    "level3",
                    "level4",
                    "acc",
                    "Total",
                    "Error",
                    "Energy",
                    "Rollbacks",
                ],
                &rows,
            )
        );
    }
}
