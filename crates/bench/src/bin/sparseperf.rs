//! Sparse linear algebra harness: CSR identity proofs and graph-scale
//! workloads.
//!
//! Three claims, the first two as hard failures:
//!
//! 1. **Representation independence.** A [`CsrMatrix`] matvec is
//!    bit-identical *in values* to the same matrix applied densely, at
//!    every accuracy level — on the truncating datapath a stored zero
//!    behaves exactly like an absent entry, so sparsifying a matrix can
//!    never change a solve's trajectory. (Operation counts and energy
//!    legitimately differ: that is the entire point of sparsity.)
//! 2. **Kernel contract.** The branch-free `spmv_slice` override on
//!    [`QcsContext`] matches the scalar per-op path bit-for-bit in
//!    values, operation counts and metered energy ([`ScalarPath`] is
//!    the executable spec).
//! 3. **Graph scale.** Sparse CG solves a 100k-unknown Poisson system
//!    under the ApproxIt controller with quality within tolerance, and
//!    the personalized-PageRank push workload drains its residual
//!    queue. Wall clock is reported but never fails the job.
//!
//! Modes: default, `--full` (more repetitions/iterations), `--smoke`
//! (CI single-repetition; the 100k solve stays — it is the acceptance
//! workload and runs in release).

use std::process::ExitCode;
use std::time::{Duration, Instant};

use approx_arith::{
    AccuracyLevel, ArithContext, EnergyProfile, LowPartPolicy, QFormat, QcsAdder, QcsContext,
    ScalarPath,
};
use approx_linalg::{vector, CsrMatrix, LinearOperator};
use approxit::prelude::*;
use approxit_bench::cli::{BenchOpts, Checker};
use iter_solvers::datasets::ring_with_chords;
use iter_solvers::rng::Pcg32;
use iter_solvers::{ConjugateGradient, Jacobi, PersonalizedPageRank};
use parx::Executor;

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

/// The paper-default Q15.16 datapath at a given level.
fn q15_ctx(level: AccuracyLevel) -> QcsContext {
    let mut ctx = QcsContext::with_profile(profile());
    ctx.set_level(level);
    ctx
}

/// A Q31.32 datapath (64-bit words) for the graph-scale systems: a
/// 100k-term dot reduction overflows Q15.16's ±32768 integer range
/// (the products sum to ~10⁶), and unpreconditioned CG at condition
/// number ~4·10⁴ additionally needs a resolution far below Q.16's
/// 2⁻¹⁶ quantum to keep its search directions usable.
fn q31_ctx(level: AccuracyLevel) -> QcsContext {
    let adder = QcsAdder::with_policy(
        QFormat::Q31_32.width(),
        [36, 24, 12, 6],
        LowPartPolicy::Zero,
    );
    let mut ctx = QcsContext::new(adder, QFormat::Q31_32, profile());
    ctx.set_level(level);
    ctx
}

const LEVELS: [AccuracyLevel; 5] = [
    AccuracyLevel::Level1,
    AccuracyLevel::Level2,
    AccuracyLevel::Level3,
    AccuracyLevel::Level4,
    AccuracyLevel::Accurate,
];

/// A random sparse matrix with ~`density` stored entries, including
/// occasional explicitly stored zeros (they must behave like absent
/// entries on every datapath).
fn random_csr(rows: usize, cols: usize, density: f64, rng: &mut Pcg32) -> CsrMatrix {
    let mut triplets = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            if rng.next_f64() < density {
                let v = if rng.next_u32().is_multiple_of(8) {
                    0.0
                } else {
                    rng.uniform(-2.0, 2.0)
                };
                triplets.push((i, j, v));
            }
        }
        if triplets.last().is_none_or(|&(r, _, _)| r != i) {
            // Keep at least one stored entry per row so the row loop is
            // exercised everywhere.
            triplets.push((i, rng.below(cols as u64) as usize, 1.0));
        }
    }
    CsrMatrix::from_triplets(rows, cols, &triplets)
}

/// Hard identity: CSR apply vs dense apply, bit-for-bit in values, at
/// every accuracy level, on both matvecs and whole CG trajectories.
fn check_representation_independence(c: &mut Checker, seed: u64) {
    let mut rng = Pcg32::seeded(seed, 1);

    // Random sparsity patterns, single matvec per level.
    let mut matvec_ok = true;
    let mut pairs = 0;
    for case in 0..6 {
        let rows = 8 + (case * 7) % 30;
        let cols = 5 + (case * 11) % 30;
        let density = [0.05, 0.3, 0.9][case % 3];
        let sparse = random_csr(rows, cols, density, &mut rng);
        let dense = sparse.to_dense();
        let x: Vec<f64> = (0..cols).map(|_| rng.uniform(-3.0, 3.0)).collect();
        for level in LEVELS {
            let mut cs = q15_ctx(level);
            let mut cd = q15_ctx(level);
            let mut ys = vec![0.0; rows];
            let mut yd = vec![0.0; rows];
            sparse.apply(&mut cs, &x, &mut ys);
            dense.apply(&mut cd, &x, &mut yd);
            pairs += rows;
            matvec_ok &= ys.iter().zip(&yd).all(|(a, b)| a.to_bits() == b.to_bits());
        }
    }
    c.check(
        "CSR matvec bit-identical to dense at every accuracy level",
        matvec_ok,
        &format!("{pairs} output values across random sparsity patterns"),
    );

    // Whole CG trajectories on a Poisson stencil.
    let g = 14;
    let sparse = CsrMatrix::poisson5(g, g);
    let dense = sparse.to_dense();
    let b: Vec<f64> = (0..g * g).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let cgs = ConjugateGradient::new(sparse, b.clone(), 1e-12, 60);
    let cgd = ConjugateGradient::new(dense, b, 1e-12, 60);
    let mut traj_ok = true;
    for level in LEVELS {
        let mut cs = q15_ctx(level);
        let mut cd = q15_ctx(level);
        let mut ss = cgs.initial_state();
        let mut sd = cgd.initial_state();
        for _ in 0..25 {
            ss = cgs.step(&ss, &mut cs);
            sd = cgd.step(&sd, &mut cd);
            traj_ok &=
                ss.x.iter()
                    .zip(&sd.x)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
        }
    }
    c.check(
        "CG trajectories identical under dense and CSR operators",
        traj_ok,
        &format!("25 iterations x 5 levels on a {g}x{g} Poisson stencil"),
    );
}

/// Outcome of driving one method for a fixed iteration budget.
struct Drive {
    params: Vec<f64>,
    counts: approx_arith::OpCounts,
    energy: f64,
    elapsed: Duration,
}

fn drive<M: IterativeMethod, C: ArithContext>(method: &M, ctx: &mut C, iters: usize) -> Drive {
    ctx.reset_counters();
    let mut state = method.initial_state();
    let start = Instant::now();
    for _ in 0..iters {
        state = method.step(&state, ctx);
    }
    Drive {
        params: method.params(&state),
        counts: ctx.counts(),
        energy: ctx.total_energy(),
        elapsed: start.elapsed(),
    }
}

/// Hard contract check for the `spmv_slice` override (batched vs
/// [`ScalarPath`]), plus informational CSR-vs-dense wall clock.
fn check_kernel_contract(c: &mut Checker, grid: usize, iters: usize, reps: usize) -> String {
    let sparse = CsrMatrix::poisson5(grid, grid);
    let dense = sparse.to_dense();
    let b: Vec<f64> = (0..grid * grid).map(|i| 0.5 + 0.001 * i as f64).collect();
    let jac_sparse = Jacobi::new(sparse, b.clone(), 0.8, 1e-12, iters.max(2));
    let jac_dense = Jacobi::new(dense, b, 0.8, 1e-12, iters.max(2));

    let mut batched = drive(&jac_sparse, &mut q15_ctx(AccuracyLevel::Level2), iters);
    let mut scalar = drive(
        &jac_sparse,
        &mut ScalarPath::new(q15_ctx(AccuracyLevel::Level2)),
        iters,
    );
    c.check(
        "spmv_slice override bit-identical to the scalar per-op path",
        batched
            .params
            .iter()
            .zip(&scalar.params)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        &format!("{} unknowns, {iters} Jacobi sweeps", batched.params.len()),
    );
    c.check(
        "spmv_slice operation counts match exactly",
        batched.counts == scalar.counts,
        &format!(
            "{} adds, {} muls, {} divs",
            batched.counts.adds, batched.counts.muls, batched.counts.divs
        ),
    );
    c.check(
        "spmv_slice metered energy matches to the last bit",
        batched.energy.to_bits() == scalar.energy.to_bits(),
        &format!("{:.3e} units", batched.energy),
    );

    // Informational: sparse vs dense wall clock at identical values.
    let mut sparse_best = batched.elapsed;
    let mut dense_best = drive(&jac_dense, &mut q15_ctx(AccuracyLevel::Level2), iters).elapsed;
    let mut scalar_best = scalar.elapsed;
    for _ in 1..reps {
        batched = drive(&jac_sparse, &mut q15_ctx(AccuracyLevel::Level2), iters);
        scalar = drive(
            &jac_sparse,
            &mut ScalarPath::new(q15_ctx(AccuracyLevel::Level2)),
            iters,
        );
        sparse_best = sparse_best.min(batched.elapsed);
        scalar_best = scalar_best.min(scalar.elapsed);
        dense_best =
            dense_best.min(drive(&jac_dense, &mut q15_ctx(AccuracyLevel::Level2), iters).elapsed);
    }
    format!(
        "jacobi {0}x{0}: csr {1:.3}s (scalar-path {2:.3}s, {3:.1}x), dense {4:.3}s ({5:.1}x vs csr)",
        grid,
        sparse_best.as_secs_f64(),
        scalar_best.as_secs_f64(),
        scalar_best.as_secs_f64() / sparse_best.as_secs_f64(),
        dense_best.as_secs_f64(),
        dense_best.as_secs_f64() / sparse_best.as_secs_f64(),
    )
}

/// Time one micro-phase: the best of `reps` timed closure runs.
fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Informational per-phase breakdown of the CSR-vs-dense gap: where the
/// batched datapath spends its time — the matvec kernels themselves
/// (CSR and dense images of the same operator), the f64↔raw slice
/// conversions, and the dot reductions — so a CSR-vs-dense wall-clock
/// delta can be attributed to a phase rather than guessed at.
fn phase_breakdown(grid: usize, iters: usize, reps: usize) -> String {
    let sparse = CsrMatrix::poisson5(grid, grid);
    let dense = sparse.to_dense();
    let n = grid * grid;
    let mut rng = Pcg32::seeded(99, 5);
    let x: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let y: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let mut out = vec![0.0; n];

    let mut ctx = q15_ctx(AccuracyLevel::Level2);
    let spmv = best_of(reps, || {
        for _ in 0..iters {
            sparse.apply(&mut ctx, &x, &mut out);
        }
    });
    let matvec = best_of(reps, || {
        for _ in 0..iters {
            dense.apply(&mut ctx, &x, &mut out);
        }
    });
    let cv = ctx.format().converter();
    let mut raws = vec![0i64; n];
    let mut back = vec![0.0; n];
    let conversion = best_of(reps, || {
        for _ in 0..iters {
            cv.to_raw_slice(&x, &mut raws);
            cv.from_raw_slice(&raws, &mut back);
        }
    });
    let reduction = best_of(reps, || {
        for _ in 0..iters {
            let _ = ctx.dot_slice(&x, &y);
        }
    });
    format!(
        "phases {grid}x{grid} x{iters}: csr-matvec {:.1}ms, dense-matvec {:.1}ms, \
         conversion {:.1}ms, dot-reduction {:.1}ms",
        spmv.as_secs_f64() * 1e3,
        matvec.as_secs_f64() * 1e3,
        conversion.as_secs_f64() * 1e3,
        reduction.as_secs_f64() * 1e3,
    )
}

/// Thread-scaling on the acceptance workload: plain CG stepping on the
/// 100k-unknown Poisson system with the executor at 1 vs 4 workers.
/// The bit-identity of the two trajectories is a hard failure; the
/// wall-clock ratio is informational (it can only show a speedup on
/// multi-core hardware — single-core CI runs both serially).
fn check_thread_scaling(c: &mut Checker, nx: usize, iters: usize) -> String {
    let n = nx * nx;
    let a = CsrMatrix::poisson5(nx, nx);
    let mut rng = Pcg32::seeded(7, 3);
    let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let cg = ConjugateGradient::new(a, b, 1e-10, iters.max(2));

    let mut serial_ctx = q31_ctx(AccuracyLevel::Accurate).with_executor(Executor::with_threads(1));
    let serial = drive(&cg, &mut serial_ctx, iters);
    let mut par_ctx = q31_ctx(AccuracyLevel::Accurate).with_executor(Executor::with_threads(4));
    let parallel = drive(&cg, &mut par_ctx, iters);

    c.check(
        &format!("4-thread CG on the {n}-unknown system is bit-identical to 1-thread"),
        parallel
            .params
            .iter()
            .zip(&serial.params)
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && parallel.counts == serial.counts
            && parallel.energy.to_bits() == serial.energy.to_bits(),
        &format!("values, op counts and energy over {iters} iterations"),
    );
    format!(
        "cg n={n} x{iters}: 1 thread {:.2}s, 4 threads {:.2}s ({:.2}x, informational — \
         needs multi-core hardware to exceed 1.0)",
        serial.elapsed.as_secs_f64(),
        parallel.elapsed.as_secs_f64(),
        serial.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64().max(1e-9),
    )
}

/// The acceptance workload: sparse CG on a 100k-unknown Poisson system
/// under the ApproxIt controller, quality measured against a
/// manufactured solution.
fn check_graph_scale_cg(c: &mut Checker, nx: usize, char_iters: usize, seed: u64) -> String {
    let n = nx * nx;
    let a = CsrMatrix::poisson5(nx, nx);
    let mut rng = Pcg32::seeded(seed, 2);
    let truth: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let b = a.matvec_exact(&truth);
    // √κ ≈ 200 for the 317² stencil: ~530 exact iterations reach 1e-2
    // relative error, so the budget leaves headroom for approximation.
    let cg = ConjugateGradient::new(a, b, 1e-10, 900);

    let start = Instant::now();
    let table = characterize_on(&cg, &q31_ctx(AccuracyLevel::Accurate), char_iters);
    let char_time = start.elapsed();

    let mut ctx = q31_ctx(AccuracyLevel::Accurate);
    let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
    let start = Instant::now();
    let run = RunConfig::new(&cg, &mut ctx).execute(&mut strategy);
    let solve_time = start.elapsed();

    let err = vector::dist2_exact(&run.state.x, &truth);
    let scale = vector::norm2_exact(&truth);
    let rel = err / scale;
    // Tolerance 2.5e-2: about 3x the single-mode accurate Q31.32
    // quantization floor (~8e-3) on this system, leaving the adaptive
    // trajectory its exploration headroom.
    c.check(
        &format!("sparse CG solves the {n}-unknown Poisson system under the controller"),
        rel < 2.5e-2,
        &format!(
            "relative L2 error {rel:.2e} after {} iterations (steps {:?})",
            run.report.iterations, run.report.steps_per_level
        ),
    );
    format!(
        "cg n={n}: characterize {:.2}s, adaptive solve {:.2}s ({} iters, {:.1} iters/s)",
        char_time.as_secs_f64(),
        solve_time.as_secs_f64(),
        run.report.iterations,
        run.report.iterations as f64 / solve_time.as_secs_f64().max(1e-9),
    )
}

/// The PageRank push workload under the controller: the queue must
/// drain and the exact residual mass must sit under the push-threshold
/// bound.
fn check_pagerank(c: &mut Checker, nodes: usize, seed: u64) -> String {
    let graph = ring_with_chords(nodes, 3, seed);
    let eps = 1e-4;
    let ppr = PersonalizedPageRank::new(graph, 0, 0.15, eps, 2000);
    let table = characterize(&ppr, &profile(), 4);
    let mut ctx = QcsContext::with_profile(profile());
    let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
    let start = Instant::now();
    let run = RunConfig::new(&ppr, &mut ctx).execute(&mut strategy);
    let elapsed = start.elapsed();
    let mass = ppr.residual_mass(&run.state);
    let bound = eps * ppr.graph().nnz() as f64;
    c.check(
        &format!("pagerank push on {nodes} nodes drains under the controller"),
        run.state.active.is_empty() && mass <= bound,
        &format!(
            "residual mass {mass:.2e} (bound {bound:.2e}) after {} sweeps",
            run.report.iterations
        ),
    );
    format!(
        "pagerank n={nodes}: {:.2}s, {} sweeps, residual mass {mass:.2e}",
        elapsed.as_secs_f64(),
        run.report.iterations
    )
}

fn main() -> ExitCode {
    let opts = BenchOpts::parse();
    let full = opts.has_flag("--full");
    let smoke = opts.has_flag("--smoke") && !full;
    let seed = opts.seed_or(23);
    opts.say("sparseperf: CSR identity proofs, spmv kernel contract, graph-scale workloads");
    let mut c = Checker::new(opts.quiet);

    // Scales: Jacobi grid/iters/reps, CG grid side (317² = 100489
    // unknowns in every mode — the acceptance workload), PageRank
    // nodes, characterization iterations.
    let (jac_grid, jac_iters, reps, cg_nx, ppr_nodes, char_iters) = if smoke {
        (24, 40, 1, 317, 600, 3)
    } else if full {
        (48, 120, 5, 317, 4000, 6)
    } else {
        (32, 80, 3, 317, 2000, 4)
    };

    check_representation_independence(&mut c, seed);
    let jac_line = check_kernel_contract(&mut c, jac_grid, jac_iters, reps);
    let phase_line = phase_breakdown(jac_grid, jac_iters, reps);
    let scale_line = check_thread_scaling(&mut c, cg_nx, if smoke { 12 } else { 40 });
    let cg_line = check_graph_scale_cg(&mut c, cg_nx, char_iters, seed);
    let ppr_line = check_pagerank(&mut c, ppr_nodes, seed + 1);

    println!("\n  timings (informational):");
    for line in [&jac_line, &phase_line, &scale_line, &cg_line, &ppr_line] {
        println!("    {line}");
    }
    c.note(&format!(
        "{jac_line}; {phase_line}; {scale_line}; {cg_line}; {ppr_line}"
    ));
    c.finish("sparseperf", &opts)
}
