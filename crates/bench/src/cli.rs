//! Shared command-line plumbing for the bench binaries.
//!
//! Every binary accepts the same three housekeeping flags before its own
//! options:
//!
//! * `--seed N` — override the experiment's RNG seed (binaries that are
//!   fully deterministic ignore it);
//! * `--json PATH` — also write a machine-readable summary to `PATH`;
//! * `--quiet` / `-q` — suppress per-item progress lines, keeping only
//!   failures and the final summary.
//!
//! Binary-specific flags stay with the binary: [`BenchOpts`] strips the
//! shared flags and hands the remainder back via [`BenchOpts::rest`],
//! with [`BenchOpts::flag_value`] / [`BenchOpts::has_flag`] for the
//! common look-ups. [`Checker`] is the pass/fail accountant the
//! verification-style binaries (`verify`, `guarantee`, `perf`) share; it
//! honors `--quiet` and renders the `--json` summary.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The shared housekeeping options, plus the binary-specific remainder.
#[derive(Debug, Clone, Default)]
pub struct BenchOpts {
    /// `--seed N`, if given.
    pub seed: Option<u64>,
    /// `--json PATH`, if given.
    pub json: Option<PathBuf>,
    /// `--quiet` / `-q`.
    pub quiet: bool,
    rest: Vec<String>,
}

impl BenchOpts {
    /// Parse the process arguments, exiting with a usage message on a
    /// malformed shared flag.
    #[must_use]
    pub fn parse() -> Self {
        match Self::from_args(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list (testable form of
    /// [`parse`](Self::parse)).
    ///
    /// # Errors
    /// Returns a usage message when `--seed` or `--json` is missing its
    /// value, or `--seed` is not an unsigned integer.
    pub fn from_args<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let args: Vec<String> = args.into_iter().collect();
        let mut opts = Self::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    i += 1;
                    let value = args.get(i).ok_or("--seed requires a value")?;
                    opts.seed =
                        Some(value.parse().map_err(|_| {
                            format!("--seed expects an unsigned integer, got {value}")
                        })?);
                }
                "--json" => {
                    i += 1;
                    let value = args.get(i).ok_or("--json requires a path")?;
                    opts.json = Some(PathBuf::from(value));
                }
                "--quiet" | "-q" => opts.quiet = true,
                other => opts.rest.push(other.to_owned()),
            }
            i += 1;
        }
        Ok(opts)
    }

    /// The seed to use: `--seed` if given, else `default`.
    #[must_use]
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The arguments left after the shared flags were stripped.
    #[must_use]
    pub fn rest(&self) -> &[String] {
        &self.rest
    }

    /// Whether a bare binary-specific flag is present in [`rest`](Self::rest).
    #[must_use]
    pub fn has_flag(&self, name: &str) -> bool {
        self.rest.iter().any(|a| a == name)
    }

    /// The value following a binary-specific `--flag value` pair in
    /// [`rest`](Self::rest), if present.
    #[must_use]
    pub fn flag_value(&self, name: &str) -> Option<&str> {
        self.rest
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    /// Print a progress line unless `--quiet` was given.
    pub fn say(&self, message: &str) {
        if !self.quiet {
            println!("{message}");
        }
    }
}

/// A flat JSON value for the `--json` summaries (the workspace is
/// hermetic — no serde).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A float, rendered with full round-trip precision.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
}

impl JsonValue {
    fn render(&self, out: &mut String) {
        match self {
            Self::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Self::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Self::Num(n) if n.is_finite() => {
                let _ = write!(out, "{n:?}");
            }
            // JSON has no NaN/Inf literal.
            Self::Num(_) => out.push_str("null"),
            Self::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render a flat key → value map as a JSON object.
#[must_use]
pub fn render_json_object(entries: &[(&str, JsonValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        escape_into(key, &mut out);
        out.push_str("\": ");
        value.render(&mut out);
    }
    out.push_str("}\n");
    out
}

/// Pass/fail accounting with eager diagnostics, shared by the
/// verification-style binaries.
///
/// With `quiet`, passing checks stay silent; failures always print.
#[derive(Debug)]
pub struct Checker {
    passed: usize,
    failed: usize,
    quiet: bool,
    records: Vec<(String, bool, String)>,
}

impl Checker {
    /// A fresh checker; `quiet` suppresses the per-check `ok` lines.
    #[must_use]
    pub fn new(quiet: bool) -> Self {
        Self {
            passed: 0,
            failed: 0,
            quiet,
            records: Vec::new(),
        }
    }

    /// Record one check, printing its verdict.
    pub fn check(&mut self, name: &str, ok: bool, detail: &str) {
        let sep = if detail.is_empty() { "" } else { ": " };
        if ok {
            self.passed += 1;
            if !self.quiet {
                println!("  ok   {name}{sep}{detail}");
            }
        } else {
            self.failed += 1;
            println!("  FAIL {name}{sep}{detail}");
        }
        self.records.push((name.to_owned(), ok, detail.to_owned()));
    }

    /// Print an informational (non-check) line unless quiet.
    pub fn note(&self, message: &str) {
        if !self.quiet {
            println!("{message}");
        }
    }

    /// Checks that passed so far.
    #[must_use]
    pub fn passed(&self) -> usize {
        self.passed
    }

    /// Checks that failed so far.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.failed
    }

    /// The full summary as a JSON object (check list plus totals).
    #[must_use]
    pub fn to_json(&self, title: &str) -> String {
        let mut checks = String::from("[");
        for (i, (name, ok, detail)) in self.records.iter().enumerate() {
            if i > 0 {
                checks.push_str(", ");
            }
            let mut entry = String::from("{\"name\": ");
            JsonValue::Str(name.clone()).render(&mut entry);
            let _ = write!(entry, ", \"ok\": {ok}, \"detail\": ");
            JsonValue::Str(detail.clone()).render(&mut entry);
            entry.push('}');
            checks.push_str(&entry);
        }
        checks.push(']');
        let mut out = String::from("{");
        let _ = write!(out, "\"suite\": ");
        JsonValue::Str(title.to_owned()).render(&mut out);
        let _ = writeln!(
            out,
            ", \"passed\": {}, \"failed\": {}, \"checks\": {checks}}}",
            self.passed, self.failed
        );
        out
    }

    /// Write the JSON summary to `path`.
    ///
    /// # Errors
    /// Propagates the I/O error when the file cannot be written.
    pub fn write_json(&self, title: &str, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json(title))
    }

    /// Print the final tally, write the `--json` summary if requested,
    /// and convert the verdict to a process exit code.
    #[must_use]
    pub fn finish(self, title: &str, opts: &BenchOpts) -> ExitCode {
        println!("{title}: {} passed, {} failed", self.passed, self.failed);
        if let Some(path) = &opts.json {
            if let Err(error) = self.write_json(title, path) {
                eprintln!("{title}: could not write {}: {error}", path.display());
                return ExitCode::FAILURE;
            }
        }
        if self.failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn shared_flags_are_stripped_and_rest_preserved() {
        let opts = BenchOpts::from_args(args(&[
            "--part", "a", "--seed", "42", "--quiet", "--json", "out.json", "--csv",
        ]))
        .unwrap();
        assert_eq!(opts.seed, Some(42));
        assert!(opts.quiet);
        assert_eq!(opts.json.as_deref(), Some(Path::new("out.json")));
        assert_eq!(opts.rest(), &["--part", "a", "--csv"]);
        assert!(opts.has_flag("--csv"));
        assert_eq!(opts.flag_value("--part"), Some("a"));
        assert_eq!(opts.flag_value("--csv"), None);
        assert_eq!(opts.seed_or(7), 42);
    }

    #[test]
    fn defaults_are_empty() {
        let opts = BenchOpts::from_args(args(&[])).unwrap();
        assert_eq!(opts.seed, None);
        assert!(!opts.quiet);
        assert_eq!(opts.json, None);
        assert_eq!(opts.seed_or(7), 7);
        assert!(opts.rest().is_empty());
    }

    #[test]
    fn malformed_shared_flags_error() {
        assert!(BenchOpts::from_args(args(&["--seed"])).is_err());
        assert!(BenchOpts::from_args(args(&["--seed", "x"])).is_err());
        assert!(BenchOpts::from_args(args(&["--json"])).is_err());
    }

    #[test]
    fn checker_counts_and_serializes() {
        let mut c = Checker::new(true);
        c.check("alpha", true, "fine");
        c.check("beta", false, "broke \"here\"");
        assert_eq!(c.passed(), 1);
        assert_eq!(c.failed(), 1);
        let json = c.to_json("suite");
        assert!(json.contains("\"suite\": \"suite\""));
        assert!(json.contains("\"passed\": 1, \"failed\": 1"));
        assert!(json.contains("\\\"here\\\""));
    }

    #[test]
    fn json_objects_escape_and_render() {
        let text = render_json_object(&[
            ("name", JsonValue::Str("a\"b\n".into())),
            ("n", JsonValue::UInt(3)),
            ("x", JsonValue::Num(0.5)),
            ("bad", JsonValue::Num(f64::NAN)),
            ("ok", JsonValue::Bool(true)),
        ]);
        assert_eq!(
            text,
            "{\"name\": \"a\\\"b\\n\", \"n\": 3, \"x\": 0.5, \"bad\": null, \"ok\": true}\n"
        );
    }
}
