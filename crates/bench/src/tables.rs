//! Experiment executors producing the rows of Tables 3 and 4.

use approx_arith::{AccuracyLevel, QcsContext};
use approxit::{
    characterize, AdaptiveAngleStrategy, CharacterizationTable, IncrementalStrategy,
    ReconfigStrategy, RunConfig, RunReport, SingleMode,
};
use iter_solvers::metrics::{hamming_distance, l2_error};
use iter_solvers::IterativeMethod;

use crate::specs::{shared_profile, ArSpec, GmmSpec};

/// One row of a single-mode table (Tables 3(a) / 4(a)).
#[derive(Debug, Clone)]
pub struct SingleModeRow {
    /// Configuration label (`level1`…`level4`, `Truth`).
    pub configuration: String,
    /// Iterations until convergence, or `MAX_ITER`.
    pub iterations: usize,
    /// Whether the run converged within the budget.
    pub converged: bool,
    /// Quality evaluation metric against the Truth run (Hamming distance
    /// for GMM, coefficient ℓ2 error for AR).
    pub qem: f64,
    /// Approximate-part energy normalized to the Truth run.
    pub energy: f64,
}

/// One row of an online-reconfiguration table (Tables 3(b) / 4(b)).
#[derive(Debug, Clone)]
pub struct ReconfigRow {
    /// Dataset name.
    pub dataset: String,
    /// Strategy name.
    pub strategy: String,
    /// Steps spent at each level (level1..level4, acc).
    pub steps: [usize; 5],
    /// Total iterations.
    pub total: usize,
    /// QEM against the Truth run.
    pub error: f64,
    /// Approximate-part energy normalized to the Truth run.
    pub energy: f64,
    /// Rollbacks performed.
    pub rollbacks: usize,
}

fn level_label(level: AccuracyLevel) -> String {
    if level.is_accurate() {
        "Truth".to_owned()
    } else {
        level.to_string()
    }
}

/// Run every single-mode configuration of a method and score it with
/// `qem` against the Truth run's final state.
fn single_mode_rows<M, Q>(method: &M, qem: Q) -> Vec<SingleModeRow>
where
    M: IterativeMethod,
    Q: Fn(&M::State, &M::State) -> f64,
{
    let mut ctx = QcsContext::with_profile(shared_profile().clone());
    let truth = RunConfig::new(method, &mut ctx).execute(&mut SingleMode::accurate());
    AccuracyLevel::ALL
        .iter()
        .map(|&level| {
            let outcome = RunConfig::new(method, &mut ctx).execute(&mut SingleMode::new(level));
            SingleModeRow {
                configuration: level_label(level),
                iterations: outcome.report.iterations,
                converged: outcome.report.converged,
                qem: qem(&outcome.state, &truth.state),
                energy: outcome.report.normalized_energy(&truth.report),
            }
        })
        .collect()
}

/// Run the two reconfiguration strategies of a method.
fn reconfig_rows<M, Q>(
    method: &M,
    dataset: &str,
    table: &CharacterizationTable,
    update_period: usize,
    qem: Q,
) -> Vec<ReconfigRow>
where
    M: IterativeMethod,
    Q: Fn(&M::State, &M::State) -> f64,
{
    let mut ctx = QcsContext::with_profile(shared_profile().clone());
    let truth = RunConfig::new(method, &mut ctx).execute(&mut SingleMode::accurate());
    let mut strategies: Vec<Box<dyn ReconfigStrategy>> = vec![
        Box::new(IncrementalStrategy::from_characterization(table)),
        Box::new(AdaptiveAngleStrategy::from_characterization(
            table,
            update_period,
        )),
    ];
    strategies
        .iter_mut()
        .map(|strategy| {
            let outcome = RunConfig::new(method, &mut ctx).execute(strategy.as_mut());
            row_from_report(
                dataset,
                &outcome.report,
                qem(&outcome.state, &truth.state),
                &truth.report,
            )
        })
        .collect()
}

fn row_from_report(
    dataset: &str,
    report: &RunReport,
    error: f64,
    truth: &RunReport,
) -> ReconfigRow {
    ReconfigRow {
        dataset: dataset.to_owned(),
        strategy: report.strategy.clone(),
        steps: report.steps_per_level,
        total: report.iterations,
        error,
        energy: report.normalized_energy(truth),
        rollbacks: report.rollbacks,
    }
}

/// Table 3(a): GMM single-mode rows for one dataset. QEM is the Hamming
/// distance of the hard assignments against the Truth run's assignments.
#[must_use]
pub fn gmm_single_mode_rows(spec: &GmmSpec) -> Vec<SingleModeRow> {
    let gmm = spec.model();
    let k = spec.dataset.k;
    single_mode_rows(&gmm, |state, truth_state| {
        hamming_distance(&gmm.assignments(state), &gmm.assignments(truth_state), k) as f64
    })
}

/// Table 3(b): GMM reconfiguration rows for one dataset.
#[must_use]
pub fn gmm_reconfig_rows(spec: &GmmSpec, update_period: usize) -> Vec<ReconfigRow> {
    let gmm = spec.model();
    let k = spec.dataset.k;
    let table = characterize(&gmm, shared_profile(), 5);
    reconfig_rows(
        &gmm,
        spec.name(),
        &table,
        update_period,
        |state, truth_state| {
            hamming_distance(&gmm.assignments(state), &gmm.assignments(truth_state), k) as f64
        },
    )
}

/// Table 4(a): AR single-mode rows for one series. QEM is the ℓ2 error
/// of the fitted coefficients against the Truth run's coefficients.
#[must_use]
pub fn ar_single_mode_rows(spec: &ArSpec) -> Vec<SingleModeRow> {
    let ar = spec.model();
    single_mode_rows(&ar, |state, truth_state| l2_error(state, truth_state))
}

/// Table 4(b): AR reconfiguration rows for one series.
#[must_use]
pub fn ar_reconfig_rows(spec: &ArSpec, update_period: usize) -> Vec<ReconfigRow> {
    let ar = spec.model();
    let table = characterize(&ar, shared_profile(), 5);
    reconfig_rows(
        &ar,
        spec.name(),
        &table,
        update_period,
        |state, truth_state| l2_error(state, truth_state),
    )
}
