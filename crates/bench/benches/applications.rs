//! Application-level benchmarks: cost of one EM / gradient-descent
//! iteration on each datapath mode, and of the offline characterization.

use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, QcsContext};
use approxit::characterize;
use approxit_bench::harness::{black_box, Harness};
use iter_solvers::datasets::{ar_series, gaussian_blobs};
use iter_solvers::{AutoRegression, GaussianMixture, IterativeMethod};

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

fn main() {
    let h = Harness::from_args();

    let data = gaussian_blobs(
        "bench",
        &[100, 100, 100],
        &[vec![0.0, 0.0], vec![5.0, 1.0], vec![2.0, 4.5]],
        &[1.0, 1.0, 1.0],
        3,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 100, 5);
    let state = gmm.initial_state();
    for level in [AccuracyLevel::Level1, AccuracyLevel::Accurate] {
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(level);
        h.bench(&format!("gmm_step_300pts/{level}"), || {
            black_box(gmm.step(&state, &mut ctx))
        });
    }

    let series = ar_series("bench", 1010, &[0.4, 0.2], 1.0, 3);
    let ar = AutoRegression::from_series(&series, 0.2, 1e-12, 100);
    let ar_state = vec![0.1, 0.05];
    for level in [AccuracyLevel::Level2, AccuracyLevel::Accurate] {
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(level);
        h.bench(&format!("ar_step_1000pts/{level}"), || {
            black_box(ar.step(&ar_state, &mut ctx))
        });
    }

    let char_data = gaussian_blobs(
        "bench-char",
        &[50, 50],
        &[vec![0.0, 0.0], vec![6.0, 5.0]],
        &[1.0, 1.0],
        9,
    );
    let char_gmm = GaussianMixture::from_dataset(&char_data, 1e-7, 100, 5);
    h.bench("characterize/gmm_3iters", || {
        black_box(characterize(&char_gmm, &profile(), 3))
    });
}
