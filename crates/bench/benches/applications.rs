//! Application-level benchmarks: cost of one EM / gradient-descent
//! iteration on each datapath mode, and of the offline characterization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, QcsContext};
use approxit::characterize;
use iter_solvers::datasets::{ar_series, gaussian_blobs};
use iter_solvers::{AutoRegression, GaussianMixture, IterativeMethod};

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

fn bench_gmm_step(c: &mut Criterion) {
    let data = gaussian_blobs(
        "bench",
        &[100, 100, 100],
        &[vec![0.0, 0.0], vec![5.0, 1.0], vec![2.0, 4.5]],
        &[1.0, 1.0, 1.0],
        3,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 100, 5);
    let state = gmm.initial_state();
    let mut group = c.benchmark_group("gmm_step_300pts");
    for level in [AccuracyLevel::Level1, AccuracyLevel::Accurate] {
        group.bench_function(level.to_string(), |b| {
            let mut ctx = QcsContext::with_profile(profile());
            ctx.set_level(level);
            b.iter(|| black_box(gmm.step(&state, &mut ctx)))
        });
    }
    group.finish();
}

fn bench_ar_step(c: &mut Criterion) {
    let series = ar_series("bench", 1010, &[0.4, 0.2], 1.0, 3);
    let ar = AutoRegression::from_series(&series, 0.2, 1e-12, 100);
    let state = vec![0.1, 0.05];
    let mut group = c.benchmark_group("ar_step_1000pts");
    for level in [AccuracyLevel::Level2, AccuracyLevel::Accurate] {
        group.bench_function(level.to_string(), |b| {
            let mut ctx = QcsContext::with_profile(profile());
            ctx.set_level(level);
            b.iter(|| black_box(ar.step(&state, &mut ctx)))
        });
    }
    group.finish();
}

fn bench_characterization(c: &mut Criterion) {
    let data = gaussian_blobs(
        "bench-char",
        &[50, 50],
        &[vec![0.0, 0.0], vec![6.0, 5.0]],
        &[1.0, 1.0],
        9,
    );
    let gmm = GaussianMixture::from_dataset(&data, 1e-7, 100, 5);
    c.bench_function("characterize/gmm_3iters", |b| {
        b.iter(|| black_box(characterize(&gmm, &profile(), 3)))
    });
}

criterion_group!(
    benches,
    bench_gmm_step,
    bench_ar_step,
    bench_characterization
);
criterion_main!(benches);
