//! Microbenchmarks of the adder architectures: functional models vs
//! gate-level simulation.

use approx_arith::rng::Pcg32;
use approx_arith::{
    AccuracyLevel, Adder, EtaIiAdder, LowerOrAdder, LowerZeroAdder, QcsAdder, RippleCarryAdder,
    WindowedCarryAdder,
};
use approxit_bench::harness::{black_box, Harness};
use gatesim::Simulator;

fn operand_stream(n: usize) -> Vec<(u64, u64)> {
    let mut rng = Pcg32::seeded(0xBE7C, 0);
    (0..n).map(|_| (rng.next_u64(), rng.next_u64())).collect()
}

fn main() {
    let h = Harness::from_args();

    let ops = operand_stream(1024);
    let adders: Vec<(&str, Box<dyn Adder>)> = vec![
        ("rca32", Box::new(RippleCarryAdder::new(32))),
        ("loa32/k15", Box::new(LowerOrAdder::new(32, 15, false))),
        ("trunc32/k15", Box::new(LowerZeroAdder::new(32, 15))),
        ("etaii32/b8", Box::new(EtaIiAdder::new(32, 8))),
        ("aca32/l8", Box::new(WindowedCarryAdder::new(32, 8))),
    ];
    for (name, adder) in &adders {
        h.bench(&format!("functional_adders/{name}"), || {
            let mut acc = 0u64;
            for &(x, y) in &ops {
                acc ^= adder.add(black_box(x), black_box(y));
            }
            acc
        });
    }

    let sim_ops = operand_stream(64);
    for level in [AccuracyLevel::Level1, AccuracyLevel::Accurate] {
        let adder = QcsAdder::paper_default().at(level);
        let (netlist, ports) = adder.netlist();
        h.bench(&format!("netlist_simulation/qcs32/{level}"), || {
            let mut sim = Simulator::new(&netlist);
            for &(x, y) in &sim_ops {
                let out = sim
                    .evaluate(&ports.pack_operands(x, y, false))
                    .expect("valid inputs");
                black_box(out);
            }
            sim.total_toggles()
        });
    }
}
