//! Microbenchmarks of the adder architectures: functional models vs
//! gate-level simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use approx_arith::rng::Pcg32;
use approx_arith::{
    AccuracyLevel, Adder, EtaIiAdder, LowerOrAdder, LowerZeroAdder, QcsAdder, RippleCarryAdder,
    WindowedCarryAdder,
};
use gatesim::Simulator;

fn operand_stream(n: usize) -> Vec<(u64, u64)> {
    let mut rng = Pcg32::seeded(0xBE7C, 0);
    (0..n).map(|_| (rng.next_u64(), rng.next_u64())).collect()
}

fn bench_functional_adders(c: &mut Criterion) {
    let ops = operand_stream(1024);
    let adders: Vec<(&str, Box<dyn Adder>)> = vec![
        ("rca32", Box::new(RippleCarryAdder::new(32))),
        ("loa32/k15", Box::new(LowerOrAdder::new(32, 15, false))),
        ("trunc32/k15", Box::new(LowerZeroAdder::new(32, 15))),
        ("etaii32/b8", Box::new(EtaIiAdder::new(32, 8))),
        ("aca32/l8", Box::new(WindowedCarryAdder::new(32, 8))),
    ];
    let mut group = c.benchmark_group("functional_adders");
    for (name, adder) in &adders {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(x, y) in &ops {
                    acc ^= adder.add(black_box(x), black_box(y));
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_netlist_simulation(c: &mut Criterion) {
    let ops = operand_stream(64);
    let mut group = c.benchmark_group("netlist_simulation");
    for level in [AccuracyLevel::Level1, AccuracyLevel::Accurate] {
        let adder = QcsAdder::paper_default().at(level);
        let (netlist, ports) = adder.netlist();
        group.bench_function(format!("qcs32/{level}"), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(&netlist);
                for &(x, y) in &ops {
                    let out = sim
                        .evaluate(&ports.pack_operands(x, y, false))
                        .expect("valid inputs");
                    black_box(out);
                }
                sim.total_toggles()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_functional_adders, bench_netlist_simulation);
criterion_main!(benches);
