//! Overhead of the reconfiguration strategies — quantifying the paper's
//! claim that the extra computation of online reconfiguration is
//! negligible.

use approx_arith::AccuracyLevel;
use approxit::lp::solve_effort_allocation;
use approxit::{
    AdaptiveAngleStrategy, IncrementalStrategy, IterationObservation, PidStrategy, ReconfigStrategy,
};
use approxit_bench::harness::{black_box, Harness};

const EPS: [f64; 5] = [0.5, 0.2, 0.05, 0.01, 0.0];
const J: [f64; 5] = [0.46, 0.59, 0.73, 0.86, 1.0];

fn observation<'a>(
    params_prev: &'a [f64],
    params_curr: &'a [f64],
    grad: &'a [f64],
) -> IterationObservation<'a> {
    IterationObservation {
        iteration: 10,
        level: AccuracyLevel::Level2,
        objective_prev: 1.0,
        objective_curr: 0.95,
        params_prev,
        params_curr,
        gradient_prev: Some(grad),
        gradient_curr: Some(grad),
        initial_gradient_norm: 10.0,
    }
}

fn main() {
    let h = Harness::from_args();

    let params_prev: Vec<f64> = (0..64).map(|i| f64::from(i) * 0.1).collect();
    let params_curr: Vec<f64> = (0..64).map(|i| f64::from(i) * 0.1 + 0.01).collect();
    let grad: Vec<f64> = (0..64).map(|i| -f64::from(i) * 0.01).collect();

    let mut incremental = IncrementalStrategy::new(EPS);
    h.bench("decide/incremental", || {
        black_box(incremental.decide(&observation(&params_prev, &params_curr, &grad)))
    });

    let mut adaptive = AdaptiveAngleStrategy::new(EPS, J, 0.2, 1);
    h.bench("decide/adaptive_f1", || {
        black_box(adaptive.decide(&observation(&params_prev, &params_curr, &grad)))
    });

    let mut pid = PidStrategy::default();
    h.bench("decide/pid", || {
        black_box(pid.decide(&observation(&params_prev, &params_curr, &grad)))
    });

    h.bench("lp/solve_effort_allocation", || {
        black_box(solve_effort_allocation(&J, &EPS, black_box(0.07)))
    });
}
