//! Overhead of the reconfiguration strategies — quantifying the paper's
//! claim that the extra computation of online reconfiguration is
//! negligible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use approx_arith::AccuracyLevel;
use approxit::lp::solve_effort_allocation;
use approxit::{
    AdaptiveAngleStrategy, IncrementalStrategy, IterationObservation, PidStrategy, ReconfigStrategy,
};

const EPS: [f64; 5] = [0.5, 0.2, 0.05, 0.01, 0.0];
const J: [f64; 5] = [0.46, 0.59, 0.73, 0.86, 1.0];

fn observation<'a>(
    params_prev: &'a [f64],
    params_curr: &'a [f64],
    grad: &'a [f64],
) -> IterationObservation<'a> {
    IterationObservation {
        iteration: 10,
        level: AccuracyLevel::Level2,
        objective_prev: 1.0,
        objective_curr: 0.95,
        params_prev,
        params_curr,
        gradient_prev: Some(grad),
        gradient_curr: Some(grad),
        initial_gradient_norm: 10.0,
    }
}

fn bench_decide(c: &mut Criterion) {
    let params_prev: Vec<f64> = (0..64).map(|i| f64::from(i) * 0.1).collect();
    let params_curr: Vec<f64> = (0..64).map(|i| f64::from(i) * 0.1 + 0.01).collect();
    let grad: Vec<f64> = (0..64).map(|i| -f64::from(i) * 0.01).collect();

    c.bench_function("decide/incremental", |b| {
        let mut s = IncrementalStrategy::new(EPS);
        b.iter(|| black_box(s.decide(&observation(&params_prev, &params_curr, &grad))))
    });

    c.bench_function("decide/adaptive_f1", |b| {
        let mut s = AdaptiveAngleStrategy::new(EPS, J, 0.2, 1);
        b.iter(|| black_box(s.decide(&observation(&params_prev, &params_curr, &grad))))
    });

    c.bench_function("decide/pid", |b| {
        let mut s = PidStrategy::default();
        b.iter(|| black_box(s.decide(&observation(&params_prev, &params_curr, &grad))))
    });
}

fn bench_lp(c: &mut Criterion) {
    c.bench_function("lp/solve_effort_allocation", |b| {
        b.iter(|| black_box(solve_effort_allocation(&J, &EPS, black_box(0.07))))
    });
}

criterion_group!(benches, bench_decide, bench_lp);
criterion_main!(benches);
