//! Microbenchmarks of the fixed-point datapath and the arithmetic
//! contexts.

use approx_arith::rng::Pcg32;
use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, QFormat, QcsContext};
use approxit_bench::harness::{black_box, Harness};

fn values(n: usize) -> Vec<f64> {
    let mut rng = Pcg32::seeded(0xF1D0, 0);
    (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect()
}

fn main() {
    let h = Harness::from_args();

    let xs = values(1024);
    let q = QFormat::Q15_16;
    h.bench("qformat/round_trip", || {
        let mut acc = 0.0;
        for &x in &xs {
            acc += q.quantize(black_box(x));
        }
        acc
    });

    let raws: Vec<i64> = xs.iter().map(|&x| q.to_raw(x)).collect();
    h.bench("qformat/mul_raw", || {
        let mut acc = 0i64;
        for w in raws.windows(2) {
            acc ^= q.mul_raw(black_box(w[0]), black_box(w[1]));
        }
        acc
    });

    let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
    for level in [
        AccuracyLevel::Level1,
        AccuracyLevel::Level4,
        AccuracyLevel::Accurate,
    ] {
        let mut ctx = QcsContext::with_profile(profile.clone());
        ctx.set_level(level);
        h.bench(&format!("context_add/{level}"), || {
            let mut acc = 0.0;
            for &x in &xs {
                acc = ctx.add(black_box(acc), black_box(x));
            }
            acc
        });
    }

    let mut ctx = QcsContext::with_profile(profile);
    ctx.set_level(AccuracyLevel::Level3);
    let x: Vec<f64> = xs[..64].to_vec();
    let y: Vec<f64> = xs[64..128].to_vec();
    h.bench("context_dot/len64", || {
        ctx.dot(black_box(&x), black_box(&y))
    });
}
