//! Microbenchmarks of the fixed-point datapath and the arithmetic
//! contexts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use approx_arith::rng::Pcg32;
use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, QFormat, QcsContext};

fn values(n: usize) -> Vec<f64> {
    let mut rng = Pcg32::seeded(0xF1D0, 0);
    (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect()
}

fn bench_qformat(c: &mut Criterion) {
    let xs = values(1024);
    let q = QFormat::Q15_16;
    c.bench_function("qformat/round_trip", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &xs {
                acc += q.quantize(black_box(x));
            }
            acc
        })
    });
    c.bench_function("qformat/mul_raw", |b| {
        let raws: Vec<i64> = xs.iter().map(|&x| q.to_raw(x)).collect();
        b.iter(|| {
            let mut acc = 0i64;
            for w in raws.windows(2) {
                acc ^= q.mul_raw(black_box(w[0]), black_box(w[1]));
            }
            acc
        })
    });
}

fn bench_context_ops(c: &mut Criterion) {
    let xs = values(1024);
    let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
    let mut group = c.benchmark_group("context_add");
    for level in [
        AccuracyLevel::Level1,
        AccuracyLevel::Level4,
        AccuracyLevel::Accurate,
    ] {
        group.bench_function(level.to_string(), |b| {
            let mut ctx = QcsContext::with_profile(profile.clone());
            ctx.set_level(level);
            b.iter(|| {
                let mut acc = 0.0;
                for &x in &xs {
                    acc = ctx.add(black_box(acc), black_box(x));
                }
                acc
            })
        });
    }
    group.finish();

    c.bench_function("context_dot/len64", |b| {
        let mut ctx = QcsContext::with_profile(profile.clone());
        ctx.set_level(AccuracyLevel::Level3);
        let x = &xs[..64];
        let y = &xs[64..128];
        b.iter(|| ctx.dot(black_box(x), black_box(y)))
    });
}

criterion_group!(benches, bench_qformat, bench_context_ops);
criterion_main!(benches);
