//! Static contraction factors of the benchmark iteration maps.
//!
//! The quality guarantee needs more than a per-iteration error bound:
//! injected error *compounds* across iterations, and the compounded
//! total only stays finite when the exact iteration map is a
//! contraction. This module derives per-solver contraction factors `ρ`
//! statically — from the problem data, before any simulation — so they
//! can be combined with the per-iteration injected bounds of
//! [`approx_arith::errorprop`] into an [`ErrorRecurrence`] whose steady
//! state `δ/(1−ρ)` is the static quality guarantee.
//!
//! Derivations, in the same assume-guarantee style as
//! [`crate::ranges`]:
//!
//! * **CG** — eigenvalue bounds of the system matrix by Gershgorin
//!   discs; if they certify positive-definiteness, the classical
//!   Chebyshev bound `ρ = (√κ−1)/(√κ+1)` on the condition number bound
//!   `κ ≤ λmax/λmin` holds for the energy-norm error.
//! * **AR gradient descent** — the error iterates *exactly* under
//!   `e' = (I − (α/N)·XᵀX)·e`; Gershgorin on the (computed) Gram matrix
//!   bounds that matrix's spectrum, hence its 2-norm.
//! * **GMM EM** — EM's local rate depends on cluster overlap, which no
//!   cheap static argument bounds; the factor is *declared* and the
//!   declaration is validated against measured trajectories (the same
//!   contract the range models use for iterate bounds).

use approx_arith::errorprop::{propagate_error, ErrorRecurrence};
use approx_arith::range::RangeConfig;
use approx_linalg::{LinearOperator, Matrix};

use crate::autoreg::AutoRegression;
use crate::cg::ConjugateGradient;
use crate::gmm::GaussianMixture;
use crate::ranges::RangeModel;

/// A statically derived (or declared) contraction factor for one
/// solver's iteration map, with the derivation spelled out.
#[derive(Debug, Clone)]
pub struct ContractionReport {
    name: String,
    factor: f64,
    notes: Vec<String>,
}

impl ContractionReport {
    /// Solver the factor belongs to.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The contraction factor `ρ`. A value `≥ 1` means the analysis
    /// could not certify contraction (the notes say why).
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// `true` when the map was certified (or declared) contracting.
    #[must_use]
    pub fn is_contracting(&self) -> bool {
        self.factor < 1.0
    }

    /// How the factor was obtained and what it is conditioned on.
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Combine with a per-iteration injected error bound `δ` into the
    /// error recurrence `e' ≤ ρ·e + δ`.
    #[must_use]
    pub fn recurrence(&self, injected: f64) -> ErrorRecurrence {
        ErrorRecurrence::new(self.factor, injected)
    }
}

impl std::fmt::Display for ContractionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: rho = {:.6}", self.name, self.factor)
    }
}

/// Gershgorin disc bounds on the spectrum of a symmetric operator:
/// every eigenvalue lies in `[lo, hi]` where each row contributes the
/// disc `center a_ii`, `radius Σ_{j≠i} |a_ij|` — both read through the
/// [`LinearOperator`] structural probes, so the certificate works
/// unchanged for dense and sparse systems.
fn gershgorin<A: LinearOperator>(m: &A) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (diag, off) in m.diagonal().iter().zip(m.off_diagonal_abs_row_sums()) {
        lo = lo.min(diag - off);
        hi = hi.max(diag + off);
    }
    (lo, hi)
}

/// Contraction factor of CG's energy-norm error from Gershgorin bounds
/// on the system matrix: `κ ≤ λmax/λmin` gives the Chebyshev rate
/// `ρ = (√κ−1)/(√κ+1)` per iteration. If the discs do not certify
/// `λmin > 0`, the factor is reported as `1.0` (no static certificate —
/// CG may still converge, but this analysis cannot prove it).
#[must_use]
pub fn cg_contraction<A: LinearOperator>(cg: &ConjugateGradient<A>) -> ContractionReport {
    let (lmin, lmax) = gershgorin(cg.operator());
    let name = format!("conjugate-gradient(n={})", cg.order());
    if lmin <= 0.0 {
        return ContractionReport {
            name,
            factor: 1.0,
            notes: vec![format!(
                "Gershgorin discs give lambda in [{lmin:.4}, {lmax:.4}]: positive-definiteness \
                 not certified, no static contraction factor"
            )],
        };
    }
    let kappa = lmax / lmin;
    let s = kappa.sqrt();
    let factor = (s - 1.0) / (s + 1.0);
    ContractionReport {
        name,
        factor,
        notes: vec![
            format!("Gershgorin: lambda in [{lmin:.4}, {lmax:.4}], kappa <= {kappa:.4}"),
            format!(
                "Chebyshev bound on the A-norm error: rho = (sqrt(kappa)-1)/(sqrt(kappa)+1) \
                 = {factor:.6}"
            ),
        ],
    }
}

/// Contraction factor of AR gradient descent. The coefficient error
/// iterates exactly under `e' = M·e` with `M = I − (α/N)·XᵀX`, so
/// `ρ = ‖M‖₂ = max |eig(M)|`, bounded via Gershgorin on the Gram
/// matrix (clamped below at 0: `XᵀX` is positive semi-definite
/// regardless of what the discs say).
#[must_use]
pub fn ar_contraction(ar: &AutoRegression) -> ContractionReport {
    let p = ar.order();
    let n = ar.num_samples();
    let rows = ar.design_matrix();
    let mut gram = Matrix::zeros(p, p);
    for row in rows {
        for j in 0..p {
            for k in 0..p {
                gram[(j, k)] += row[j] * row[k];
            }
        }
    }
    let (glo, ghi) = gershgorin(&gram);
    let glo = glo.max(0.0);
    let a = ar.step_size() / n as f64;
    let name = format!("autoregression(p={p}, N={n})");
    // eig(M) ranges over [1 − a·ghi, 1 − a·glo].
    let factor = (1.0 - a * ghi).abs().max((1.0 - a * glo).abs());
    let mut notes = vec![
        format!("error map is exactly linear: e' = (I - (alpha/N) X^T X) e"),
        format!(
            "Gershgorin on the Gram matrix: lambda in [{glo:.4}, {ghi:.4}], \
             step alpha/N = {a:.6}, rho = {factor:.6}"
        ),
    ];
    if factor >= 1.0 {
        notes.push(
            "discs do not separate the Gram spectrum from 0 (or the step overshoots): \
             no static contraction certificate"
                .into(),
        );
    }
    ContractionReport {
        name,
        factor,
        notes,
    }
}

/// Declared contraction factor for GMM EM's mean updates.
///
/// EM's local convergence rate is governed by the fraction of missing
/// information — a quantity tied to cluster overlap that static
/// analysis of the datapath cannot bound. Like the iterate bounds of
/// [`crate::ranges`], the factor is an assume-guarantee *declaration*:
/// this function records it with its justification, and the test suite
/// (plus the `guarantee` bench binary) validates it against measured
/// update trajectories on the benchmark datasets.
#[must_use]
pub fn gmm_contraction(gmm: &GaussianMixture, declared_factor: f64) -> ContractionReport {
    assert!(
        declared_factor > 0.0 && declared_factor.is_finite(),
        "declared factor must be positive and finite"
    );
    ContractionReport {
        name: format!("gmm-em(m={}, k={})", gmm.points().len(), gmm.k()),
        factor: declared_factor,
        notes: vec![format!(
            "declared: EM rate = fraction of missing information, not statically \
             derivable; declaration rho <= {declared_factor} is validated against \
             measured update trajectories on well-separated benchmark blobs"
        )],
    }
}

/// Per-iteration injected error bound `δ` of a solver datapath: the
/// worst error-propagation bound over the model's next-state outputs,
/// i.e. the most error one iteration on the `approx` datapath can add
/// relative to the `exact` one from identical inputs.
#[must_use]
pub fn injected_error_bound(model: &RangeModel, approx: &RangeConfig, exact: &RangeConfig) -> f64 {
    let report = propagate_error(model.graph(), approx, exact);
    model
        .outputs()
        .iter()
        .map(|&id| report.bound(id))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{EnergyProfile, ExactContext, QFormat};

    use crate::datasets;
    use crate::method::IterativeMethod;
    use crate::ranges::{ar_range_model, ArRangeSpec};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn cg_system(n: usize) -> ConjugateGradient {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 4.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
        ConjugateGradient::new(a, b, 1e-12, 100)
    }

    #[test]
    fn cg_tridiagonal_matches_the_closed_form() {
        // Discs: diag 4, off-diagonal sum <= 2 → lambda in [2, 6],
        // kappa <= 3, rho = (sqrt 3 - 1)/(sqrt 3 + 1).
        let report = cg_contraction(&cg_system(10));
        let expected = (3f64.sqrt() - 1.0) / (3f64.sqrt() + 1.0);
        assert!((report.factor() - expected).abs() < 1e-12);
        assert!(report.is_contracting());
        assert!(report.notes()[0].contains("kappa"));
    }

    #[test]
    fn cg_without_diagonal_dominance_is_not_certified() {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a[(i, i)] = 1.0;
        }
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        let cg = ConjugateGradient::new(a, vec![1.0; 3], 1e-12, 10);
        let report = cg_contraction(&cg);
        assert!(!report.is_contracting());
        assert!(report.notes()[0].contains("not certified"));
    }

    #[test]
    fn cg_observed_error_reduction_beats_the_static_rate() {
        // The Chebyshev factor bounds the A-norm error rate; CG in
        // floating point on a well-conditioned system converges at
        // least that fast. Compare ||x_k - x*||_2 reduction over 10
        // iterations against factor^10 (norm equivalence costs at most
        // sqrt(kappa) <= sqrt(3), far below the headroom here).
        let cg = cg_system(10);
        let report = cg_contraction(&cg);
        let x_star = {
            // Converge fully in exact arithmetic as reference.
            let mut ctx = ExactContext::with_profile(profile());
            let mut s = cg.initial_state();
            for _ in 0..60 {
                s = cg.step(&s, &mut ctx);
            }
            s.x.clone()
        };
        let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let mut ctx = ExactContext::with_profile(profile());
        let s0 = cg.initial_state();
        let e0 = norm(
            &s0.x
                .iter()
                .zip(&x_star)
                .map(|(a, b)| a - b)
                .collect::<Vec<_>>(),
        );
        let mut s = s0;
        for _ in 0..10 {
            s = cg.step(&s, &mut ctx);
        }
        let e10 = norm(
            &s.x.iter()
                .zip(&x_star)
                .map(|(a, b)| a - b)
                .collect::<Vec<_>>(),
        );
        let budget = report.factor().powi(10) * e0 * 3f64.sqrt() + 1e-9;
        assert!(e10 <= budget, "e10 = {e10}, static budget {budget}");
    }

    #[test]
    fn ar_gradient_descent_contracts_at_the_derived_rate() {
        let series = datasets::ar_series("contraction", 400, &[0.6, 0.2], 1.0, 3);
        let ar = AutoRegression::from_series(&series, 0.5, 1e-10, 500);
        let report = ar_contraction(&ar);
        assert!(report.is_contracting(), "{report}");

        // The coefficient error shrinks by at least the factor every
        // step (the error map is exactly linear with 2-norm <= rho).
        let w_star = ar.normal_equation_solution();
        let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let mut ctx = ExactContext::with_profile(profile());
        let mut w = ar.initial_state();
        let mut prev_err = norm(
            &w.iter()
                .zip(&w_star)
                .map(|(a, b)| a - b)
                .collect::<Vec<_>>(),
        );
        for _ in 0..30 {
            w = ar.step(&w, &mut ctx);
            let err = norm(
                &w.iter()
                    .zip(&w_star)
                    .map(|(a, b)| a - b)
                    .collect::<Vec<_>>(),
            );
            assert!(
                err <= report.factor() * prev_err + 1e-6,
                "step error {err} exceeds rho * {prev_err}"
            );
            prev_err = err;
        }
    }

    #[test]
    fn gmm_declared_factor_dominates_measured_update_ratios() {
        let dataset = datasets::gaussian_blobs(
            "contraction",
            &[30, 30],
            &[vec![0.0, 0.0], vec![6.0, 6.0]],
            &[0.6, 0.6],
            1,
        );
        let gmm = GaussianMixture::from_dataset(&dataset, 1e-9, 100, 7);
        let report = gmm_contraction(&gmm, 0.9);
        let mut ctx = ExactContext::with_profile(profile());
        let mut prev = gmm.initial_state();
        let mut prev_update: Option<f64> = None;
        for _ in 0..25 {
            let next = gmm.step(&prev, &mut ctx);
            let update: f64 = next
                .means
                .iter()
                .flatten()
                .zip(prev.means.iter().flatten())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if let Some(p) = prev_update {
                if p > 1e-8 {
                    assert!(
                        update <= report.factor() * p + 1e-9,
                        "update ratio {} exceeds declared {}",
                        update / p,
                        report.factor()
                    );
                }
            }
            prev_update = Some(update);
            prev = next;
        }
    }

    #[test]
    fn injected_bound_is_positive_and_grows_with_slack() {
        let series = datasets::ar_series("contraction", 400, &[0.6, 0.2], 1.0, 3);
        let ar = AutoRegression::from_series(&series, 0.5, 1e-10, 500);
        let model = ar_range_model(&ar, &ArRangeSpec::default());
        let exact = RangeConfig::exact(QFormat::Q15_16);
        let loose = RangeConfig {
            add_slack: 0.01,
            ..exact
        };
        let tight_bound = injected_error_bound(&model, &exact, &exact);
        let loose_bound = injected_error_bound(&model, &loose, &exact);
        assert!(tight_bound > 0.0);
        assert!(loose_bound > tight_bound);
    }
}
