//! Newton's method as an [`IterativeMethod`].

use approx_arith::ArithContext;
use approx_linalg::{decomp, vector};

use crate::functions::Objective;
use crate::method::IterativeMethod;

/// Damped Newton's method `x^{k+1} = x^k − α (∇²f)⁻¹ ∇f`.
///
/// The direction solve `(∇²f) d = ∇f` is an error-sensitive kernel and
/// runs exactly; the parameter *update* runs on the arithmetic context
/// (the paper's "update error"). If the Hessian solve fails (singular or
/// unavailable), the step falls back to plain gradient descent with the
/// same damping — the recovery behaviour a robust implementation needs.
#[derive(Debug, Clone)]
pub struct NewtonMethod<O> {
    objective: O,
    x0: Vec<f64>,
    damping: f64,
    tolerance: f64,
    max_iterations: usize,
}

impl<O: Objective> NewtonMethod<O> {
    /// Create a solver.
    ///
    /// # Panics
    /// Panics if `x0` does not match the objective's dimension, `damping`
    /// is not in `(0, 1]`, the tolerance is not positive, or
    /// `max_iterations` is 0.
    #[must_use]
    pub fn new(
        objective: O,
        x0: Vec<f64>,
        damping: f64,
        tolerance: f64,
        max_iterations: usize,
    ) -> Self {
        assert_eq!(x0.len(), objective.dim(), "x0 must match objective dim");
        assert!(damping > 0.0 && damping <= 1.0, "damping must be in (0, 1]");
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        Self {
            objective,
            x0,
            damping,
            tolerance,
            max_iterations,
        }
    }
}

impl<O: Objective> IterativeMethod for NewtonMethod<O> {
    type State = Vec<f64>;

    fn name(&self) -> &str {
        "newton"
    }

    fn initial_state(&self) -> Vec<f64> {
        self.x0.clone()
    }

    fn step(&self, state: &Vec<f64>, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let g = self.objective.gradient(state);
        let direction = self
            .objective
            .hessian(state)
            .and_then(|h| decomp::solve(&h, &g).ok())
            .unwrap_or_else(|| g.clone());
        // Update on the (possibly approximate) datapath.
        vector::axpy(ctx, -self.damping, &direction, state)
    }

    fn objective(&self, state: &Vec<f64>) -> f64 {
        self.objective.value(state)
    }

    fn gradient(&self, state: &Vec<f64>) -> Option<Vec<f64>> {
        Some(self.objective.gradient(state))
    }

    fn params(&self, state: &Vec<f64>) -> Vec<f64> {
        state.clone()
    }

    fn converged(&self, prev: &Vec<f64>, next: &Vec<f64>) -> bool {
        vector::dist2_exact(prev, next) < self.tolerance
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{Quadratic, Rosenbrock};
    use approx_arith::{EnergyProfile, ExactContext};
    use approx_linalg::Matrix;

    fn ctx() -> ExactContext {
        ExactContext::with_profile(EnergyProfile::from_constants(
            [1.0, 2.0, 3.0, 4.0, 5.0],
            50.0,
            100.0,
        ))
    }

    fn run<M: IterativeMethod>(m: &M, ctx: &mut dyn ArithContext) -> (M::State, usize) {
        let mut state = m.initial_state();
        for i in 0..m.max_iterations() {
            let next = m.step(&state, ctx);
            let done = m.converged(&state, &next);
            state = next;
            if done {
                return (state, i + 1);
            }
        }
        (state, m.max_iterations())
    }

    #[test]
    fn newton_solves_quadratic_in_one_undamped_step() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let q = Quadratic::new(a, vec![1.0, 4.0]);
        let want = q.minimizer();
        let newton = NewtonMethod::new(q, vec![10.0, -10.0], 1.0, 1e-12, 10);
        let mut c = ctx();
        let x1 = newton.step(&newton.initial_state(), &mut c);
        assert!(vector::dist2_exact(&x1, &want) < 1e-10);
    }

    #[test]
    fn newton_beats_gd_on_rosenbrock_iterations() {
        let newton = NewtonMethod::new(Rosenbrock::new(2), vec![-0.5, 0.5], 1.0, 1e-12, 200);
        let mut c = ctx();
        let (x, iters) = run(&newton, &mut c);
        assert!(iters < 100, "newton took {iters} iterations");
        assert!(vector::dist2_exact(&x, &[1.0, 1.0]) < 1e-6);
    }

    #[test]
    fn falls_back_to_gradient_when_hessian_missing() {
        // An objective without a Hessian.
        struct NoHess;
        impl Objective for NoHess {
            fn dim(&self) -> usize {
                1
            }
            fn value(&self, x: &[f64]) -> f64 {
                x[0] * x[0]
            }
            fn gradient(&self, x: &[f64]) -> Vec<f64> {
                vec![2.0 * x[0]]
            }
        }
        let newton = NewtonMethod::new(NoHess, vec![1.0], 0.25, 1e-12, 100);
        let mut c = ctx();
        let (x, _) = run(&newton, &mut c);
        assert!(x[0].abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "damping must be in")]
    fn zero_damping_panics() {
        let q = Quadratic::new(Matrix::identity(1), vec![0.0]);
        let _ = NewtonMethod::new(q, vec![0.0], 0.0, 1e-9, 10);
    }
}
