//! Static range models of the benchmark datapaths.
//!
//! Each function here transcribes one solver's per-iteration arithmetic
//! into a [`RangeGraph`] over *declared* input ranges, so the analyzer
//! in [`approx_arith::range`] can prove — before any simulation — that
//! the fixed-point datapath cannot overflow or saturate.
//!
//! Two kinds of bounds feed the graphs:
//!
//! * **data bounds** read directly from the problem instance (matrix
//!   entries, regression rows, sample coordinates) — these are facts;
//! * **declared bounds** on quantities a static analysis cannot derive
//!   (iterate norms, CG's α/β, GMM's effective cluster weight) — these
//!   are assumptions in the assume-guarantee sense, and every model
//!   records them in its [`RangeModel::notes`] so a report can show
//!   exactly what the proof is conditioned on.

use approx_arith::range::{ExprId, RangeConfig, RangeGraph, RangeReport};
use approx_linalg::LinearOperator;

use crate::autoreg::AutoRegression;
use crate::cg::ConjugateGradient;
use crate::gmm::GaussianMixture;

/// A solver datapath transcribed for range analysis: the expression
/// graph plus the assumptions its proof is conditioned on.
#[derive(Debug, Clone)]
pub struct RangeModel {
    name: String,
    graph: RangeGraph,
    notes: Vec<String>,
    /// The next-state expressions of the iteration map — the values the
    /// solver carries into the following iteration. Error injected into
    /// these is what compounds across iterations, so the contraction
    /// analysis reads its per-iteration injected bound here.
    outputs: Vec<ExprId>,
}

impl RangeModel {
    /// Solver name the model describes.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expression graph (for direct inspection of node bounds).
    #[must_use]
    pub fn graph(&self) -> &RangeGraph {
        &self.graph
    }

    /// The declared assumptions the proof relies on.
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// The next-state expressions of the iteration map (see the field
    /// doc on [`RangeModel`]).
    #[must_use]
    pub fn outputs(&self) -> &[ExprId] {
        &self.outputs
    }

    /// Analyze the model under a per-operation error configuration.
    #[must_use]
    pub fn analyze(&self, config: &RangeConfig) -> RangeReport {
        self.graph.analyze(config)
    }
}

fn max_abs(values: impl IntoIterator<Item = f64>) -> f64 {
    values.into_iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Declared (assume-guarantee) bounds for the CG datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgRangeSpec {
    /// Bound on `‖x‖∞`, `‖r‖∞` and `‖p‖∞` across all iterations.
    pub state_bound: f64,
    /// Bound on the step scalars `|α|` and `|β|`.
    pub scalar_bound: f64,
}

impl Default for CgRangeSpec {
    fn default() -> Self {
        // Sized for the paper-scale benchmark systems (entries of a few
        // units, well-conditioned): tight enough that the quadratic
        // p·Ap bound fits Q15.16, loose enough that real trajectories
        // stay inside — which `cg_iterates_respect_the_declared_state_bound`
        // checks against an actual run.
        Self {
            state_bound: 8.0,
            scalar_bound: 4.0,
        }
    }
}

/// Transcribe one CG iteration (`ap = Ap`, the three dot products, the
/// three axpy updates) over the actual entry bounds of the system.
///
/// The scalars α = rr/pap and β = rr'/rr are *declared* inputs: proving
/// `pap > 0` needs positive-definiteness, which is outside a static
/// range analysis — the runtime guard in [`ConjugateGradient::step`]
/// restarts on degenerate directions instead.
#[must_use]
pub fn cg_range_model<A: LinearOperator>(
    cg: &ConjugateGradient<A>,
    spec: &CgRangeSpec,
) -> RangeModel {
    let n = cg.order();
    let a_max = cg.operator().max_abs_entry();
    let b_max = max_abs(cg.rhs().iter().copied());
    let s = spec.state_bound.max(b_max); // initial r = p = b
    let g_bound = spec.scalar_bound;

    let mut g = RangeGraph::new();
    let a_entry = g.input("A[i][j]", -a_max, a_max);
    let x = g.input("x[i]", -s, s);
    let r = g.input("r[i]", -s, s);
    let p = g.input("p[i]", -s, s);
    let alpha = g.input("alpha", -g_bound, g_bound);
    let beta = g.input("beta", -g_bound, g_bound);

    // ap = A·p, one entry: a dot product over the operator's longest
    // row reduction (n for dense, max stored entries per row for
    // sparse — a 5-point stencil accumulates 5 terms, not n).
    let row_terms = cg.operator().max_row_terms();
    let ap = g.dot(a_entry, p, row_terms);
    g.named(ap, "ap[i] = (A p)[i]");

    // rr = r·r and pap = p·ap.
    let rr = g.dot(r, r, n);
    g.named(rr, "rr = r.r");
    let pap = g.dot(p, ap, n);
    g.named(pap, "pap = p.Ap");

    // The axpy updates.
    let step = g.mul(alpha, p);
    let x_next = g.add(x, step);
    g.named(x_next, "x' = x + alpha p");
    let neg_alpha = g.neg(alpha);
    let damp = g.mul(neg_alpha, ap);
    let r_next = g.add(r, damp);
    g.named(r_next, "r' = r - alpha Ap");
    let climb = g.mul(beta, p);
    let p_next = g.add(r, climb);
    g.named(p_next, "p' = r' + beta p");

    RangeModel {
        name: format!("conjugate-gradient(n={n})"),
        graph: g,
        outputs: vec![x_next, r_next, p_next],
        notes: vec![
            format!(
                "assumes iterate bound ‖x‖∞, ‖r‖∞, ‖p‖∞ ≤ {s} across all iterations \
                 (data gives ‖b‖∞ = {b_max})"
            ),
            format!(
                "assumes |alpha|, |beta| ≤ {g_bound}: alpha = rr/pap needs A ≻ 0, \
                 which static range analysis cannot establish"
            ),
        ],
    }
}

/// Declared bounds for the autoregression datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArRangeSpec {
    /// Bound on `‖w‖∞` across all iterations.
    pub weight_bound: f64,
}

impl Default for ArRangeSpec {
    fn default() -> Self {
        // Standardized series keep the true coefficients well below 1;
        // the fitted vector approaches them from zero, so 1.5 holds
        // with margin while keeping the N-term gradient accumulation
        // inside Q15.16.
        Self { weight_bound: 1.5 }
    }
}

/// Transcribe one AR gradient step (per-sample prediction, residual,
/// gradient accumulation over all `N` samples, scaled coefficient
/// update) over the actual bounds of the design matrix and targets.
#[must_use]
pub fn ar_range_model(ar: &AutoRegression, spec: &ArRangeSpec) -> RangeModel {
    let p = ar.order();
    let n = ar.num_samples();
    let x_max = max_abs(ar.design_matrix().iter().flatten().copied());
    let y_max = max_abs(ar.targets().iter().copied());
    let w_bound = spec.weight_bound;

    let mut g = RangeGraph::new();
    let x = g.input("x[n][j]", -x_max, x_max);
    let y = g.input("y[n]", -y_max, y_max);
    let w = g.input("w[j]", -w_bound, w_bound);

    let pred = g.dot(x, w, p);
    g.named(pred, "pred = x.w");
    let residual = g.sub(y, pred);
    g.named(residual, "residual = y - pred");

    // acc[j] = Σₙ residual·x[n][j], accumulated on the datapath.
    let contrib = g.mul(residual, x);
    let acc = g.sum_of(contrib, n);
    g.named(acc, "acc[j] = sum residual x[n][j]");

    // w' = w + (alpha/N)·acc.
    let scale = g.constant(ar.step_size() / n as f64);
    let update = g.mul(scale, acc);
    let w_next = g.add(w, update);
    g.named(w_next, "w' = w + (alpha/N) acc");

    RangeModel {
        name: format!("autoregression(p={p}, N={n})"),
        graph: g,
        outputs: vec![w_next],
        notes: vec![format!(
            "assumes coefficient bound ‖w‖∞ ≤ {w_bound} across all iterations \
             (data gives max |x| = {x_max:.4}, max |y| = {y_max:.4})"
        )],
    }
}

/// Declared bounds for the GMM M-step mean datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmRangeSpec {
    /// Declared lower bound on the effective cluster weight
    /// `nk = Σᵢ rᵢ` the division is conditioned on. Positivity itself
    /// is enforced at runtime ([`weighted_mean`] returns `None` on
    /// non-positive totals and the previous mean is kept); the floor's
    /// *magnitude* is an assumption about healthy clusterings,
    /// recorded in the model's notes.
    ///
    /// [`weighted_mean`]: approx_linalg::stats::weighted_mean
    pub min_cluster_weight: f64,
}

impl Default for GmmRangeSpec {
    fn default() -> Self {
        // A live cluster owns at least one point's worth of
        // responsibility mass. A much smaller floor (say 1e-3) is
        // still sound for the division but inflates the mean's
        // interval by 1/floor, far past any fixed-point format.
        Self {
            min_cluster_weight: 1.0,
        }
    }
}

/// Transcribe the GMM M-step mean update — the one approximate datapath
/// of the benchmark: `mean[j] = (Σᵢ rᵢ·xᵢ[j]) / (Σᵢ rᵢ)` with
/// responsibilities `rᵢ ∈ [0, 1]`.
///
/// The divisor is a *declared* input `[min_cluster_weight, m]`: the
/// accumulated total's own range necessarily includes values near zero,
/// so the division is conditioned on the runtime's positive-total guard.
#[must_use]
pub fn gmm_range_model(gmm: &GaussianMixture, spec: &GmmRangeSpec) -> RangeModel {
    let m = gmm.points().len();
    let x_max = max_abs(gmm.points().iter().flatten().copied());
    let nk_min = spec.min_cluster_weight;

    let mut g = RangeGraph::new();
    let resp = g.input("r[i]", 0.0, 1.0);
    let coord = g.input("x[i][j]", -x_max, x_max);

    let weighted = g.mul(resp, coord);
    let acc = g.sum_of(weighted, m);
    g.named(acc, "acc[j] = sum r[i] x[i][j]");

    let nk = g.input("nk = sum r[i]", nk_min, m as f64);
    let mean = g.div(acc, nk);
    g.named(mean, "mean[j] = acc[j] / nk");

    RangeModel {
        name: format!("gmm-mean(m={m}, k={})", gmm.k()),
        graph: g,
        outputs: vec![mean],
        notes: vec![format!(
            "assumes effective cluster weight nk ≥ {nk_min}: positivity is \
             guaranteed at runtime by the empty-cluster guard, not provable \
             statically (data gives max |x| = {x_max:.4})"
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::range::RangeVerdict;
    use approx_arith::{EnergyProfile, QFormat, QcsContext};
    use approx_linalg::Matrix;

    use crate::datasets;
    use crate::method::IterativeMethod;

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn cg_system(n: usize) -> ConjugateGradient {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 4.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
        ConjugateGradient::new(a, b, 1e-12, 100)
    }

    #[test]
    fn cg_datapath_is_proven_for_paper_format() {
        let cg = cg_system(10);
        let model = cg_range_model(&cg, &CgRangeSpec::default());
        let report = model.analyze(&RangeConfig::exact(QFormat::Q15_16));
        assert!(report.proven(), "{}", report.verdict);
        assert_eq!(model.notes().len(), 2);
    }

    #[test]
    fn cg_iterates_respect_the_declared_state_bound() {
        // The assume-guarantee contract is only honest if real runs stay
        // inside the declared bounds — check an exact-mode trajectory.
        let cg = cg_system(10);
        let spec = CgRangeSpec::default();
        let mut ctx = QcsContext::with_profile(profile());
        let mut state = cg.initial_state();
        for _ in 0..20 {
            state = cg.step(&state, &mut ctx);
            for v in state.x.iter().chain(&state.r).chain(&state.p) {
                assert!(
                    v.abs() <= spec.state_bound,
                    "iterate {v} escapes declared bound {}",
                    spec.state_bound
                );
            }
        }
    }

    #[test]
    fn cg_overflows_on_a_narrow_format() {
        // Same datapath, Q3.4 toy format: the dot products cannot fit.
        let cg = cg_system(10);
        let model = cg_range_model(&cg, &CgRangeSpec::default());
        let narrow = QFormat::new(8, 4);
        let report = model.analyze(&RangeConfig::exact(narrow));
        assert!(
            matches!(report.verdict, RangeVerdict::MayOverflow { .. }),
            "{}",
            report.verdict
        );
    }

    #[test]
    fn ar_datapath_is_proven_for_paper_format() {
        let series = datasets::ar_series("range", 400, &[0.6, 0.2], 1.0, 3);
        let ar = AutoRegression::from_series(&series, 0.5, 1e-10, 500);
        let model = ar_range_model(&ar, &ArRangeSpec::default());
        let report = model.analyze(&RangeConfig::exact(QFormat::Q15_16));
        assert!(report.proven(), "{}", report.verdict);
    }

    #[test]
    fn ar_coefficients_respect_the_declared_weight_bound() {
        let series = datasets::ar_series("range", 400, &[0.6, 0.2], 1.0, 3);
        let ar = AutoRegression::from_series(&series, 0.5, 1e-10, 500);
        let spec = ArRangeSpec::default();
        let mut ctx = QcsContext::with_profile(profile());
        let mut w = ar.initial_state();
        for _ in 0..200 {
            w = ar.step(&w, &mut ctx);
            for v in &w {
                assert!(
                    v.abs() <= spec.weight_bound,
                    "coefficient {v} escapes declared bound {}",
                    spec.weight_bound
                );
            }
        }
    }

    #[test]
    fn gmm_divisor_needs_its_declared_floor() {
        let dataset = datasets::gaussian_blobs(
            "range",
            &[30, 30],
            &[vec![0.0, 0.0], vec![6.0, 6.0]],
            &[0.6, 0.6],
            1,
        );
        let gmm = GaussianMixture::from_dataset(&dataset, 1e-9, 100, 7);
        let model = gmm_range_model(&gmm, &GmmRangeSpec::default());
        let report = model.analyze(&RangeConfig::exact(QFormat::Q31_16));
        assert!(report.proven(), "{}", report.verdict);
        assert!(model.notes()[0].contains("nk"));

        // Without the floor the divisor straddles zero and the analysis
        // must refuse to bound the mean.
        let m = gmm.points().len();
        let x_max = gmm
            .points()
            .iter()
            .flatten()
            .fold(0.0_f64, |a, v| a.max(v.abs()));
        let mut g = RangeGraph::new();
        let resp = g.input("r", 0.0, 1.0);
        let coord = g.input("x", -x_max, x_max);
        let weighted = g.mul(resp, coord);
        let acc = g.sum_of(weighted, m);
        let nk = g.input("nk", 0.0, m as f64);
        let mean = g.div(acc, nk);
        g.named(mean, "mean");
        let report = g.analyze(&RangeConfig::exact(QFormat::Q31_16));
        assert_eq!(
            report.verdict,
            RangeVerdict::Unbounded {
                expr: "mean".into()
            }
        );
    }
}
