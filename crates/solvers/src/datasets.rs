//! Synthetic dataset generators matching the paper's Table 2.
//!
//! The originals (Matlab-generated Gaussian mixtures, Yahoo! Finance
//! index series) are not redistributable; these seeded generators
//! reproduce their *shape* — sample counts, dimensionality, cluster
//! structure, autocorrelation — which is what drives the convergence and
//! quality behaviour the paper reports (see DESIGN.md §2).

use approx_arith::rng::Pcg32;
use approx_linalg::CsrMatrix;

/// A labelled clustering dataset (for GMM and k-means).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterDataset {
    /// Dataset name (e.g. `"3cluster"`).
    pub name: String,
    /// Sample points, all of equal dimension.
    pub points: Vec<Vec<f64>>,
    /// Ground-truth cluster labels in `0..k`.
    pub labels: Vec<usize>,
    /// Number of clusters.
    pub k: usize,
}

impl ClusterDataset {
    /// Dimensionality of the points.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.points[0].len()
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Generate isotropic Gaussian blobs.
///
/// `sizes`, `centers` and `stds` must have one entry per cluster; the
/// points are emitted cluster-by-cluster and then shuffled (seeded), so
/// the labels remain aligned.
///
/// # Panics
/// Panics if the per-cluster arrays have different lengths, are empty,
/// or the centers have inconsistent dimensions.
#[must_use]
pub fn gaussian_blobs(
    name: &str,
    sizes: &[usize],
    centers: &[Vec<f64>],
    stds: &[f64],
    seed: u64,
) -> ClusterDataset {
    assert!(!sizes.is_empty(), "at least one cluster is required");
    assert_eq!(sizes.len(), centers.len(), "one center per cluster");
    assert_eq!(sizes.len(), stds.len(), "one std per cluster");
    let dim = centers[0].len();
    let mut rng = Pcg32::seeded(seed, 0);
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for (cluster, ((&n, center), &std)) in sizes.iter().zip(centers).zip(stds).enumerate() {
        assert_eq!(
            center.len(),
            dim,
            "all centers must have the same dimension"
        );
        for _ in 0..n {
            let p: Vec<f64> = center.iter().map(|&c| rng.gaussian(c, std)).collect();
            points.push(p);
            labels.push(cluster);
        }
    }
    // Shuffle points and labels with the same permutation.
    let mut order: Vec<usize> = (0..points.len()).collect();
    rng.shuffle(&mut order);
    let points = order.iter().map(|&i| points[i].clone()).collect();
    let labels = order.iter().map(|&i| labels[i]).collect();
    ClusterDataset {
        name: name.to_owned(),
        points,
        labels,
        k: sizes.len(),
    }
}

/// The `3cluster` dataset: 1000 2-D samples, 3 well-separated clusters
/// (paper Table 2, row 1).
#[must_use]
pub fn three_cluster() -> ClusterDataset {
    gaussian_blobs(
        "3cluster",
        &[334, 333, 333],
        &[vec![0.0, 0.0], vec![9.0, 1.0], vec![4.5, 8.0]],
        &[1.1, 1.0, 1.2],
        0x3C1,
    )
}

/// The `3d3cluster` dataset: 1900 3-D samples, 3 partially overlapping
/// clusters (paper Table 2, row 2 — the dataset on which even level 4
/// misclusters hundreds of points).
#[must_use]
pub fn three_d_three_cluster() -> ClusterDataset {
    gaussian_blobs(
        "3d3cluster",
        &[634, 633, 633],
        &[
            vec![0.0, 0.0, 0.0],
            vec![3.8, 2.8, 1.0],
            vec![1.4, 3.9, 3.5],
        ],
        &[1.3, 1.25, 1.3],
        0x3D3,
    )
}

/// The `4cluster` dataset: 2350 2-D samples, 4 clusters of mixed
/// separation (paper Table 2, row 3).
#[must_use]
pub fn four_cluster() -> ClusterDataset {
    gaussian_blobs(
        "4cluster",
        &[588, 588, 587, 587],
        &[
            vec![0.0, 0.0],
            vec![6.5, 1.0],
            vec![2.0, 6.0],
            vec![7.5, 6.5],
        ],
        &[1.2, 1.1, 1.3, 1.0],
        0x4C1,
    )
}

/// A univariate time series for autoregression (paper Table 2, rows 4–6).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDataset {
    /// Dataset name (e.g. `"hangseng"`).
    pub name: String,
    /// The (standardized) series values.
    pub values: Vec<f64>,
    /// Autoregression order `p` (the paper uses 10 lags).
    pub order: usize,
}

impl SeriesDataset {
    /// Number of regression samples after windowing: `len − order`.
    #[must_use]
    pub fn num_samples(&self) -> usize {
        self.values.len().saturating_sub(self.order)
    }

    /// Window the series into a lag design matrix and target vector:
    /// row `t` is `[x_{t+p−1}, …, x_t]` predicting `y = x_{t+p}`.
    ///
    /// # Panics
    /// Panics if the series is not longer than its order.
    #[must_use]
    pub fn to_regression(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let p = self.order;
        assert!(self.values.len() > p, "series shorter than its order");
        let n = self.num_samples();
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for t in 0..n {
            let row: Vec<f64> = (0..p).map(|lag| self.values[t + p - 1 - lag]).collect();
            x.push(row);
            y.push(self.values[t + p]);
        }
        (x, y)
    }
}

/// Synthesize a stationary AR(`coeffs.len()`) series of `len` values,
/// standardized to zero mean and unit variance.
///
/// # Panics
/// Panics if `coeffs` is empty, `len <= coeffs.len()`, or `noise_std` is
/// not positive.
#[must_use]
pub fn ar_series(
    name: &str,
    len: usize,
    coeffs: &[f64],
    noise_std: f64,
    seed: u64,
) -> SeriesDataset {
    let p = coeffs.len();
    assert!(p > 0, "at least one AR coefficient is required");
    assert!(len > p, "series must be longer than its order");
    assert!(noise_std > 0.0, "noise std must be positive");
    let mut rng = Pcg32::seeded(seed, 1);
    let mut values = Vec::with_capacity(len);
    // Burn-in from noise-only start.
    for _ in 0..p {
        values.push(rng.gaussian(0.0, noise_std));
    }
    for t in p..len + 200 {
        let mut v = rng.gaussian(0.0, noise_std);
        for (lag, &c) in coeffs.iter().enumerate() {
            v += c * values[t - 1 - lag];
        }
        values.push(v);
    }
    // Drop burn-in, keep the last `len` values.
    let values: Vec<f64> = values[values.len() - len..].to_vec();
    // Standardize.
    let mean = values.iter().sum::<f64>() / len as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / len as f64;
    let std = var.sqrt().max(1e-12);
    let values = values.iter().map(|v| (v - mean) / std).collect();
    SeriesDataset {
        name: name.to_owned(),
        values,
        order: p,
    }
}

/// Paper-shaped AR(10) coefficient set: a damped, mildly oscillatory
/// response typical of daily index returns-plus-momentum models.
fn index_coeffs(tilt: f64) -> [f64; 10] {
    [
        0.32 + tilt,
        0.18,
        0.10,
        0.05,
        -0.04,
        0.06,
        -0.03,
        0.02,
        0.04,
        -0.02,
    ]
}

/// HangSeng-like series: 6694 regression samples of order 10.
#[must_use]
pub fn hang_seng_like() -> SeriesDataset {
    ar_series("hangseng", 6704, &index_coeffs(0.05), 1.0, 0x4A11)
}

/// NASDAQ-Composite-like series: 10799 regression samples of order 10.
#[must_use]
pub fn nasdaq_like() -> SeriesDataset {
    ar_series("nasdaq", 10809, &index_coeffs(0.0), 1.0, 0x4A12)
}

/// S&P-500-like series: 16080 regression samples of order 10.
#[must_use]
pub fn sp500_like() -> SeriesDataset {
    ar_series("sp500", 16090, &index_coeffs(-0.04), 1.0, 0x4A13)
}

/// A seeded small-world digraph for the PageRank workload: a directed
/// ring (`u → u+1 mod n`, so every node has out-degree ≥ 1 and the
/// graph is strongly connected) plus `chords` random long-range edges
/// per node. Returned as a [`CsrMatrix`] adjacency *structure* — row
/// `u` lists the out-neighbours of `u`; stored values are all 1.
///
/// # Panics
/// Panics if `n < 2`.
#[must_use]
pub fn ring_with_chords(n: usize, chords: usize, seed: u64) -> CsrMatrix {
    assert!(n >= 2, "a ring needs at least two nodes (got {n})");
    let mut rng = Pcg32::seeded(seed, 0x9a6e);
    let mut triplets = Vec::with_capacity(n * (1 + chords));
    for u in 0..n {
        triplets.push((u, (u + 1) % n, 1.0));
        for _ in 0..chords {
            let v = rng.below(n as u64) as usize;
            if v != u {
                // Duplicate chords fold together in from_triplets; the
                // structure (which columns exist) is all that matters.
                triplets.push((u, v, 1.0));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_cluster_datasets_match_table2() {
        let d = three_cluster();
        assert_eq!((d.len(), d.dim(), d.k), (1000, 2, 3));
        let d = three_d_three_cluster();
        assert_eq!((d.len(), d.dim(), d.k), (1900, 3, 3));
        let d = four_cluster();
        assert_eq!((d.len(), d.dim(), d.k), (2350, 2, 4));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(three_cluster(), three_cluster());
        assert_eq!(hang_seng_like(), hang_seng_like());
    }

    #[test]
    fn labels_are_aligned_with_clusters() {
        // The empirical mean of each labelled group must sit near its
        // generating center.
        let d = three_cluster();
        let centers = [vec![0.0, 0.0], vec![9.0, 1.0], vec![4.5, 8.0]];
        for (c, center) in centers.iter().enumerate() {
            let members: Vec<&Vec<f64>> = d
                .points
                .iter()
                .zip(&d.labels)
                .filter(|(_, &l)| l == c)
                .map(|(p, _)| p)
                .collect();
            assert!(!members.is_empty());
            for dim in 0..2 {
                let mean: f64 = members.iter().map(|p| p[dim]).sum::<f64>() / members.len() as f64;
                assert!(
                    (mean - center[dim]).abs() < 0.3,
                    "cluster {c} dim {dim}: mean {mean} vs center {}",
                    center[dim]
                );
            }
        }
    }

    #[test]
    fn series_datasets_match_table2_sample_counts() {
        assert_eq!(hang_seng_like().num_samples(), 6694);
        assert_eq!(nasdaq_like().num_samples(), 10799);
        assert_eq!(sp500_like().num_samples(), 16080);
    }

    #[test]
    fn series_is_standardized() {
        let s = nasdaq_like();
        let n = s.values.len() as f64;
        let mean = s.values.iter().sum::<f64>() / n;
        let var = s
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 1e-10);
        assert!((var - 1.0).abs() < 1e-10);
    }

    #[test]
    fn series_is_autocorrelated() {
        // Lag-1 autocorrelation must be clearly positive (the AR
        // structure the regression is supposed to recover).
        let s = hang_seng_like();
        let r1: f64 =
            s.values.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / (s.values.len() - 1) as f64;
        assert!(r1 > 0.2, "lag-1 autocorrelation {r1}");
    }

    #[test]
    fn regression_windows_are_consistent() {
        let s = ar_series("t", 30, &[0.5, 0.2], 1.0, 9);
        let (x, y) = s.to_regression();
        assert_eq!(x.len(), 28);
        assert_eq!(y.len(), 28);
        // Row t must be [v[t+1], v[t]] and target v[t+2].
        assert_eq!(x[0], vec![s.values[1], s.values[0]]);
        assert_eq!(y[0], s.values[2]);
        assert_eq!(x[27], vec![s.values[28], s.values[27]]);
        assert_eq!(y[27], s.values[29]);
    }

    #[test]
    #[should_panic(expected = "one center per cluster")]
    fn mismatched_blob_spec_panics() {
        let _ = gaussian_blobs("x", &[10, 10], &[vec![0.0]], &[1.0, 1.0], 1);
    }
}
