//! Quality evaluation metrics (the paper's QEM column).

/// Hamming distance between two labelings under the best label
/// permutation — the paper's QEM for GMM clustering. Cluster indices are
/// arbitrary, so predictions are aligned to the reference by trying all
/// `k!` permutations (k ≤ 8) and keeping the minimum number of
/// mismatches.
///
/// # Panics
/// Panics if the labelings differ in length, `k` is 0 or greater than 8,
/// or a label is out of range.
///
/// # Example
///
/// ```
/// use iter_solvers::metrics::hamming_distance;
///
/// // Identical clustering, swapped label names: distance 0.
/// assert_eq!(hamming_distance(&[0, 0, 1, 1], &[1, 1, 0, 0], 2), 0);
/// // One point genuinely misplaced.
/// assert_eq!(hamming_distance(&[0, 0, 1, 0], &[1, 1, 0, 0], 2), 1);
/// ```
#[must_use]
pub fn hamming_distance(predicted: &[usize], reference: &[usize], k: usize) -> usize {
    assert_eq!(
        predicted.len(),
        reference.len(),
        "labelings must have equal length"
    );
    assert!((1..=8).contains(&k), "k must be in 1..=8");
    for &l in predicted.iter().chain(reference) {
        assert!(l < k, "label {l} out of range for k={k}");
    }
    // Confusion counts: confusion[p][r] = #points predicted p with truth r.
    let mut confusion = vec![vec![0usize; k]; k];
    for (&p, &r) in predicted.iter().zip(reference) {
        confusion[p][r] += 1;
    }
    // Minimize mismatches = N - max over permutations of Σ confusion[p][σ(p)].
    let mut perm: Vec<usize> = (0..k).collect();
    let mut best_agreement = 0usize;
    heap_permutations(&mut perm, &mut |perm| {
        let agreement: usize = (0..k).map(|p| confusion[p][perm[p]]).sum();
        best_agreement = best_agreement.max(agreement);
    });
    predicted.len() - best_agreement
}

fn heap_permutations(items: &mut [usize], visit: &mut impl FnMut(&[usize])) {
    let n = items.len();
    if n <= 1 {
        visit(items);
        return;
    }
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    visit(items);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                items.swap(0, i);
            } else {
                items.swap(c[i], i);
            }
            visit(items);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

/// ℓ2 distance between two parameter vectors — the paper's QEM for
/// autoregression ("Least Square Error with ℓ2 norm" of the approximate
/// coefficients against the Truth coefficients).
///
/// # Panics
/// Panics if the vectors differ in length.
#[must_use]
pub fn l2_error(a: &[f64], b: &[f64]) -> f64 {
    approx_linalg::vector::dist2_exact(a, b)
}

/// Clustering accuracy: `1 − hamming_distance/N`.
///
/// # Panics
/// Panics on the same conditions as [`hamming_distance`], or if the
/// labelings are empty.
#[must_use]
pub fn clustering_accuracy(predicted: &[usize], reference: &[usize], k: usize) -> f64 {
    assert!(!predicted.is_empty(), "labelings must be non-empty");
    1.0 - hamming_distance(predicted, reference, k) as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_is_zero() {
        assert_eq!(hamming_distance(&[0, 1, 2, 0], &[0, 1, 2, 0], 3), 0);
    }

    #[test]
    fn permutation_invariance() {
        // 3-cluster labeling under a cyclic rename.
        let truth = [0, 0, 1, 1, 2, 2];
        let renamed = [1, 1, 2, 2, 0, 0];
        assert_eq!(hamming_distance(&renamed, &truth, 3), 0);
    }

    #[test]
    fn counts_true_mismatches_only() {
        let truth = [0, 0, 0, 1, 1, 1];
        let pred = [1, 1, 1, 0, 0, 1]; // aligned: swap 0<->1, one mismatch
        assert_eq!(hamming_distance(&pred, &truth, 2), 1);
    }

    #[test]
    fn collapsed_clustering_has_large_distance() {
        // Everything predicted as one cluster: best alignment recovers
        // only the largest true cluster.
        let truth = [0, 0, 0, 1, 1, 2];
        let pred = [0; 6];
        assert_eq!(hamming_distance(&pred, &truth, 3), 3);
    }

    #[test]
    fn four_cluster_permutations_are_searched() {
        let truth = [0, 1, 2, 3];
        let pred = [3, 2, 1, 0];
        assert_eq!(hamming_distance(&pred, &truth, 4), 0);
    }

    #[test]
    fn accuracy_complements_distance() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 1, 1];
        assert!((clustering_accuracy(&pred, &truth, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn l2_error_basic() {
        assert_eq!(l2_error(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2_error(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let _ = hamming_distance(&[0, 5], &[0, 1], 2);
    }
}
