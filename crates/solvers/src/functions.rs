//! Differentiable test objectives for the generic solvers.

use approx_arith::ArithContext;
use approx_linalg::Matrix;

/// A twice-differentiable objective `f : ℝⁿ → ℝ`.
///
/// [`gradient_ctx`](Objective::gradient_ctx) lets an objective compute its
/// gradient on the approximate datapath (the paper's "direction error");
/// the default computes it exactly.
pub trait Objective {
    /// Problem dimension `n`.
    fn dim(&self) -> usize;

    /// Exact objective value.
    fn value(&self, x: &[f64]) -> f64;

    /// Exact gradient.
    fn gradient(&self, x: &[f64]) -> Vec<f64>;

    /// Gradient evaluated on the context's datapath (defaults to the
    /// exact gradient — override to model direction error).
    fn gradient_ctx(&self, x: &[f64], ctx: &mut dyn ArithContext) -> Vec<f64> {
        let _ = ctx;
        self.gradient(x)
    }

    /// Exact Hessian, if available (needed by Newton's method).
    fn hessian(&self, x: &[f64]) -> Option<Matrix> {
        let _ = x;
        None
    }
}

/// Convex quadratic `f(x) = ½ xᵀAx − bᵀx` with SPD `A`.
///
/// # Example
///
/// ```
/// use approx_linalg::Matrix;
/// use iter_solvers::functions::{Objective, Quadratic};
///
/// let q = Quadratic::new(Matrix::identity(2), vec![1.0, 2.0]);
/// // Minimum at x = A⁻¹ b = b.
/// assert_eq!(q.gradient(&[1.0, 2.0]), vec![0.0, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Quadratic {
    a: Matrix,
    b: Vec<f64>,
}

impl Quadratic {
    /// Create a quadratic objective.
    ///
    /// # Panics
    /// Panics if `a` is not square of order `b.len()` or not symmetric.
    #[must_use]
    pub fn new(a: Matrix, b: Vec<f64>) -> Self {
        assert_eq!(a.rows(), b.len(), "A and b dimensions must agree");
        assert!(a.is_symmetric(1e-9), "A must be symmetric");
        Self { a, b }
    }

    /// The exact minimizer `A⁻¹ b`.
    ///
    /// # Panics
    /// Panics if `A` is singular.
    #[must_use]
    pub fn minimizer(&self) -> Vec<f64> {
        approx_linalg::decomp::solve(&self.a, &self.b).expect("A is SPD")
    }
}

impl Objective for Quadratic {
    fn dim(&self) -> usize {
        self.b.len()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let ax = self.a.matvec_exact(x);
        0.5 * approx_linalg::vector::dot_exact(x, &ax)
            - approx_linalg::vector::dot_exact(&self.b, x)
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let ax = self.a.matvec_exact(x);
        ax.iter().zip(&self.b).map(|(&axi, &bi)| axi - bi).collect()
    }

    fn gradient_ctx(&self, x: &[f64], ctx: &mut dyn ArithContext) -> Vec<f64> {
        let ax = self.a.matvec(ctx, x);
        let mut g = vec![0.0; ax.len()];
        ctx.sub_slice(&ax, &self.b, &mut g);
        g
    }

    fn hessian(&self, _x: &[f64]) -> Option<Matrix> {
        Some(self.a.clone())
    }
}

/// The Rosenbrock function, the classic non-convex banana valley:
/// `f(x, y) = (1−x)² + 100(y−x²)²`, generalized to `n` dimensions as a
/// sum of consecutive-pair terms. Minimum at `(1, …, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct Rosenbrock {
    dim: usize,
}

impl Rosenbrock {
    /// Create an `n`-dimensional Rosenbrock objective.
    ///
    /// # Panics
    /// Panics if `dim < 2`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 2, "Rosenbrock needs at least two dimensions");
        Self { dim }
    }
}

impl Objective for Rosenbrock {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&self, x: &[f64]) -> f64 {
        (0..self.dim - 1)
            .map(|i| {
                let a = 1.0 - x[i];
                let b = x[i + 1] - x[i] * x[i];
                a * a + 100.0 * b * b
            })
            .sum()
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; self.dim];
        for i in 0..self.dim - 1 {
            let b = x[i + 1] - x[i] * x[i];
            g[i] += -2.0 * (1.0 - x[i]) - 400.0 * x[i] * b;
            g[i + 1] += 200.0 * b;
        }
        g
    }

    fn hessian(&self, x: &[f64]) -> Option<Matrix> {
        let mut h = Matrix::zeros(self.dim, self.dim);
        for i in 0..self.dim - 1 {
            h[(i, i)] += 2.0 - 400.0 * x[i + 1] + 1200.0 * x[i] * x[i];
            h[(i + 1, i + 1)] += 200.0;
            h[(i, i + 1)] += -400.0 * x[i];
            h[(i + 1, i)] += -400.0 * x[i];
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_grad(obj: &dyn Objective, x: &[f64]) -> Vec<f64> {
        let h = 1e-6;
        (0..x.len())
            .map(|i| {
                let mut xp = x.to_vec();
                let mut xm = x.to_vec();
                xp[i] += h;
                xm[i] -= h;
                (obj.value(&xp) - obj.value(&xm)) / (2.0 * h)
            })
            .collect()
    }

    #[test]
    fn quadratic_gradient_matches_finite_difference() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let q = Quadratic::new(a, vec![1.0, -1.0]);
        let x = [0.3, -0.7];
        let g = q.gradient(&x);
        let fd = finite_diff_grad(&q, &x);
        for (a, b) in g.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn quadratic_minimizer_has_zero_gradient() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let q = Quadratic::new(a, vec![2.0, 5.0]);
        let xs = q.minimizer();
        let g = q.gradient(&xs);
        assert!(approx_linalg::vector::norm2_exact(&g) < 1e-12);
    }

    #[test]
    fn rosenbrock_minimum_is_at_ones() {
        let r = Rosenbrock::new(4);
        let ones = vec![1.0; 4];
        assert_eq!(r.value(&ones), 0.0);
        assert!(approx_linalg::vector::norm2_exact(&r.gradient(&ones)) < 1e-12);
    }

    #[test]
    fn rosenbrock_gradient_matches_finite_difference() {
        let r = Rosenbrock::new(3);
        let x = [0.5, -0.2, 0.8];
        let g = r.gradient(&x);
        let fd = finite_diff_grad(&r, &x);
        for (a, b) in g.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-4, "{g:?} vs {fd:?}");
        }
    }

    #[test]
    fn rosenbrock_hessian_is_symmetric() {
        let r = Rosenbrock::new(3);
        let h = r.hessian(&[0.1, 0.2, 0.3]).unwrap();
        assert!(h.is_symmetric(1e-12));
    }

    #[test]
    fn quadratic_hessian_is_a() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let q = Quadratic::new(a.clone(), vec![0.0, 0.0]);
        assert_eq!(q.hessian(&[1.0, 1.0]).unwrap(), a);
    }
}
