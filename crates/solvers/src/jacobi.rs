//! Damped Jacobi iteration over any [`LinearOperator`].
//!
//! The algebraic counterpart of the geometric
//! [`PoissonJacobi`](crate::PoissonJacobi): instead of hard-coding the
//! 5-point stencil it reads the operator's
//! [`diagonal`](LinearOperator::diagonal) probe and runs
//! `x ← x + ω·D⁻¹(b − Ax)` with the matvec, the residual and the
//! update all on the arithmetic context. Jacobi converges whenever the
//! damped iteration matrix contracts (e.g. strictly diagonally dominant
//! systems) and is the smoother of choice inside multigrid.

use approx_arith::ArithContext;
use approx_linalg::{vector, LinearOperator};

use crate::method::IterativeMethod;

/// Damped Jacobi on `A x = b` for any square [`LinearOperator`], as an
/// [`IterativeMethod`].
///
/// # Example
///
/// ```
/// use approx_arith::ExactContext;
/// use approx_linalg::CsrMatrix;
/// use iter_solvers::{IterativeMethod, Jacobi};
///
/// // Strictly diagonally dominant 2×2 system.
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
/// let jac = Jacobi::new(a, vec![1.0, 2.0], 1.0, 1e-12, 500);
/// let mut ctx = ExactContext::new();
/// let mut state = jac.initial_state();
/// for _ in 0..100 {
///     state = jac.step(&state, &mut ctx);
/// }
/// assert!((state[0] - 1.0 / 11.0).abs() < 1e-9);
/// assert!((state[1] - 7.0 / 11.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Jacobi<A> {
    a: A,
    b: Vec<f64>,
    /// Diagonal of `A`, captured exactly at construction.
    diag: Vec<f64>,
    omega: f64,
    tolerance: f64,
    max_iterations: usize,
}

impl<A: LinearOperator> Jacobi<A> {
    /// Create a damped Jacobi solver for `A x = b`.
    ///
    /// # Panics
    /// Panics if `A` is not square of order `b.len()`, any diagonal
    /// entry is zero, `omega` is outside `(0, 1]`, the tolerance is not
    /// positive, or `max_iterations` is 0.
    #[must_use]
    pub fn new(a: A, b: Vec<f64>, omega: f64, tolerance: f64, max_iterations: usize) -> Self {
        assert_eq!(a.order(), b.len(), "A and b dimensions must agree");
        assert!(
            omega > 0.0 && omega <= 1.0,
            "damping must be in (0, 1] (got {omega})"
        );
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        let diag = a.diagonal();
        assert!(
            diag.iter().all(|&d| d != 0.0),
            "Jacobi needs a zero-free diagonal"
        );
        Self {
            a,
            b,
            diag,
            omega,
            tolerance,
            max_iterations,
        }
    }

    /// The system operator `A`.
    #[must_use]
    pub fn operator(&self) -> &A {
        &self.a
    }

    /// The right-hand side `b`.
    #[must_use]
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// Exact residual `b − Ax` (monitoring).
    #[must_use]
    pub fn exact_residual(&self, x: &[f64]) -> Vec<f64> {
        self.a
            .matvec_exact(x)
            .iter()
            .zip(&self.b)
            .map(|(&axi, &bi)| bi - axi)
            .collect()
    }
}

impl<A: LinearOperator> IterativeMethod for Jacobi<A> {
    type State = Vec<f64>;

    fn name(&self) -> &str {
        "jacobi"
    }

    fn initial_state(&self) -> Vec<f64> {
        vec![0.0; self.b.len()]
    }

    fn step(&self, x: &Vec<f64>, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let n = x.len();
        let mut ax = vec![0.0; n];
        self.a.apply(ctx, x, &mut ax);
        let mut r = vec![0.0; n];
        ctx.sub_slice(&self.b, &ax, &mut r);
        let mut step = vec![0.0; n];
        for ((s, &ri), &di) in step.iter_mut().zip(&r).zip(&self.diag) {
            *s = ctx.div(ri, di);
        }
        let mut next = vec![0.0; n];
        ctx.axpy_slice(self.omega, &step, x, &mut next);
        next
    }

    /// Exact residual 2-norm `‖b − Ax‖₂` (monitoring).
    fn objective(&self, x: &Vec<f64>) -> f64 {
        vector::norm2_exact(&self.exact_residual(x))
    }

    fn params(&self, x: &Vec<f64>) -> Vec<f64> {
        x.clone()
    }

    fn converged(&self, prev: &Vec<f64>, next: &Vec<f64>) -> bool {
        prev.iter()
            .zip(next)
            .all(|(&a, &b)| (a - b).abs() < self.tolerance)
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{EnergyProfile, ExactContext};
    use approx_linalg::{CsrMatrix, Matrix};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    #[test]
    fn converges_on_a_diagonally_dominant_sparse_system() {
        let a = CsrMatrix::poisson5(4, 4);
        let b = vec![1.0; 16];
        let jac = Jacobi::new(a, b, 0.9, 1e-11, 2000);
        let mut ctx = ExactContext::with_profile(profile());
        let mut x = jac.initial_state();
        for _ in 0..1500 {
            let next = jac.step(&x, &mut ctx);
            let done = jac.converged(&x, &next);
            x = next;
            if done {
                break;
            }
        }
        assert!(jac.objective(&x) < 1e-6, "residual {}", jac.objective(&x));
    }

    #[test]
    fn dense_and_sparse_operators_give_identical_iterates() {
        let s = CsrMatrix::poisson5(3, 3);
        let d = s.to_dense();
        let b: Vec<f64> = (0..9).map(|i| 0.25 * (i as f64) - 1.0).collect();
        let js = Jacobi::new(s, b.clone(), 0.8, 1e-10, 100);
        let jd = Jacobi::new(d, b, 0.8, 1e-10, 100);
        let mut cs = ExactContext::with_profile(profile());
        let mut cd = ExactContext::with_profile(profile());
        let mut xs = js.initial_state();
        let mut xd = jd.initial_state();
        for _ in 0..20 {
            xs = js.step(&xs, &mut cs);
            xd = jd.step(&xd, &mut cd);
        }
        for (a, b) in xs.iter().zip(&xd) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "zero-free diagonal")]
    fn zero_diagonal_panics() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let _ = Jacobi::new(a, vec![1.0, 1.0], 1.0, 1e-9, 10);
    }
}
