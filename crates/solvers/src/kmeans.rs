//! Lloyd's k-means, with the mean-centroid-distance sensor of Chippa et
//! al. used by the PID-controller baseline.
//!
//! The paper's motivation section (§2.3) discusses approximate k-means
//! with an MCD ("mean centroid distance") algorithm-level sensor and a
//! PID controller, and argues that this design cannot guarantee final
//! quality. This module provides that exact system so the claim can be
//! tested head-to-head against ApproxIt.

use approx_arith::ArithContext;
use approx_linalg::{stats, vector};

use approx_arith::rng::Pcg32;

use crate::datasets::ClusterDataset;
use crate::method::IterativeMethod;

/// K-means state: the centroid positions.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansState {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
}

/// Lloyd's algorithm as an [`IterativeMethod`].
///
/// Assignment (nearest centroid) is exact; the centroid mean
/// recomputation runs on the context's datapath — the same partitioning
/// as the GMM benchmark.
#[derive(Debug, Clone)]
pub struct KMeans {
    points: Vec<Vec<f64>>,
    k: usize,
    tolerance: f64,
    max_iterations: usize,
    initial: KMeansState,
}

impl KMeans {
    /// Create a k-means instance with deterministic (seeded) initial
    /// centroids drawn from the data.
    ///
    /// # Panics
    /// Panics if there are fewer points than clusters, `k` is 0, the
    /// tolerance is not positive, or `max_iterations` is 0.
    #[must_use]
    pub fn new(
        points: Vec<Vec<f64>>,
        k: usize,
        tolerance: f64,
        max_iterations: usize,
        seed: u64,
    ) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(points.len() >= k, "need at least k points");
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        let mut rng = Pcg32::seeded(seed, 4);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k {
            let idx = rng.below(points.len() as u64) as usize;
            if !chosen.contains(&idx) {
                chosen.push(idx);
            }
        }
        let centroids = chosen.iter().map(|&i| points[i].clone()).collect();
        Self {
            points,
            k,
            tolerance,
            max_iterations,
            initial: KMeansState { centroids },
        }
    }

    /// Create from a labelled dataset (labels ignored during fitting).
    #[must_use]
    pub fn from_dataset(
        dataset: &ClusterDataset,
        tolerance: f64,
        max_iterations: usize,
        seed: u64,
    ) -> Self {
        Self::new(
            dataset.points.clone(),
            dataset.k,
            tolerance,
            max_iterations,
            seed,
        )
    }

    /// Exact nearest-centroid assignment of every point.
    #[must_use]
    pub fn assignments(&self, state: &KMeansState) -> Vec<usize> {
        self.points
            .iter()
            .map(|p| {
                state
                    .centroids
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        vector::dist2_exact(p, a)
                            .partial_cmp(&vector::dist2_exact(p, b))
                            .expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("k > 0")
            })
            .collect()
    }

    /// Mean centroid distance — the algorithm-level quality sensor of
    /// Chippa et al. (average distance of a point from its assigned
    /// centroid).
    #[must_use]
    pub fn mean_centroid_distance(&self, state: &KMeansState) -> f64 {
        let assignments = self.assignments(state);
        let total: f64 = self
            .points
            .iter()
            .zip(&assignments)
            .map(|(p, &c)| vector::dist2_exact(p, &state.centroids[c]))
            .sum();
        total / self.points.len() as f64
    }
}

impl IterativeMethod for KMeans {
    type State = KMeansState;

    fn name(&self) -> &str {
        "kmeans"
    }

    fn initial_state(&self) -> KMeansState {
        self.initial.clone()
    }

    fn step(&self, state: &KMeansState, ctx: &mut dyn ArithContext) -> KMeansState {
        let assignments = self.assignments(state);
        let centroids = (0..self.k)
            .map(|c| {
                let members: Vec<Vec<f64>> = self
                    .points
                    .iter()
                    .zip(&assignments)
                    .filter(|(_, &a)| a == c)
                    .map(|(p, _)| p.clone())
                    .collect();
                if members.is_empty() {
                    state.centroids[c].clone()
                } else {
                    stats::mean(ctx, &members)
                }
            })
            .collect();
        KMeansState { centroids }
    }

    /// Within-cluster sum of squares divided by N (exact).
    fn objective(&self, state: &KMeansState) -> f64 {
        let assignments = self.assignments(state);
        let total: f64 = self
            .points
            .iter()
            .zip(&assignments)
            .map(|(p, &c)| {
                let d = vector::dist2_exact(p, &state.centroids[c]);
                d * d
            })
            .sum();
        total / self.points.len() as f64
    }

    fn params(&self, state: &KMeansState) -> Vec<f64> {
        state.centroids.iter().flatten().copied().collect()
    }

    fn converged(&self, prev: &KMeansState, next: &KMeansState) -> bool {
        prev.centroids
            .iter()
            .flatten()
            .zip(next.centroids.iter().flatten())
            .all(|(&a, &b)| (a - b).abs() < self.tolerance)
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gaussian_blobs;
    use crate::metrics::hamming_distance;
    use approx_arith::{EnergyProfile, ExactContext};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn data() -> ClusterDataset {
        gaussian_blobs(
            "km",
            &[50, 50],
            &[vec![0.0, 0.0], vec![8.0, 8.0]],
            &[0.7, 0.7],
            41,
        )
    }

    fn run<M: IterativeMethod>(m: &M, ctx: &mut dyn ArithContext) -> (M::State, usize) {
        let mut state = m.initial_state();
        for i in 0..m.max_iterations() {
            let next = m.step(&state, ctx);
            let done = m.converged(&state, &next);
            state = next;
            if done {
                return (state, i + 1);
            }
        }
        (state, m.max_iterations())
    }
    use approx_arith::ArithContext;

    #[test]
    fn separates_two_far_blobs() {
        let d = data();
        let km = KMeans::from_dataset(&d, 1e-9, 100, 3);
        let mut ctx = ExactContext::with_profile(profile());
        let (state, iters) = run(&km, &mut ctx);
        assert!(iters < 100);
        let labels = km.assignments(&state);
        assert_eq!(hamming_distance(&labels, &d.labels, 2), 0);
    }

    #[test]
    fn objective_is_monotone_under_lloyd() {
        let d = data();
        let km = KMeans::from_dataset(&d, 1e-9, 100, 3);
        let mut ctx = ExactContext::with_profile(profile());
        let mut state = km.initial_state();
        let mut prev = km.objective(&state);
        for _ in 0..10 {
            state = km.step(&state, &mut ctx);
            let f = km.objective(&state);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    #[test]
    fn mcd_shrinks_as_fit_improves() {
        let d = data();
        let km = KMeans::from_dataset(&d, 1e-9, 100, 3);
        let mut ctx = ExactContext::with_profile(profile());
        let initial_mcd = km.mean_centroid_distance(&km.initial_state());
        let (state, _) = run(&km, &mut ctx);
        assert!(km.mean_centroid_distance(&state) <= initial_mcd);
    }

    #[test]
    fn empty_cluster_keeps_centroid() {
        // Put one centroid far away so it never wins a point.
        let d = data();
        let km = KMeans::from_dataset(&d, 1e-9, 100, 3);
        let mut state = km.initial_state();
        state.centroids[0] = vec![1e6, 1e6];
        let mut ctx = ExactContext::with_profile(profile());
        let next = km.step(&state, &mut ctx);
        assert_eq!(next.centroids[0], vec![1e6, 1e6]);
    }
}
