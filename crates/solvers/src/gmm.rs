//! Gaussian mixture model fitted by expectation-maximization.
//!
//! The paper's first benchmark (Table 1): nonlinear clustering by EM,
//! with the approximate adders applied to the M-step *mean value*
//! computation (Table 2, "Adder Impact: Mean Value") and the QEM being
//! the Hamming distance of the final hard assignments against the Truth
//! run's assignments.

use approx_arith::ArithContext;
use approx_linalg::{decomp, stats, Matrix};

use approx_arith::rng::Pcg32;

use crate::datasets::ClusterDataset;
use crate::method::IterativeMethod;

/// Parameters of a `k`-component Gaussian mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct GmmState {
    /// Component means.
    pub means: Vec<Vec<f64>>,
    /// Component covariance matrices.
    pub covariances: Vec<Matrix>,
    /// Mixing weights (sum to 1).
    pub weights: Vec<f64>,
}

/// GMM-EM over a fixed point set, as an [`IterativeMethod`].
///
/// # Example
///
/// ```
/// use approx_arith::{ExactContext, EnergyProfile};
/// use iter_solvers::datasets::gaussian_blobs;
/// use iter_solvers::{GaussianMixture, IterativeMethod};
///
/// let data = gaussian_blobs(
///     "demo",
///     &[40, 40],
///     &[vec![0.0, 0.0], vec![6.0, 6.0]],
///     &[0.5, 0.5],
///     7,
/// );
/// let gmm = GaussianMixture::from_dataset(&data, 1e-8, 100, 42);
/// let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
/// let mut ctx = ExactContext::with_profile(profile);
/// let mut state = gmm.initial_state();
/// for _ in 0..50 {
///     let next = gmm.step(&state, &mut ctx);
///     let done = gmm.converged(&state, &next);
///     state = next;
///     if done { break; }
/// }
/// // Two tight, far-apart blobs: the fit must separate them perfectly.
/// let labels = gmm.assignments(&state);
/// assert_eq!(labels.iter().filter(|&&l| l == labels[0]).count(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    points: Vec<Vec<f64>>,
    k: usize,
    tolerance: f64,
    max_iterations: usize,
    ridge: f64,
    initial: GmmState,
}

impl GaussianMixture {
    /// Create a model over raw points.
    ///
    /// Initialization is deterministic in `seed`: means are `k` distinct
    /// sample points, covariances start isotropic at the global variance,
    /// weights uniform — so every configuration of an experiment starts
    /// identically, as the paper's setup requires.
    ///
    /// # Panics
    /// Panics if there are fewer points than clusters, `k` is 0,
    /// `tolerance` is not positive, or `max_iterations` is 0.
    #[must_use]
    pub fn new(
        points: Vec<Vec<f64>>,
        k: usize,
        tolerance: f64,
        max_iterations: usize,
        seed: u64,
    ) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(points.len() >= k, "need at least k points");
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "all points must have the same dimension"
        );
        // Deterministic initial means: k distinct random samples.
        let mut rng = Pcg32::seeded(seed, 2);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k {
            let idx = rng.below(points.len() as u64) as usize;
            if !chosen.contains(&idx) {
                chosen.push(idx);
            }
        }
        let means: Vec<Vec<f64>> = chosen.iter().map(|&i| points[i].clone()).collect();
        // Global variance for the isotropic initial covariance.
        let n = points.len() as f64;
        let global_mean: Vec<f64> = (0..dim)
            .map(|d| points.iter().map(|p| p[d]).sum::<f64>() / n)
            .collect();
        let global_var: f64 = points
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&global_mean)
                    .map(|(&x, &m)| (x - m) * (x - m))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / (n * dim as f64);
        let mut cov = Matrix::zeros(dim, dim);
        for d in 0..dim {
            cov[(d, d)] = global_var.max(1e-6);
        }
        let initial = GmmState {
            means,
            covariances: vec![cov; k],
            weights: vec![1.0 / k as f64; k],
        };
        Self {
            points,
            k,
            tolerance,
            max_iterations,
            ridge: 1e-6,
            initial,
        }
    }

    /// Create a model from a labelled dataset (labels are ignored; they
    /// are only used for external quality evaluation).
    #[must_use]
    pub fn from_dataset(
        dataset: &ClusterDataset,
        tolerance: f64,
        max_iterations: usize,
        seed: u64,
    ) -> Self {
        Self::new(
            dataset.points.clone(),
            dataset.k,
            tolerance,
            max_iterations,
            seed,
        )
    }

    /// Number of mixture components.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The point set being clustered.
    #[must_use]
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Per-component `(inverse covariance, log det)` with progressive
    /// ridging if a covariance has degenerated.
    fn precisions(&self, state: &GmmState) -> Vec<(Matrix, f64)> {
        state
            .covariances
            .iter()
            .map(|cov| {
                let mut ridged = cov.clone();
                let mut ridge = 0.0;
                loop {
                    match (decomp::inverse(&ridged), decomp::determinant(&ridged)) {
                        (Ok(inv), Ok(det)) if det > 0.0 => {
                            return (inv, det.ln());
                        }
                        _ => {
                            ridge = if ridge == 0.0 { 1e-6 } else { ridge * 10.0 };
                            ridged = cov.clone();
                            for d in 0..ridged.rows() {
                                ridged[(d, d)] += ridge;
                            }
                            assert!(ridge < 1e6, "covariance could not be regularized: {cov}");
                        }
                    }
                }
            })
            .collect()
    }

    /// Exact responsibilities r\[n\]\[k\] (E-step, log-domain).
    #[must_use]
    pub fn responsibilities(&self, state: &GmmState) -> Vec<Vec<f64>> {
        let precisions = self.precisions(state);
        let dim = self.points[0].len() as f64;
        let log_norm = -0.5 * dim * (2.0 * std::f64::consts::PI).ln();
        self.points
            .iter()
            .map(|x| {
                let log_posts: Vec<f64> = (0..self.k)
                    .map(|c| {
                        let (inv, logdet) = &precisions[c];
                        let diff: Vec<f64> = x
                            .iter()
                            .zip(&state.means[c])
                            .map(|(&xi, &mi)| xi - mi)
                            .collect();
                        let q = approx_linalg::vector::dot_exact(&diff, &inv.matvec_exact(&diff));
                        state.weights[c].max(1e-300).ln() + log_norm - 0.5 * logdet - 0.5 * q
                    })
                    .collect();
                let max = log_posts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> = log_posts.iter().map(|&lp| (lp - max).exp()).collect();
                let total: f64 = exps.iter().sum();
                exps.iter().map(|&e| e / total.max(1e-300)).collect()
            })
            .collect()
    }

    /// Hard assignments (argmax responsibility).
    #[must_use]
    pub fn assignments(&self, state: &GmmState) -> Vec<usize> {
        self.responsibilities(state)
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite responsibilities"))
                    .map(|(i, _)| i)
                    .expect("k > 0")
            })
            .collect()
    }
}

impl IterativeMethod for GaussianMixture {
    type State = GmmState;

    fn name(&self) -> &str {
        "gmm-em"
    }

    fn initial_state(&self) -> GmmState {
        self.initial.clone()
    }

    fn step(&self, state: &GmmState, ctx: &mut dyn ArithContext) -> GmmState {
        // E-step: exact (error-sensitive — drives all control flow).
        let resp = self.responsibilities(state);
        let n = self.points.len() as f64;
        let mut means = Vec::with_capacity(self.k);
        let mut covariances = Vec::with_capacity(self.k);
        let mut weights = Vec::with_capacity(self.k);
        for c in 0..self.k {
            let rc: Vec<f64> = resp.iter().map(|r| r[c]).collect();
            let nk: f64 = rc.iter().sum();
            // M-step mean: the approximate datapath (paper Table 2).
            let mean = stats::weighted_mean(ctx, &self.points, &rc)
                .unwrap_or_else(|| state.means[c].clone());
            // Covariance and weight: exact.
            let cov = stats::covariance_exact(&self.points, &mean, Some(&rc), self.ridge);
            means.push(mean);
            covariances.push(cov);
            weights.push((nk / n).max(1e-12));
        }
        // Renormalize weights after the floor.
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        GmmState {
            means,
            covariances,
            weights,
        }
    }

    /// Mean negative log-likelihood (exact).
    fn objective(&self, state: &GmmState) -> f64 {
        let precisions = self.precisions(state);
        let dim = self.points[0].len() as f64;
        let log_norm = -0.5 * dim * (2.0 * std::f64::consts::PI).ln();
        let mut nll = 0.0;
        for x in &self.points {
            let log_posts: Vec<f64> = (0..self.k)
                .map(|c| {
                    let (inv, logdet) = &precisions[c];
                    let diff: Vec<f64> = x
                        .iter()
                        .zip(&state.means[c])
                        .map(|(&xi, &mi)| xi - mi)
                        .collect();
                    let q = approx_linalg::vector::dot_exact(&diff, &inv.matvec_exact(&diff));
                    state.weights[c].max(1e-300).ln() + log_norm - 0.5 * logdet - 0.5 * q
                })
                .collect();
            let max = log_posts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = max
                + log_posts
                    .iter()
                    .map(|&lp| (lp - max).exp())
                    .sum::<f64>()
                    .ln();
            nll -= lse;
        }
        nll / self.points.len() as f64
    }

    /// Gradient of the mean NLL with respect to the flattened means:
    /// `∂/∂μ_c = (1/N) Σ_n r_{nc} Σ_c⁻¹ (μ_c − x_n)`.
    fn gradient(&self, state: &GmmState) -> Option<Vec<f64>> {
        let resp = self.responsibilities(state);
        let precisions = self.precisions(state);
        let dim = self.points[0].len();
        let n = self.points.len() as f64;
        let mut grad = Vec::with_capacity(self.k * dim);
        for c in 0..self.k {
            let (inv, _) = &precisions[c];
            let mut acc = vec![0.0; dim];
            for (x, r) in self.points.iter().zip(&resp) {
                let diff: Vec<f64> = state.means[c]
                    .iter()
                    .zip(x)
                    .map(|(&mi, &xi)| mi - xi)
                    .collect();
                let v = inv.matvec_exact(&diff);
                for (a, vi) in acc.iter_mut().zip(&v) {
                    *a += r[c] * vi;
                }
            }
            grad.extend(acc.iter().map(|a| a / n));
        }
        Some(grad)
    }

    fn params(&self, state: &GmmState) -> Vec<f64> {
        state.means.iter().flatten().copied().collect()
    }

    /// Converged when no mean coordinate moved more than the tolerance.
    fn converged(&self, prev: &GmmState, next: &GmmState) -> bool {
        prev.means
            .iter()
            .flatten()
            .zip(next.means.iter().flatten())
            .all(|(&a, &b)| (a - b).abs() < self.tolerance)
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gaussian_blobs;
    use crate::metrics::hamming_distance;
    use approx_arith::{AccuracyLevel, EnergyProfile, ExactContext, QcsContext};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn small_data() -> ClusterDataset {
        gaussian_blobs(
            "small3",
            &[60, 60, 60],
            &[vec![0.0, 0.0], vec![7.0, 0.5], vec![3.5, 6.0]],
            &[0.9, 0.8, 1.0],
            11,
        )
    }

    fn run<M: IterativeMethod>(m: &M, ctx: &mut dyn ArithContext) -> (M::State, usize) {
        let mut state = m.initial_state();
        for i in 0..m.max_iterations() {
            let next = m.step(&state, ctx);
            let done = m.converged(&state, &next);
            state = next;
            if done {
                return (state, i + 1);
            }
        }
        (state, m.max_iterations())
    }

    #[test]
    fn exact_em_recovers_clusters() {
        let data = small_data();
        let gmm = GaussianMixture::from_dataset(&data, 1e-8, 200, 5);
        let mut ctx = ExactContext::with_profile(profile());
        let (state, iters) = run(&gmm, &mut ctx);
        assert!(iters < 200, "EM did not converge");
        let labels = gmm.assignments(&state);
        let qem = hamming_distance(&labels, &data.labels, 3);
        assert!(qem <= 2, "qem {qem}");
    }

    #[test]
    fn objective_decreases_under_exact_em() {
        let data = small_data();
        let gmm = GaussianMixture::from_dataset(&data, 1e-8, 50, 5);
        let mut ctx = ExactContext::with_profile(profile());
        let mut state = gmm.initial_state();
        let mut prev = gmm.objective(&state);
        for _ in 0..10 {
            state = gmm.step(&state, &mut ctx);
            let f = gmm.objective(&state);
            assert!(f <= prev + 1e-9, "NLL went up: {prev} -> {f}");
            prev = f;
        }
    }

    #[test]
    fn initialization_is_deterministic() {
        let data = small_data();
        let a = GaussianMixture::from_dataset(&data, 1e-8, 10, 5).initial_state();
        let b = GaussianMixture::from_dataset(&data, 1e-8, 10, 5).initial_state();
        assert_eq!(a, b);
        let c = GaussianMixture::from_dataset(&data, 1e-8, 10, 6).initial_state();
        assert_ne!(a.means, c.means);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let data = gaussian_blobs(
            "tiny",
            &[20, 20],
            &[vec![0.0, 0.0], vec![5.0, 5.0]],
            &[0.8, 0.8],
            3,
        );
        let gmm = GaussianMixture::from_dataset(&data, 1e-8, 10, 9);
        let state = gmm.initial_state();
        let grad = gmm.gradient(&state).unwrap();
        let h = 1e-6;
        for c in 0..2 {
            for d in 0..2 {
                let mut sp = state.clone();
                sp.means[c][d] += h;
                let mut sm = state.clone();
                sm.means[c][d] -= h;
                let fd = (gmm.objective(&sp) - gmm.objective(&sm)) / (2.0 * h);
                let g = grad[c * 2 + d];
                assert!(
                    (fd - g).abs() < 1e-4 * (1.0 + fd.abs()),
                    "component {c} dim {d}: fd {fd} vs analytic {g}"
                );
            }
        }
    }

    #[test]
    fn level1_damages_the_fit() {
        // Level 1's truncation quantum (2^4 in value units) exceeds the
        // data scale, so the M-step freezes almost instantly at a fit
        // whose likelihood is far from the converged one.
        let data = small_data();
        let gmm = GaussianMixture::from_dataset(&data, 1e-8, 200, 5);
        let mut exact_ctx = QcsContext::with_profile(profile());
        let (exact_state, _) = run(&gmm, &mut exact_ctx);
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(AccuracyLevel::Level1);
        let (state, iters) = run(&gmm, &mut ctx);
        assert!(iters < 10, "level1 should freeze quickly, took {iters}");
        assert!(
            gmm.objective(&state) > gmm.objective(&exact_state) + 0.1,
            "level1 NLL {} vs exact {}",
            gmm.objective(&state),
            gmm.objective(&exact_state)
        );
    }

    #[test]
    fn level4_is_much_better_than_level1() {
        let data = small_data();
        let nll_at = |level: AccuracyLevel| {
            let gmm = GaussianMixture::from_dataset(&data, 1e-8, 200, 5);
            let mut ctx = QcsContext::with_profile(profile());
            ctx.set_level(level);
            let (state, _) = run(&gmm, &mut ctx);
            (
                gmm.objective(&state),
                hamming_distance(&gmm.assignments(&state), &data.labels, 3),
            )
        };
        let (f1, _q1) = nll_at(AccuracyLevel::Level1);
        let (f4, q4) = nll_at(AccuracyLevel::Level4);
        assert!(f4 < f1, "level4 NLL {f4} !< level1 NLL {f1}");
        assert!(q4 <= 5, "level4 qem {q4}");
    }

    #[test]
    fn params_flatten_means() {
        let data = small_data();
        let gmm = GaussianMixture::from_dataset(&data, 1e-8, 10, 5);
        let state = gmm.initial_state();
        let params = gmm.params(&state);
        assert_eq!(params.len(), 6);
        assert_eq!(params[0], state.means[0][0]);
        assert_eq!(params[5], state.means[2][1]);
    }

    #[test]
    #[should_panic(expected = "at least k points")]
    fn too_few_points_panics() {
        let _ = GaussianMixture::new(vec![vec![0.0]], 2, 1e-6, 10, 1);
    }
}
