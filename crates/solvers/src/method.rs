//! The iterative-method abstraction the ApproxIt framework drives.

use approx_arith::ArithContext;

/// An iterative method in the paper's sense (§2.1): a computation that
/// repeatedly refines a state, `x^{k+1} = x^k + α^k d^k`, until a
/// convergence criterion is met.
///
/// The split of responsibilities mirrors the paper's offline resilience
/// partitioning:
///
/// * [`step`](IterativeMethod::step) runs the error-*resilient* datapath
///   through the supplied [`ArithContext`] — this is what dynamic effort
///   scaling degrades and meters;
/// * [`objective`](IterativeMethod::objective),
///   [`gradient`](IterativeMethod::gradient),
///   [`params`](IterativeMethod::params) and
///   [`converged`](IterativeMethod::converged) are error-*sensitive*
///   monitoring quantities computed exactly. The paper notes (§4.1) that
///   all of them are available "along with conducting IMs", so the
///   reconfiguration overhead is negligible.
pub trait IterativeMethod {
    /// The iterate (solution state) type.
    type State: Clone;

    /// Human-readable method name (e.g. `"gmm-em"`).
    fn name(&self) -> &str;

    /// The initial iterate `x⁰`. Must be deterministic so that every
    /// configuration of an experiment starts from the same point, as the
    /// paper's setup requires.
    fn initial_state(&self) -> Self::State;

    /// Perform one iteration on the given arithmetic fabric.
    fn step(&self, state: &Self::State, ctx: &mut dyn ArithContext) -> Self::State;

    /// The exact objective value `f(x)` of a state (lower is better).
    fn objective(&self, state: &Self::State) -> f64;

    /// The exact gradient `∇f(x)` with respect to [`params`], if the
    /// method can provide one (used by the gradient scheme; methods
    /// without a gradient fall back to objective-difference checks).
    ///
    /// [`params`]: IterativeMethod::params
    fn gradient(&self, state: &Self::State) -> Option<Vec<f64>> {
        let _ = state;
        None
    }

    /// The state flattened into a parameter vector `x ∈ ℝⁿ` (used for
    /// the ‖xᵏ‖ and ‖xᵏ−xᵏ⁻¹‖ quantities of the reconfiguration
    /// criteria).
    fn params(&self, state: &Self::State) -> Vec<f64>;

    /// Exact convergence test between consecutive iterates.
    fn converged(&self, prev: &Self::State, next: &Self::State) -> bool;

    /// The iteration budget (the paper's `MAX_ITER`).
    fn max_iterations(&self) -> usize;

    /// A method-specific *deadline hint*: the iteration count within
    /// which a healthy run should converge, for deadline-aware callers
    /// (the solver service uses it as the per-attempt iteration budget
    /// when the request carries no explicit deadline). Unlike
    /// [`max_iterations`](Self::max_iterations) — the hard safety cap —
    /// this encodes the method's *expected* convergence horizon, e.g.
    /// conjugate gradient's finite-termination bound. `None` (the
    /// default) means the method offers no tighter bound than
    /// `MAX_ITER`.
    fn deadline_hint(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{ArithContext, EnergyProfile, ExactContext};

    /// A toy contraction: x ← x/2, converging to 0.
    struct Halver;

    impl IterativeMethod for Halver {
        type State = f64;

        fn name(&self) -> &str {
            "halver"
        }

        fn initial_state(&self) -> f64 {
            1.0
        }

        fn step(&self, state: &f64, ctx: &mut dyn ArithContext) -> f64 {
            ctx.mul(*state, 0.5)
        }

        fn objective(&self, state: &f64) -> f64 {
            state.abs()
        }

        fn params(&self, state: &f64) -> Vec<f64> {
            vec![*state]
        }

        fn converged(&self, prev: &f64, next: &f64) -> bool {
            (prev - next).abs() < 1e-9
        }

        fn max_iterations(&self) -> usize {
            100
        }
    }

    #[test]
    fn trait_is_usable_generically() {
        fn run<M: IterativeMethod>(m: &M, ctx: &mut dyn ArithContext) -> (M::State, usize) {
            let mut state = m.initial_state();
            for i in 0..m.max_iterations() {
                let next = m.step(&state, ctx);
                let done = m.converged(&state, &next);
                state = next;
                if done {
                    return (state, i + 1);
                }
            }
            (state, m.max_iterations())
        }
        let mut ctx = ExactContext::with_profile(EnergyProfile::from_constants(
            [1.0, 2.0, 3.0, 4.0, 5.0],
            50.0,
            100.0,
        ));
        let (x, iters) = run(&Halver, &mut ctx);
        assert!(x < 1e-8);
        assert!(iters < 100);
        assert!(Halver.gradient(&x).is_none());
    }
}
