//! Generic gradient descent as an [`IterativeMethod`].

use approx_arith::ArithContext;
use approx_linalg::vector;

use crate::functions::Objective;
use crate::method::IterativeMethod;

/// Fixed-step gradient descent `x^{k+1} = x^k − α ∇f(x^k)`.
///
/// Both the direction (via [`Objective::gradient_ctx`]) and the update
/// accumulation run on the arithmetic context, so direction error *and*
/// update error (§2.1 of the paper) are modelled.
///
/// # Example
///
/// ```
/// use approx_arith::{ExactContext, EnergyProfile};
/// use approx_linalg::Matrix;
/// use iter_solvers::functions::Quadratic;
/// use iter_solvers::{GradientDescent, IterativeMethod};
///
/// let q = Quadratic::new(Matrix::identity(2), vec![1.0, 2.0]);
/// let gd = GradientDescent::new(q, vec![0.0, 0.0], 0.5, 1e-12, 200);
/// let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
/// let mut ctx = ExactContext::with_profile(profile);
/// let mut x = gd.initial_state();
/// for _ in 0..100 {
///     x = gd.step(&x, &mut ctx);
/// }
/// assert!((x[0] - 1.0).abs() < 1e-9);
/// assert!((x[1] - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct GradientDescent<O> {
    objective: O,
    x0: Vec<f64>,
    step_size: f64,
    tolerance: f64,
    max_iterations: usize,
}

impl<O: Objective> GradientDescent<O> {
    /// Create a solver.
    ///
    /// # Panics
    /// Panics if `x0` does not match the objective's dimension, the step
    /// size or tolerance is not positive, or `max_iterations` is 0.
    #[must_use]
    pub fn new(
        objective: O,
        x0: Vec<f64>,
        step_size: f64,
        tolerance: f64,
        max_iterations: usize,
    ) -> Self {
        assert_eq!(x0.len(), objective.dim(), "x0 must match objective dim");
        assert!(step_size > 0.0, "step size must be positive");
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        Self {
            objective,
            x0,
            step_size,
            tolerance,
            max_iterations,
        }
    }

    /// The wrapped objective.
    #[must_use]
    pub fn objective_fn(&self) -> &O {
        &self.objective
    }

    /// The fixed step size α.
    #[must_use]
    pub fn step_size(&self) -> f64 {
        self.step_size
    }
}

impl<O: Objective> IterativeMethod for GradientDescent<O> {
    type State = Vec<f64>;

    fn name(&self) -> &str {
        "gradient-descent"
    }

    fn initial_state(&self) -> Vec<f64> {
        self.x0.clone()
    }

    fn step(&self, state: &Vec<f64>, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let g = self.objective.gradient_ctx(state, ctx);
        vector::axpy(ctx, -self.step_size, &g, state)
    }

    fn objective(&self, state: &Vec<f64>) -> f64 {
        self.objective.value(state)
    }

    fn gradient(&self, state: &Vec<f64>) -> Option<Vec<f64>> {
        Some(self.objective.gradient(state))
    }

    fn params(&self, state: &Vec<f64>) -> Vec<f64> {
        state.clone()
    }

    fn converged(&self, prev: &Vec<f64>, next: &Vec<f64>) -> bool {
        vector::dist2_exact(prev, next) < self.tolerance
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{Quadratic, Rosenbrock};
    use approx_arith::{AccuracyLevel, EnergyProfile, ExactContext, QcsContext};
    use approx_linalg::Matrix;

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn run<M: IterativeMethod>(m: &M, ctx: &mut dyn ArithContext) -> (M::State, usize) {
        let mut state = m.initial_state();
        for i in 0..m.max_iterations() {
            let next = m.step(&state, ctx);
            let done = m.converged(&state, &next);
            state = next;
            if done {
                return (state, i + 1);
            }
        }
        (state, m.max_iterations())
    }

    #[test]
    fn converges_on_quadratic() {
        let a = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let q = Quadratic::new(a, vec![1.0, 1.0]);
        let want = q.minimizer();
        let gd = GradientDescent::new(q, vec![5.0, -5.0], 0.3, 1e-13, 2000);
        let mut ctx = ExactContext::with_profile(profile());
        let (x, iters) = run(&gd, &mut ctx);
        assert!(iters < 2000, "did not converge");
        assert!(vector::dist2_exact(&x, &want) < 1e-9);
    }

    #[test]
    fn makes_progress_on_rosenbrock() {
        let r = Rosenbrock::new(2);
        let gd = GradientDescent::new(r, vec![0.0, 0.0], 2e-3, 1e-12, 2000);
        let mut ctx = ExactContext::with_profile(profile());
        let f0 = gd.objective(&gd.initial_state());
        let (x, _) = run(&gd, &mut ctx);
        let f = gd.objective(&x);
        assert!(f.is_finite());
        assert!(f < f0 / 2.0, "f0 {f0} -> f {f}");
    }

    #[test]
    fn approximate_mode_converges_near_but_not_exactly() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let q = Quadratic::new(a, vec![2.0, -2.0]);
        let want = q.minimizer();
        let gd = GradientDescent::new(q, vec![10.0, 10.0], 0.25, 1e-13, 2000);
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(AccuracyLevel::Level4);
        let (x, iters) = run(&gd, &mut ctx);
        // The quantized datapath freezes the iterates near (but not at)
        // the optimum.
        assert!(iters < 2000);
        let dist = vector::dist2_exact(&x, &want);
        assert!(dist < 0.05, "dist {dist}");
    }

    #[test]
    fn coarse_approximation_is_worse_than_fine() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let q = Quadratic::new(a.clone(), vec![2.0, -2.0]);
        let want = q.minimizer();
        let dist_at = |level: AccuracyLevel| {
            let q = Quadratic::new(a.clone(), vec![2.0, -2.0]);
            let gd = GradientDescent::new(q, vec![10.0, 10.0], 0.25, 1e-13, 2000);
            let mut ctx = QcsContext::with_profile(profile());
            ctx.set_level(level);
            let (x, _) = run(&gd, &mut ctx);
            vector::dist2_exact(&x, &want)
        };
        assert!(dist_at(AccuracyLevel::Level1) > dist_at(AccuracyLevel::Level4));
    }

    #[test]
    #[should_panic(expected = "x0 must match")]
    fn wrong_dimension_panics() {
        let q = Quadratic::new(Matrix::identity(2), vec![0.0, 0.0]);
        let _ = GradientDescent::new(q, vec![0.0], 0.1, 1e-9, 10);
    }
}
