//! Weighted-Jacobi iteration for the 2-D Poisson equation.
//!
//! The paper's introduction motivates iterative methods with "the
//! iterative-based finite difference and finite element methods [that]
//! give us perfect solutions … to tackle partial differential
//! equations"; this module provides that workload: −Δu = f on the unit
//! square with homogeneous Dirichlet boundaries, discretized by the
//! classic 5-point stencil and solved by damped Jacobi sweeps whose
//! stencil accumulations run on the approximate datapath.

use approx_arith::ArithContext;

use crate::method::IterativeMethod;

/// Right-hand-side generators for [`PoissonJacobi`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoissonSource {
    /// `f(x, y) = 2π²·amplitude·sin(πx)sin(πy)` — the smooth benchmark
    /// with the closed-form solution `u = amplitude·sin(πx)sin(πy)`.
    Sine {
        /// Peak of the analytic solution.
        amplitude: f64,
    },
    /// A unit point load at the grid node nearest `(x, y)`.
    Point {
        /// Load position, in `[0, 1]²`.
        x: f64,
        /// Load position, in `[0, 1]²`.
        y: f64,
        /// Load strength.
        strength: f64,
    },
}

/// Relaxation sweep variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// Simultaneous update from the previous iterate (the classic Jacobi
    /// sweep — fully parallel hardware).
    #[default]
    Jacobi,
    /// In-place lexicographic update (Gauss–Seidel; with `omega > 1`
    /// this is SOR). Converges in roughly half the sweeps of Jacobi on
    /// this stencil, at the cost of a sequential hardware schedule.
    GaussSeidel,
}

/// Damped (weighted) Jacobi / Gauss–Seidel iteration on the 5-point
/// Poisson stencil, as an [`IterativeMethod`].
///
/// The state is the solution on the `n × n` interior grid (row-major).
/// One iteration computes, for every interior node,
///
/// ```text
/// u'ᵢⱼ = (1 − ω)·uᵢⱼ + (ω/4)·(u_N + u_S + u_E + u_W + h²·fᵢⱼ)
/// ```
///
/// with the neighbour accumulation on the arithmetic context. The
/// monitored objective is the discrete energy functional
/// `J(u) = ½·uᵀAu − bᵀu` (exact), whose gradient is the residual
/// `Au − b` — so all three reconfiguration schemes apply.
///
/// # Example
///
/// ```
/// use approx_arith::{EnergyProfile, ExactContext};
/// use iter_solvers::{IterativeMethod, PoissonJacobi, PoissonSource};
///
/// let pde = PoissonJacobi::new(15, PoissonSource::Sine { amplitude: 8.0 }, 0.8, 1e-7, 2000);
/// let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
/// let mut ctx = ExactContext::with_profile(profile);
/// let mut u = pde.initial_state();
/// for _ in 0..500 {
///     u = pde.step(&u, &mut ctx);
/// }
/// // The center value approaches the analytic peak (8.0).
/// let center = u[(15 * 15) / 2];
/// assert!((center - 8.0).abs() < 0.5, "center {center}");
/// ```
#[derive(Debug, Clone)]
pub struct PoissonJacobi {
    n: usize,
    h: f64,
    rhs: Vec<f64>,
    omega: f64,
    sweep: SweepMode,
    tolerance: f64,
    max_iterations: usize,
}

impl PoissonJacobi {
    /// Create a solver on an `n × n` interior grid.
    ///
    /// `omega` is the Jacobi damping factor (1.0 = undamped; 0.8 is the
    /// usual smoother choice).
    ///
    /// # Panics
    /// Panics if `n` is 0, `omega` is not in `(0, 1]`, the tolerance is
    /// not positive, or `max_iterations` is 0.
    #[must_use]
    pub fn new(
        n: usize,
        source: PoissonSource,
        omega: f64,
        tolerance: f64,
        max_iterations: usize,
    ) -> Self {
        assert!(n > 0, "grid must be non-empty");
        assert!(omega > 0.0 && omega <= 1.0, "omega must be in (0, 1]");
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        let h = 1.0 / (n + 1) as f64;
        let mut rhs = vec![0.0; n * n];
        match source {
            PoissonSource::Sine { amplitude } => {
                let pi = std::f64::consts::PI;
                for i in 0..n {
                    for j in 0..n {
                        let x = (j + 1) as f64 * h;
                        let y = (i + 1) as f64 * h;
                        rhs[i * n + j] =
                            2.0 * pi * pi * amplitude * (pi * x).sin() * (pi * y).sin();
                    }
                }
            }
            PoissonSource::Point { x, y, strength } => {
                let j = ((x / h).round() as usize).clamp(1, n) - 1;
                let i = ((y / h).round() as usize).clamp(1, n) - 1;
                rhs[i * n + j] = strength / (h * h);
            }
        }
        Self {
            n,
            h,
            rhs,
            omega,
            sweep: SweepMode::Jacobi,
            tolerance,
            max_iterations,
        }
    }

    /// Switch the relaxation sweep (Jacobi by default). Gauss–Seidel
    /// permits `omega` up to 2 (SOR over-relaxation).
    ///
    /// # Panics
    /// Panics if the current `omega` exceeds 1 for Jacobi or 2 for
    /// Gauss–Seidel... the constructor already bounds `omega` at 1, so
    /// this method only widens the admissible range.
    #[must_use]
    pub fn with_sweep(mut self, sweep: SweepMode) -> Self {
        self.sweep = sweep;
        self
    }

    /// Set the relaxation factor; Gauss–Seidel/SOR admits `(0, 2)`.
    ///
    /// # Panics
    /// Panics if `omega` is outside `(0, 1]` for Jacobi or `(0, 2)` for
    /// Gauss–Seidel.
    #[must_use]
    pub fn with_omega(mut self, omega: f64) -> Self {
        let limit = match self.sweep {
            SweepMode::Jacobi => 1.0,
            SweepMode::GaussSeidel => 2.0 - 1e-9,
        };
        assert!(
            omega > 0.0 && omega <= limit,
            "omega {omega} out of range for {:?}",
            self.sweep
        );
        self.omega = omega;
        self
    }

    /// Interior grid size per side.
    #[must_use]
    pub fn grid_size(&self) -> usize {
        self.n
    }

    /// Grid spacing `h = 1/(n+1)`.
    #[must_use]
    pub fn spacing(&self) -> f64 {
        self.h
    }

    /// The discretized right-hand side `f` at the interior nodes
    /// (row-major).
    #[must_use]
    pub fn rhs_values(&self) -> &[f64] {
        &self.rhs
    }

    fn at(&self, u: &[f64], i: isize, j: isize) -> f64 {
        let n = self.n as isize;
        if i < 0 || j < 0 || i >= n || j >= n {
            0.0 // homogeneous Dirichlet boundary
        } else {
            u[(i * n + j) as usize]
        }
    }

    /// One damped-Jacobi sweep, processed row-by-row through the
    /// context's slice kernels. Every interior cell performs the same
    /// per-element operation sequence as the per-cell formulation —
    /// neighbour adds, source multiply-add, relaxation divide, damped
    /// blend — so values, operation counts and energy are identical;
    /// contexts with batched kernels run each stage at slice
    /// granularity.
    fn jacobi_step(&self, u: &[f64], ctx: &mut dyn ArithContext) -> Vec<f64> {
        let n = self.n;
        let mut next = vec![0.0; n * n];
        let zeros = vec![0.0; n];
        let mut left = vec![0.0; n];
        let mut right = vec![0.0; n];
        let mut acc = vec![0.0; n];
        let mut h2f = vec![0.0; n];
        let mut relaxed = vec![0.0; n];
        let mut kept = vec![0.0; n];
        let mut push = vec![0.0; n];
        let h2 = self.h * self.h;
        for i in 0..n {
            let row = &u[i * n..(i + 1) * n];
            let up = if i == 0 {
                &zeros[..]
            } else {
                &u[(i - 1) * n..i * n]
            };
            let down = if i + 1 == n {
                &zeros[..]
            } else {
                &u[(i + 1) * n..(i + 2) * n]
            };
            // West/east neighbours: the row shifted by one, with the
            // homogeneous Dirichlet boundary padded in as zero.
            left[0] = 0.0;
            left[1..].copy_from_slice(&row[..n - 1]);
            right[n - 1] = 0.0;
            right[..n - 1].copy_from_slice(&row[1..]);
            // Neighbour + source accumulation on the approximate
            // datapath.
            ctx.add_slice(up, down, &mut acc);
            ctx.add_assign_slice(&mut acc, &left);
            ctx.add_assign_slice(&mut acc, &right);
            ctx.scale_slice(h2, &self.rhs[i * n..(i + 1) * n], &mut h2f);
            ctx.add_assign_slice(&mut acc, &h2f);
            for (r, &a) in relaxed.iter_mut().zip(&acc) {
                *r = ctx.div(a, 4.0);
            }
            // Damped blend, also on the datapath.
            ctx.scale_slice(1.0 - self.omega, row, &mut kept);
            ctx.scale_slice(self.omega, &relaxed, &mut push);
            ctx.add_slice(&kept, &push, &mut next[i * n..(i + 1) * n]);
        }
        next
    }

    /// One Gauss–Seidel/SOR sweep. Each cell reads already-updated
    /// neighbours, so the sweep is inherently sequential and stays on
    /// the per-operation path.
    fn gauss_seidel_step(&self, u: &[f64], ctx: &mut dyn ArithContext) -> Vec<f64> {
        let n = self.n as isize;
        let mut next = u.to_vec();
        for i in 0..n {
            for j in 0..n {
                let idx = (i * n + j) as usize;
                let up = self.at(&next, i - 1, j);
                let down = self.at(&next, i + 1, j);
                let left = self.at(&next, i, j - 1);
                let right = self.at(&next, i, j + 1);
                let center = next[idx];
                let mut acc = ctx.add(up, down);
                acc = ctx.add(acc, left);
                acc = ctx.add(acc, right);
                let h2f = ctx.mul(self.h * self.h, self.rhs[idx]);
                acc = ctx.add(acc, h2f);
                let relaxed = ctx.div(acc, 4.0);
                let kept = ctx.mul(1.0 - self.omega, center);
                let push = ctx.mul(self.omega, relaxed);
                next[idx] = ctx.add(kept, push);
            }
        }
        next
    }

    /// Exact residual `b − Au` (scaled by h²: `h²f + u_N + u_S + u_E +
    /// u_W − 4u`), used for monitoring.
    #[must_use]
    pub fn residual(&self, u: &[f64]) -> Vec<f64> {
        let n = self.n as isize;
        let mut r = vec![0.0; self.n * self.n];
        for i in 0..n {
            for j in 0..n {
                let idx = (i * n + j) as usize;
                r[idx] = self.h * self.h * self.rhs[idx]
                    + self.at(u, i - 1, j)
                    + self.at(u, i + 1, j)
                    + self.at(u, i, j - 1)
                    + self.at(u, i, j + 1)
                    - 4.0 * u[idx];
            }
        }
        r
    }

    /// The analytic solution sampled on the grid, when the source has
    /// one (`Sine`); used by tests and examples to report the true
    /// discretization error.
    #[must_use]
    pub fn sine_solution(&self, amplitude: f64) -> Vec<f64> {
        let pi = std::f64::consts::PI;
        let mut u = vec![0.0; self.n * self.n];
        for i in 0..self.n {
            for j in 0..self.n {
                let x = (j + 1) as f64 * self.h;
                let y = (i + 1) as f64 * self.h;
                u[i * self.n + j] = amplitude * (pi * x).sin() * (pi * y).sin();
            }
        }
        u
    }
}

impl IterativeMethod for PoissonJacobi {
    type State = Vec<f64>;

    fn name(&self) -> &str {
        match self.sweep {
            SweepMode::Jacobi => "poisson-jacobi",
            SweepMode::GaussSeidel => "poisson-gauss-seidel",
        }
    }

    /// Start from the zero field.
    fn initial_state(&self) -> Vec<f64> {
        vec![0.0; self.n * self.n]
    }

    fn step(&self, u: &Vec<f64>, ctx: &mut dyn ArithContext) -> Vec<f64> {
        match self.sweep {
            SweepMode::Jacobi => self.jacobi_step(u, ctx),
            SweepMode::GaussSeidel => self.gauss_seidel_step(u, ctx),
        }
    }

    /// Discrete energy functional `½·uᵀAu − bᵀu` (with `A` the scaled
    /// 5-point Laplacian), computed exactly.
    fn objective(&self, u: &Vec<f64>) -> f64 {
        // ½uᵀAu − bᵀu = −½uᵀ(residual + b_scaled) ... compute directly:
        let n = self.n as isize;
        let mut energy = 0.0;
        for i in 0..n {
            for j in 0..n {
                let idx = (i * n + j) as usize;
                let au = 4.0 * u[idx]
                    - self.at(u, i - 1, j)
                    - self.at(u, i + 1, j)
                    - self.at(u, i, j - 1)
                    - self.at(u, i, j + 1);
                energy += 0.5 * u[idx] * au - self.h * self.h * self.rhs[idx] * u[idx];
            }
        }
        energy
    }

    /// Gradient of the energy functional: `Au − b` (the negated
    /// residual).
    fn gradient(&self, u: &Vec<f64>) -> Option<Vec<f64>> {
        Some(self.residual(u).iter().map(|r| -r).collect())
    }

    fn params(&self, u: &Vec<f64>) -> Vec<f64> {
        u.clone()
    }

    fn converged(&self, prev: &Vec<f64>, next: &Vec<f64>) -> bool {
        prev.iter()
            .zip(next)
            .all(|(&a, &b)| (a - b).abs() < self.tolerance)
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, ExactContext, QcsContext};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn run<M: IterativeMethod>(m: &M, ctx: &mut dyn ArithContext) -> (M::State, usize) {
        let mut state = m.initial_state();
        for i in 0..m.max_iterations() {
            let next = m.step(&state, ctx);
            let done = m.converged(&state, &next);
            state = next;
            if done {
                return (state, i + 1);
            }
        }
        (state, m.max_iterations())
    }

    #[test]
    fn converges_to_the_analytic_sine_solution() {
        let pde = PoissonJacobi::new(15, PoissonSource::Sine { amplitude: 8.0 }, 0.9, 1e-8, 5000);
        let mut ctx = ExactContext::with_profile(profile());
        let (u, iters) = run(&pde, &mut ctx);
        assert!(iters < 5000, "did not converge");
        let truth = pde.sine_solution(8.0);
        let err = u
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        // Discretization error of the 5-point stencil at h = 1/16.
        assert!(err < 0.1, "max error {err}");
    }

    #[test]
    fn energy_functional_decreases_monotonically() {
        let pde = PoissonJacobi::new(10, PoissonSource::Sine { amplitude: 5.0 }, 0.8, 1e-8, 100);
        let mut ctx = ExactContext::with_profile(profile());
        let mut u = pde.initial_state();
        let mut prev = pde.objective(&u);
        for _ in 0..30 {
            u = pde.step(&u, &mut ctx);
            let f = pde.objective(&u);
            assert!(f <= prev + 1e-12, "energy rose {prev} -> {f}");
            prev = f;
        }
    }

    #[test]
    fn gradient_is_negated_residual_and_vanishes_at_convergence() {
        let pde = PoissonJacobi::new(8, PoissonSource::Sine { amplitude: 3.0 }, 0.9, 1e-10, 5000);
        let mut ctx = ExactContext::with_profile(profile());
        let (u, _) = run(&pde, &mut ctx);
        let g = pde.gradient(&u).expect("gradient available");
        let norm = approx_linalg::vector::norm2_exact(&g);
        assert!(norm < 1e-6, "gradient norm {norm}");
    }

    #[test]
    fn point_load_produces_a_localized_bump() {
        let pde = PoissonJacobi::new(
            11,
            PoissonSource::Point {
                x: 0.5,
                y: 0.5,
                strength: 1.0,
            },
            0.9,
            1e-9,
            5000,
        );
        let mut ctx = ExactContext::with_profile(profile());
        let (u, _) = run(&pde, &mut ctx);
        let center = u[5 * 11 + 5];
        let corner = u[0];
        assert!(center > 0.0);
        assert!(center > 5.0 * corner, "center {center} corner {corner}");
    }

    #[test]
    fn approximate_sweeps_freeze_early_with_bounded_error() {
        let pde = PoissonJacobi::new(12, PoissonSource::Sine { amplitude: 8.0 }, 0.9, 1e-8, 5000);
        let mut exact = ExactContext::with_profile(profile());
        let (u_exact, exact_iters) = run(&pde, &mut exact);
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(AccuracyLevel::Level4);
        let (u4, iters4) = run(&pde, &mut ctx);
        assert!(
            iters4 < exact_iters,
            "level4 {iters4} !< exact {exact_iters}"
        );
        let err = u4
            .iter()
            .zip(&u_exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 0.5, "level4 deviation {err}");
    }

    #[test]
    fn level1_destroys_the_field() {
        let pde = PoissonJacobi::new(12, PoissonSource::Sine { amplitude: 8.0 }, 0.9, 1e-8, 200);
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(AccuracyLevel::Level1);
        let (u1, _) = run(&pde, &mut ctx);
        // Every update truncates to multiples of 16 > field scale: the
        // field never leaves zero.
        assert!(u1.iter().all(|&v| v.abs() < 16.0));
        let peak = u1.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(
            peak < 1.0,
            "level1 accidentally built the field, peak {peak}"
        );
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let iters_for = |sweep: SweepMode, omega: f64| {
            let pde = PoissonJacobi::new(
                12,
                PoissonSource::Sine { amplitude: 5.0 },
                0.9,
                1e-7,
                10_000,
            )
            .with_sweep(sweep)
            .with_omega(omega);
            let mut ctx = ExactContext::with_profile(profile());
            let (u, iters) = run(&pde, &mut ctx);
            let truth = pde.sine_solution(5.0);
            let err = u
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(err < 0.2, "{sweep:?} err {err}");
            iters
        };
        let jacobi = iters_for(SweepMode::Jacobi, 0.9);
        let gs = iters_for(SweepMode::GaussSeidel, 1.0);
        let sor = iters_for(SweepMode::GaussSeidel, 1.5);
        assert!(gs < jacobi, "GS {gs} !< Jacobi {jacobi}");
        assert!(sor < gs, "SOR {sor} !< GS {gs}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn jacobi_rejects_over_relaxation() {
        let _ = PoissonJacobi::new(4, PoissonSource::Sine { amplitude: 1.0 }, 0.9, 1e-6, 10)
            .with_omega(1.5);
    }

    #[test]
    #[should_panic(expected = "omega must be in")]
    fn invalid_omega_panics() {
        let _ = PoissonJacobi::new(4, PoissonSource::Sine { amplitude: 1.0 }, 1.5, 1e-6, 10);
    }
}
