//! Autoregression fitted by batch gradient descent.
//!
//! The paper's second benchmark (Table 1): an AR(p) model of a financial
//! index series, fit by minimizing the mean squared one-step prediction
//! error. The residual and gradient accumulations — the dominant
//! datapath — run on the approximate adders; the convergence check and
//! the reported least-square error are exact.

use approx_arith::ArithContext;
use approx_linalg::vector;

use crate::datasets::SeriesDataset;
use crate::method::IterativeMethod;

/// AR(p) least-squares regression as an [`IterativeMethod`].
///
/// State is the coefficient vector `w ∈ ℝᵖ`; one iteration is a
/// full-batch gradient step
/// `w ← w + (α/N) Σₙ (yₙ − w·xₙ) xₙ` computed on the context's datapath.
///
/// # Example
///
/// ```
/// use approx_arith::{ExactContext, EnergyProfile};
/// use iter_solvers::datasets::ar_series;
/// use iter_solvers::{AutoRegression, IterativeMethod};
///
/// let series = ar_series("demo", 400, &[0.6, 0.2], 1.0, 3);
/// let ar = AutoRegression::from_series(&series, 0.5, 1e-10, 500);
/// let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
/// let mut ctx = ExactContext::with_profile(profile);
/// let mut w = ar.initial_state();
/// for _ in 0..200 {
///     w = ar.step(&w, &mut ctx);
/// }
/// // The fit should recover coefficients near the generating ones.
/// assert!((w[0] - 0.6).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct AutoRegression {
    x: Vec<Vec<f64>>,
    /// Row-major copy of `x`, cached so the prediction pass can run as
    /// one fused [`ArithContext::matvec_slice`] call per step.
    x_flat: Vec<f64>,
    /// Row-major copy of `xᵀ` (`p × N`), cached so the gradient
    /// accumulation `Σₙ rₙ·xₙ = Xᵀr` can also run as one fused
    /// [`ArithContext::matvec_slice`] call per step.
    xt_flat: Vec<f64>,
    y: Vec<f64>,
    step_size: f64,
    tolerance: f64,
    max_iterations: usize,
}

impl AutoRegression {
    /// Create a regression over an explicit design matrix and target.
    ///
    /// # Panics
    /// Panics if the design matrix is empty or ragged, `y` has a
    /// different number of rows, the step size or tolerance is not
    /// positive, or `max_iterations` is 0.
    #[must_use]
    pub fn new(
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        step_size: f64,
        tolerance: f64,
        max_iterations: usize,
    ) -> Self {
        assert!(!x.is_empty(), "design matrix must be non-empty");
        let p = x[0].len();
        assert!(p > 0, "at least one regressor is required");
        assert!(x.iter().all(|r| r.len() == p), "ragged design matrix");
        assert_eq!(x.len(), y.len(), "one target per row required");
        assert!(step_size > 0.0, "step size must be positive");
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        let x_flat: Vec<f64> = x.iter().flatten().copied().collect();
        let mut xt_flat = vec![0.0; x_flat.len()];
        for (n, row) in x.iter().enumerate() {
            for (i, &v) in row.iter().enumerate() {
                xt_flat[i * x.len() + n] = v;
            }
        }
        Self {
            x,
            x_flat,
            xt_flat,
            y,
            step_size,
            tolerance,
            max_iterations,
        }
    }

    /// Create a regression from a windowed series dataset.
    ///
    /// # Panics
    /// Propagates the panics of [`SeriesDataset::to_regression`] and
    /// [`AutoRegression::new`].
    #[must_use]
    pub fn from_series(
        series: &SeriesDataset,
        step_size: f64,
        tolerance: f64,
        max_iterations: usize,
    ) -> Self {
        let (x, y) = series.to_regression();
        Self::new(x, y, step_size, tolerance, max_iterations)
    }

    /// Regression order `p`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.x[0].len()
    }

    /// Number of samples `N`.
    #[must_use]
    pub fn num_samples(&self) -> usize {
        self.x.len()
    }

    /// The design matrix rows (range analysis reads their entry bounds).
    #[must_use]
    pub fn design_matrix(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// The regression targets.
    #[must_use]
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// The gradient-descent step size `α`.
    #[must_use]
    pub fn step_size(&self) -> f64 {
        self.step_size
    }

    /// The exact least-squares solution via the normal equations — the
    /// reference the QEM can be measured against.
    ///
    /// # Panics
    /// Panics if the normal equations are singular.
    #[must_use]
    pub fn normal_equation_solution(&self) -> Vec<f64> {
        let p = self.order();
        let mut xtx = approx_linalg::Matrix::zeros(p, p);
        let mut xty = vec![0.0; p];
        for (row, &target) in self.x.iter().zip(&self.y) {
            for i in 0..p {
                xty[i] += row[i] * target;
                for j in 0..p {
                    xtx[(i, j)] += row[i] * row[j];
                }
            }
        }
        approx_linalg::decomp::solve(&xtx, &xty).expect("normal equations are SPD")
    }
}

impl IterativeMethod for AutoRegression {
    type State = Vec<f64>;

    fn name(&self) -> &str {
        "autoregression"
    }

    /// Start from the zero coefficient vector (identical across all
    /// configurations).
    fn initial_state(&self) -> Vec<f64> {
        vec![0.0; self.order()]
    }

    fn step(&self, state: &Vec<f64>, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let p = self.order();
        let n = self.num_samples();
        // All N predictions come from one fused matvec over the cached
        // row-major design matrix (each row reduced exactly like `dot`).
        let mut preds = vec![0.0; n];
        ctx.matvec_slice(&self.x_flat, p, state, &mut preds);
        // Residuals yₙ − ŷₙ in one element-wise kernel.
        let mut residuals = vec![0.0; n];
        ctx.sub_slice(&self.y, &preds, &mut residuals);
        // Gradient accumulation Σₙ rₙ·xₙ = Xᵀr as one fused matvec over
        // the cached transpose. Each acc[i] sees the same left-to-right
        // add chain as the historical per-sample axpy loop (loop
        // interchange over independent accumulator chains; `mul` is
        // commutative on every datapath), so values, op counts and
        // energy are bit-identical to that formulation.
        let mut acc = vec![0.0; p];
        ctx.matvec_slice(&self.xt_flat, n, &residuals, &mut acc);
        let scale = self.step_size / n as f64;
        vector::axpy(ctx, scale, &acc, state)
    }

    /// Exact mean squared error `(1/2N)‖y − Xw‖²`.
    fn objective(&self, state: &Vec<f64>) -> f64 {
        let mut sse = 0.0;
        for (row, &target) in self.x.iter().zip(&self.y) {
            let r = target - vector::dot_exact(row, state);
            sse += r * r;
        }
        sse / (2.0 * self.num_samples() as f64)
    }

    /// Exact gradient `−(1/N) Xᵀ(y − Xw)`.
    fn gradient(&self, state: &Vec<f64>) -> Option<Vec<f64>> {
        let p = self.order();
        let mut g = vec![0.0; p];
        for (row, &target) in self.x.iter().zip(&self.y) {
            let r = target - vector::dot_exact(row, state);
            for (gi, &xi) in g.iter_mut().zip(row) {
                *gi -= r * xi;
            }
        }
        for gi in &mut g {
            *gi /= self.num_samples() as f64;
        }
        Some(g)
    }

    fn params(&self, state: &Vec<f64>) -> Vec<f64> {
        state.clone()
    }

    /// Converged when no coefficient moved more than the tolerance (the
    /// paper uses 1e-13 on the financial datasets).
    fn converged(&self, prev: &Vec<f64>, next: &Vec<f64>) -> bool {
        prev.iter()
            .zip(next)
            .all(|(&a, &b)| (a - b).abs() < self.tolerance)
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::ar_series;
    use crate::metrics::l2_error;
    use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, ExactContext, QcsContext};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn run<M: IterativeMethod>(m: &M, ctx: &mut dyn ArithContext) -> (M::State, usize) {
        let mut state = m.initial_state();
        for i in 0..m.max_iterations() {
            let next = m.step(&state, ctx);
            let done = m.converged(&state, &next);
            state = next;
            if done {
                return (state, i + 1);
            }
        }
        (state, m.max_iterations())
    }

    #[test]
    fn exact_gd_approaches_normal_equations() {
        let series = ar_series("t", 500, &[0.5, 0.25], 1.0, 17);
        let ar = AutoRegression::from_series(&series, 0.5, 1e-12, 5000);
        let want = ar.normal_equation_solution();
        let mut ctx = ExactContext::with_profile(profile());
        let (w, iters) = run(&ar, &mut ctx);
        assert!(iters < 5000, "did not converge");
        assert!(l2_error(&w, &want) < 1e-8, "w {w:?} vs {want:?}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let series = ar_series("t", 120, &[0.4, 0.2, 0.1], 1.0, 23);
        let ar = AutoRegression::from_series(&series, 0.3, 1e-10, 100);
        let w = vec![0.1, -0.2, 0.3];
        let g = ar.gradient(&w).unwrap();
        let h = 1e-7;
        for i in 0..3 {
            let mut wp = w.clone();
            wp[i] += h;
            let mut wm = w.clone();
            wm[i] -= h;
            let fd = (ar.objective(&wp) - ar.objective(&wm)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-5, "dim {i}: {fd} vs {}", g[i]);
        }
    }

    #[test]
    fn objective_decreases_monotonically() {
        let series = ar_series("t", 300, &[0.6], 1.0, 29);
        let ar = AutoRegression::from_series(&series, 0.3, 1e-12, 50);
        let mut ctx = ExactContext::with_profile(profile());
        let mut state = ar.initial_state();
        let mut prev = ar.objective(&state);
        for _ in 0..20 {
            state = ar.step(&state, &mut ctx);
            let f = ar.objective(&state);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    #[test]
    fn approximate_modes_freeze_early_with_bias() {
        let series = ar_series("t", 400, &[0.5, 0.3], 1.0, 31);
        let reference = {
            let ar = AutoRegression::from_series(&series, 0.4, 1e-13, 3000);
            let mut ctx = ExactContext::with_profile(profile());
            run(&ar, &mut ctx).0
        };
        let mut qems = Vec::new();
        let mut iter_counts = Vec::new();
        for level in [AccuracyLevel::Level1, AccuracyLevel::Level4] {
            let ar = AutoRegression::from_series(&series, 0.4, 1e-13, 3000);
            let mut ctx = QcsContext::with_profile(profile());
            ctx.set_level(level);
            let (w, iters) = run(&ar, &mut ctx);
            qems.push(l2_error(&w, &reference));
            iter_counts.push(iters);
        }
        // Level 1 is far worse than level 4.
        assert!(qems[0] > qems[1], "qems {qems:?}");
        // Both freeze before the budget (quantized updates reach zero).
        assert!(iter_counts.iter().all(|&i| i < 3000), "{iter_counts:?}");
    }

    #[test]
    fn step_counts_operations() {
        let series = ar_series("t", 60, &[0.5], 1.0, 37);
        let ar = AutoRegression::from_series(&series, 0.3, 1e-10, 10);
        let mut ctx = ExactContext::with_profile(profile());
        let w = ar.initial_state();
        let _ = ar.step(&w, &mut ctx);
        let n = ar.num_samples() as u64;
        // Per sample: p muls + p adds (dot) + 1 sub + p muls + p adds
        // (axpy) with p = 1, plus the final p-element update.
        assert_eq!(ctx.counts().adds, n * 3 + 1);
        assert_eq!(ctx.counts().muls, n * 2 + 1);
    }

    #[test]
    #[should_panic(expected = "ragged design matrix")]
    fn ragged_matrix_panics() {
        let _ = AutoRegression::new(
            vec![vec![1.0, 2.0], vec![1.0]],
            vec![0.0, 0.0],
            0.1,
            1e-9,
            10,
        );
    }
}
