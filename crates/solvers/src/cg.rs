//! Conjugate gradient for symmetric positive-definite systems.
//!
//! The paper positions iterative methods as "the most widely-used
//! solutions for large linear … systems of equations"; conjugate
//! gradient is the canonical such solver. It is also the most
//! error-*sensitive* method in this suite — its three coupled
//! recurrences lose conjugacy under arithmetic noise — which makes it a
//! stress test for the reconfiguration schemes rather than an easy win.

use approx_arith::ArithContext;
use approx_linalg::{vector, LinearOperator, Matrix};

use crate::method::IterativeMethod;

/// One CG iterate: the solution estimate plus the residual and search
/// direction recurrences.
#[derive(Debug, Clone, PartialEq)]
pub struct CgState {
    /// Solution estimate `x`.
    pub x: Vec<f64>,
    /// Residual `r = b − Ax` (as maintained by the recurrence).
    pub r: Vec<f64>,
    /// Search direction `p`.
    pub p: Vec<f64>,
}

/// Conjugate gradient on an SPD system behind any [`LinearOperator`]
/// (dense [`Matrix`] by default, [`approx_linalg::CsrMatrix`] for
/// graph- and PDE-scale systems), as an [`IterativeMethod`].
///
/// The matrix–vector product and the three axpy updates run on the
/// arithmetic context; the step-size scalars α and β are computed from
/// context-routed dot products as well, so direction *and* update error
/// are both modelled. Monitoring (objective, gradient, convergence) uses
/// the exact residual `b − Ax`, not the recurrence residual — the
/// recurrence drifts under approximation, and trusting it would hide
/// exactly the failures ApproxIt exists to catch.
///
/// # Example
///
/// ```
/// use approx_arith::{EnergyProfile, ExactContext};
/// use approx_linalg::Matrix;
/// use iter_solvers::{ConjugateGradient, IterativeMethod};
///
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let cg = ConjugateGradient::new(a, vec![1.0, 2.0], 1e-10, 50);
/// let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
/// let mut ctx = ExactContext::with_profile(profile);
/// let mut state = cg.initial_state();
/// for _ in 0..2 {
///     state = cg.step(&state, &mut ctx); // CG solves 2x2 in 2 steps
/// }
/// assert!((state.x[0] - 1.0 / 11.0).abs() < 1e-9);
/// assert!((state.x[1] - 7.0 / 11.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ConjugateGradient<A = Matrix> {
    a: A,
    b: Vec<f64>,
    tolerance: f64,
    max_iterations: usize,
}

impl<A: LinearOperator> ConjugateGradient<A> {
    /// Create a solver for `A x = b` over any [`LinearOperator`].
    ///
    /// # Panics
    /// Panics if `A` is not square and symmetric of order `b.len()`, the
    /// tolerance is not positive, or `max_iterations` is 0.
    #[must_use]
    pub fn new(a: A, b: Vec<f64>, tolerance: f64, max_iterations: usize) -> Self {
        assert_eq!(a.rows(), b.len(), "A and b dimensions must agree");
        assert!(a.is_symmetric(1e-9), "A must be symmetric");
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        Self {
            a,
            b,
            tolerance,
            max_iterations,
        }
    }

    /// The system order.
    #[must_use]
    pub fn order(&self) -> usize {
        self.b.len()
    }

    /// The system operator `A` (range and contraction analyses read its
    /// structural probes).
    #[must_use]
    pub fn operator(&self) -> &A {
        &self.a
    }

    /// The right-hand side `b`.
    #[must_use]
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// Exact residual `b − Ax` (monitoring).
    #[must_use]
    pub fn exact_residual(&self, x: &[f64]) -> Vec<f64> {
        self.a
            .matvec_exact(x)
            .iter()
            .zip(&self.b)
            .map(|(&axi, &bi)| bi - axi)
            .collect()
    }
}

impl<A: LinearOperator> IterativeMethod for ConjugateGradient<A> {
    type State = CgState;

    fn name(&self) -> &str {
        "conjugate-gradient"
    }

    fn initial_state(&self) -> CgState {
        let x = vec![0.0; self.order()];
        let r = self.b.clone();
        let p = self.b.clone();
        CgState { x, r, p }
    }

    fn step(&self, state: &CgState, ctx: &mut dyn ArithContext) -> CgState {
        // Residual replacement (van der Vorst): approximate steps can
        // decouple the r-recurrence from b − Ax while still *lowering*
        // the objective, after which every later iteration solves the
        // wrong system — invisibly to any objective-based monitor. The
        // exact monitor rebuilds the recurrence (r and the search
        // direction) whenever the stored residual drifts from the true
        // one by more than 1%; in exact and accurate runs the drift
        // stays at rounding level and the guard never fires.
        let true_r = self.exact_residual(&state.x);
        let drift = vector::dist2_exact(&state.r, &true_r);
        let refreshed;
        // audit:allow(taint-branch, residual-replacement guard deliberately compares fabric state against the exact monitor; recurrence drift is invisible to the objective)
        let state = if drift > 0.01 * vector::norm2_exact(&true_r) {
            refreshed = CgState {
                x: state.x.clone(),
                p: true_r.clone(),
                r: true_r,
            };
            &refreshed
        } else {
            state
        };
        let ap = self.a.matvec(ctx, &state.p);
        let rr = ctx.dot(&state.r, &state.r);
        let pap = ctx.dot(&state.p, &ap);
        // audit:allow(taint-branch, degenerate-direction restart deliberately reads fabric state; CG must detect pᵀAp collapse under heavy approximation)
        if pap.abs() < 1e-300 || rr.abs() < 1e-300 {
            // Degenerate direction (possible under heavy approximation):
            // restart from the steepest descent at the current point.
            let r = self.exact_residual(&state.x);
            return CgState {
                x: state.x.clone(),
                p: r.clone(),
                r,
            };
        }
        let alpha = rr / pap; // exact scalar division
        let x = vector::axpy(ctx, alpha, &state.p, &state.x);
        let r = vector::axpy(ctx, -alpha, &ap, &state.r);
        let rr_new = ctx.dot(&r, &r);
        let beta = rr_new / rr;
        let p = vector::axpy(ctx, beta, &state.p, &r);
        CgState { x, r, p }
    }

    /// Quadratic objective `½ xᵀAx − bᵀx` (exact).
    fn objective(&self, state: &CgState) -> f64 {
        let ax = self.a.matvec_exact(&state.x);
        0.5 * vector::dot_exact(&state.x, &ax) - vector::dot_exact(&self.b, &state.x)
    }

    /// Gradient `Ax − b` — the exact negated residual.
    fn gradient(&self, state: &CgState) -> Option<Vec<f64>> {
        Some(self.exact_residual(&state.x).iter().map(|r| -r).collect())
    }

    fn params(&self, state: &CgState) -> Vec<f64> {
        state.x.clone()
    }

    fn converged(&self, prev: &CgState, next: &CgState) -> bool {
        prev.x
            .iter()
            .zip(&next.x)
            .all(|(&a, &b)| (a - b).abs() < self.tolerance)
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// In exact arithmetic CG terminates in at most `n` steps; the
    /// fixed-point datapath and level switches perturb the Krylov
    /// recurrence, so a healthy run gets `4n` before a deadline-aware
    /// caller should give up and escalate (never more than `MAX_ITER`).
    fn deadline_hint(&self) -> Option<usize> {
        Some((4 * self.order()).min(self.max_iterations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, ExactContext, QcsContext};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    /// A well-conditioned SPD test system.
    fn system(n: usize) -> (Matrix, Vec<f64>) {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 4.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
        (a, b)
    }

    fn run<M: IterativeMethod>(m: &M, ctx: &mut dyn ArithContext) -> (M::State, usize) {
        let mut state = m.initial_state();
        for i in 0..m.max_iterations() {
            let next = m.step(&state, ctx);
            let done = m.converged(&state, &next);
            state = next;
            if done {
                return (state, i + 1);
            }
        }
        (state, m.max_iterations())
    }

    #[test]
    fn deadline_hint_is_4n_capped_by_max_iterations() {
        let (a, b) = system(8);
        let cg = ConjugateGradient::new(a.clone(), b.clone(), 1e-12, 100);
        assert_eq!(cg.deadline_hint(), Some(32));
        let tight = ConjugateGradient::new(a, b, 1e-12, 20);
        assert_eq!(tight.deadline_hint(), Some(20));
        // And the hint is genuinely achievable: an exact run converges
        // within it.
        let (a, b) = system(8);
        let cg = ConjugateGradient::new(a, b, 1e-12, 100);
        let mut ctx = ExactContext::with_profile(profile());
        let (_, iters) = run(&cg, &mut ctx);
        assert!(iters <= cg.deadline_hint().unwrap());
    }

    #[test]
    fn solves_in_at_most_n_steps_exactly() {
        let (a, b) = system(8);
        let want = approx_linalg::decomp::solve(&a, &b).expect("SPD");
        let cg = ConjugateGradient::new(a, b, 1e-12, 100);
        let mut ctx = ExactContext::with_profile(profile());
        let mut state = cg.initial_state();
        for _ in 0..8 {
            state = cg.step(&state, &mut ctx);
        }
        assert!(vector::dist2_exact(&state.x, &want) < 1e-8);
    }

    #[test]
    fn converges_via_the_iterative_interface() {
        let (a, b) = system(12);
        let want = approx_linalg::decomp::solve(&a, &b).expect("SPD");
        let cg = ConjugateGradient::new(a, b, 1e-12, 100);
        let mut ctx = ExactContext::with_profile(profile());
        let (state, iters) = run(&cg, &mut ctx);
        assert!(iters <= 20, "took {iters} iterations");
        assert!(vector::dist2_exact(&state.x, &want) < 1e-6);
    }

    #[test]
    fn objective_decreases_monotonically() {
        let (a, b) = system(10);
        let cg = ConjugateGradient::new(a, b, 1e-12, 50);
        let mut ctx = ExactContext::with_profile(profile());
        let mut state = cg.initial_state();
        let mut prev = cg.objective(&state);
        for _ in 0..10 {
            state = cg.step(&state, &mut ctx);
            let f = cg.objective(&state);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    #[test]
    fn gradient_vanishes_at_the_solution() {
        let (a, b) = system(6);
        let cg = ConjugateGradient::new(a, b, 1e-13, 50);
        let mut ctx = ExactContext::with_profile(profile());
        let (state, _) = run(&cg, &mut ctx);
        let g = cg.gradient(&state).expect("gradient available");
        assert!(vector::norm2_exact(&g) < 1e-8);
    }

    #[test]
    fn approximate_cg_drifts_but_level4_stays_close() {
        let (a, b) = system(10);
        let want = approx_linalg::decomp::solve(&a, &b).expect("SPD");
        let dist_at = |level: AccuracyLevel| {
            let (a, b) = system(10);
            let cg = ConjugateGradient::new(a, b, 1e-12, 200);
            let mut ctx = QcsContext::with_profile(profile());
            ctx.set_level(level);
            let (state, _) = run(&cg, &mut ctx);
            vector::dist2_exact(&state.x, &want)
        };
        let d4 = dist_at(AccuracyLevel::Level4);
        let d1 = dist_at(AccuracyLevel::Level1);
        assert!(d4 < 0.1, "level4 distance {d4}");
        assert!(d1 > d4, "level1 {d1} should be worse than level4 {d4}");
        let _ = a;
        let _ = b;
        let _ = want;
    }

    #[test]
    fn sparse_and_dense_operators_give_bit_identical_iterates() {
        use approx_linalg::CsrMatrix;
        let (a, b) = system(12);
        let s = CsrMatrix::from_dense(&a);
        let cgd = ConjugateGradient::new(a, b.clone(), 1e-10, 40);
        let cgs = ConjugateGradient::new(s, b, 1e-10, 40);
        for level in [AccuracyLevel::Level2, AccuracyLevel::Accurate] {
            let mut cd = QcsContext::with_profile(profile());
            let mut cs = QcsContext::with_profile(profile());
            cd.set_level(level);
            cs.set_level(level);
            let mut sd = cgd.initial_state();
            let mut ss = cgs.initial_state();
            for _ in 0..10 {
                sd = cgd.step(&sd, &mut cd);
                ss = cgs.step(&ss, &mut cs);
                for (x, y) in sd.x.iter().zip(&ss.x) {
                    assert_eq!(x.to_bits(), y.to_bits(), "iterates diverged at {level:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be symmetric")]
    fn asymmetric_matrix_panics() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let _ = ConjugateGradient::new(a, vec![1.0, 1.0], 1e-9, 10);
    }
}
