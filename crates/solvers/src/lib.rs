//! Iterative-method substrate for the ApproxIt reproduction: the
//! [`IterativeMethod`] abstraction, generic solvers (gradient descent,
//! Newton's method), the paper's benchmark applications (GMM-EM,
//! AutoRegression, plus the k-means system of the PID baseline),
//! deterministic dataset generators, and quality metrics.
//!
//! # Example
//!
//! ```
//! use approx_arith::{EnergyProfile, ExactContext};
//! use iter_solvers::datasets::gaussian_blobs;
//! use iter_solvers::{GaussianMixture, IterativeMethod};
//!
//! let data = gaussian_blobs("demo", &[30, 30],
//!     &[vec![0.0, 0.0], vec![6.0, 6.0]], &[0.6, 0.6], 1);
//! let gmm = GaussianMixture::from_dataset(&data, 1e-8, 100, 7);
//! let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
//! let mut ctx = ExactContext::with_profile(profile);
//! let state = gmm.step(&gmm.initial_state(), &mut ctx);
//! assert!(gmm.objective(&state) <= gmm.objective(&gmm.initial_state()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoreg;
mod cg;
mod gmm;
mod gradient_descent;
mod jacobi;
mod kmeans;
mod logistic;
mod method;
mod multigrid;
mod newton;
mod opmultigrid;
mod pagerank;
mod poisson;

pub mod contraction;
pub mod datasets;
pub mod functions;
pub mod metrics;
pub mod ranges;

pub use autoreg::AutoRegression;
pub use cg::{CgState, ConjugateGradient};
pub use contraction::{
    ar_contraction, cg_contraction, gmm_contraction, injected_error_bound, ContractionReport,
};
pub use gmm::{GaussianMixture, GmmState};
pub use gradient_descent::GradientDescent;
pub use jacobi::Jacobi;
pub use kmeans::{KMeans, KMeansState};
pub use logistic::LogisticIrls;
pub use method::IterativeMethod;
pub use multigrid::MultigridPoisson;
pub use newton::NewtonMethod;
pub use opmultigrid::{MgLevel, OperatorMultigrid};
pub use pagerank::{PersonalizedPageRank, PprState};
pub use poisson::{PoissonJacobi, PoissonSource, SweepMode};
pub use ranges::{
    ar_range_model, cg_range_model, gmm_range_model, ArRangeSpec, CgRangeSpec, GmmRangeSpec,
    RangeModel,
};

/// Deterministic PRNGs, re-exported from [`approx_arith::rng`] so that
/// downstream code has a single import path.
pub use approx_arith::rng;
