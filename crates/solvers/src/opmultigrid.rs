//! Algebraic multigrid V-cycles over [`LinearOperator`] hierarchies.
//!
//! The geometric [`MultigridPoisson`](crate::MultigridPoisson) hard
//! codes the 5-point stencil, its transfers and its recursion on grid
//! geometry. [`OperatorMultigrid`] is the operator-generic counterpart:
//! every ingredient of the V-cycle — the per-level system, the
//! restriction and the prolongation — is itself a [`LinearOperator`],
//! so the cycle is nothing but matvecs, damped-Jacobi smoothing via the
//! [`diagonal`](LinearOperator::diagonal) probe, and slice-kernel
//! vector updates. A Poisson constructor builds the classical
//! full-weighting/bilinear hierarchy out of [`CsrMatrix`] operators.

use approx_arith::ArithContext;
use approx_linalg::{vector, CsrMatrix, LinearOperator};

use crate::method::IterativeMethod;
use crate::poisson::{PoissonJacobi, PoissonSource};

/// One level of a multigrid hierarchy: the system operator plus the
/// transfers to and from the next coarser level (`None` on the
/// coarsest).
#[derive(Debug, Clone)]
pub struct MgLevel<A> {
    /// The system operator `A_l` at this level.
    pub a: A,
    /// Restriction `R_l` mapping this level's residual to the next
    /// coarser level's right-hand side.
    pub restrict: Option<A>,
    /// Prolongation `P_l` mapping the next coarser level's correction
    /// back to this level.
    pub prolong: Option<A>,
}

/// Multigrid V-cycle iteration on `A x = b` over an arbitrary
/// [`LinearOperator`] hierarchy, as an [`IterativeMethod`].
///
/// Smoothing is damped Jacobi (`x ← x + ω·D⁻¹(b − Ax)`); the coarsest
/// level is solved directly when it is 1×1 and by extra smoothing
/// sweeps otherwise. All matvecs — system *and* transfers — run on the
/// arithmetic context, so the whole cycle is metered and degradable
/// exactly like any other solver.
///
/// # Example
///
/// ```
/// use approx_arith::ExactContext;
/// use iter_solvers::{IterativeMethod, OperatorMultigrid, PoissonSource};
///
/// let mg = OperatorMultigrid::poisson(15, PoissonSource::Sine { amplitude: 8.0 }, 2, 1e-7, 50);
/// let mut ctx = ExactContext::new();
/// let mut u = mg.initial_state();
/// for _ in 0..12 {
///     u = mg.step(&u, &mut ctx); // each step is one V-cycle
/// }
/// let center = u[(15 * 15) / 2];
/// assert!((center - 8.0).abs() < 0.5, "center {center}");
/// ```
#[derive(Debug, Clone)]
pub struct OperatorMultigrid<A = CsrMatrix> {
    levels: Vec<MgLevel<A>>,
    /// Per-level diagonals, captured exactly at construction.
    diags: Vec<Vec<f64>>,
    b: Vec<f64>,
    smoothing_sweeps: usize,
    omega: f64,
    tolerance: f64,
    max_iterations: usize,
}

impl<A: LinearOperator> OperatorMultigrid<A> {
    /// Create a V-cycle solver from an explicit hierarchy (level 0 is
    /// the finest) and the fine-level right-hand side.
    ///
    /// # Panics
    /// Panics if the hierarchy is empty, a transfer is missing or has
    /// mismatched dimensions, a diagonal entry is zero, `b` does not
    /// match the fine level, `smoothing_sweeps` is 0, `omega` is
    /// outside `(0, 1]`, the tolerance is not positive, or
    /// `max_iterations` is 0.
    #[must_use]
    pub fn new(
        levels: Vec<MgLevel<A>>,
        b: Vec<f64>,
        smoothing_sweeps: usize,
        omega: f64,
        tolerance: f64,
        max_iterations: usize,
    ) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        assert_eq!(
            levels[0].a.order(),
            b.len(),
            "A and b dimensions must agree"
        );
        assert!(smoothing_sweeps > 0, "at least one smoothing sweep");
        assert!(
            omega > 0.0 && omega <= 1.0,
            "damping must be in (0, 1] (got {omega})"
        );
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        for (l, pair) in levels.windows(2).enumerate() {
            let (fine, coarse) = (&pair[0], &pair[1]);
            let r = fine
                .restrict
                .as_ref()
                .unwrap_or_else(|| panic!("level {l} needs a restriction"));
            let p = fine
                .prolong
                .as_ref()
                .unwrap_or_else(|| panic!("level {l} needs a prolongation"));
            assert_eq!(r.rows(), coarse.a.order(), "restriction rows at level {l}");
            assert_eq!(r.cols(), fine.a.order(), "restriction cols at level {l}");
            assert_eq!(p.rows(), fine.a.order(), "prolongation rows at level {l}");
            assert_eq!(p.cols(), coarse.a.order(), "prolongation cols at level {l}");
        }
        let diags: Vec<Vec<f64>> = levels.iter().map(|l| l.a.diagonal()).collect();
        assert!(
            diags.iter().flatten().all(|&d| d != 0.0),
            "smoothing needs zero-free diagonals"
        );
        Self {
            levels,
            diags,
            b,
            smoothing_sweeps,
            omega,
            tolerance,
            max_iterations,
        }
    }

    /// Number of levels in the hierarchy.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The fine-level operator.
    #[must_use]
    pub fn operator(&self) -> &A {
        &self.levels[0].a
    }

    /// The fine-level right-hand side.
    #[must_use]
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// Exact fine-level residual `b − Ax` (monitoring).
    #[must_use]
    pub fn exact_residual(&self, x: &[f64]) -> Vec<f64> {
        self.levels[0]
            .a
            .matvec_exact(x)
            .iter()
            .zip(&self.b)
            .map(|(&axi, &bi)| bi - axi)
            .collect()
    }

    /// One damped-Jacobi sweep of level `l`.
    fn smooth(&self, l: usize, x: &mut [f64], b: &[f64], ctx: &mut dyn ArithContext) {
        let n = x.len();
        let mut ax = vec![0.0; n];
        self.levels[l].a.apply(ctx, x, &mut ax);
        let mut r = vec![0.0; n];
        ctx.sub_slice(b, &ax, &mut r);
        let mut step = vec![0.0; n];
        for ((s, &ri), &di) in step.iter_mut().zip(&r).zip(&self.diags[l]) {
            *s = ctx.div(ri, di);
        }
        ctx.axpy_assign_slice(x, self.omega, &step);
    }

    /// Recursive V-cycle on level `l`.
    fn v_cycle(&self, l: usize, x: &mut [f64], b: &[f64], ctx: &mut dyn ArithContext) {
        let n = self.levels[l].a.order();
        if l + 1 == self.levels.len() {
            if n == 1 {
                // Exact solve of the 1×1 system.
                x[0] = ctx.div(b[0], self.diags[l][0]);
            } else {
                for _ in 0..4 * self.smoothing_sweeps {
                    self.smooth(l, x, b, ctx);
                }
            }
            return;
        }
        for _ in 0..self.smoothing_sweeps {
            self.smooth(l, x, b, ctx);
        }
        let mut ax = vec![0.0; n];
        self.levels[l].a.apply(ctx, x, &mut ax);
        let mut r = vec![0.0; n];
        ctx.sub_slice(b, &ax, &mut r);
        let rc = self.levels[l]
            .restrict
            .as_ref()
            .expect("validated at construction")
            .matvec(ctx, &r);
        let mut e = vec![0.0; rc.len()];
        self.v_cycle(l + 1, &mut e, &rc, ctx);
        let correction = self.levels[l]
            .prolong
            .as_ref()
            .expect("validated at construction")
            .matvec(ctx, &e);
        ctx.add_assign_slice(x, &correction);
        for _ in 0..self.smoothing_sweeps {
            self.smooth(l, x, b, ctx);
        }
    }
}

impl OperatorMultigrid<CsrMatrix> {
    /// Build the classical Poisson hierarchy on an `n × n` interior
    /// grid (homogeneous Dirichlet): unscaled 5-point stencils at every
    /// level ([`CsrMatrix::poisson5`]), full-weighting restriction with
    /// the inter-level factor 4 folded into its weights, bilinear
    /// prolongation, and `b = h²·f` for the given source.
    ///
    /// # Panics
    /// Panics if `n + 1` is not a power of two (the hierarchy must
    /// coarsen down to a single point) or any of the scalar parameters
    /// is out of range (see [`OperatorMultigrid::new`]).
    #[must_use]
    pub fn poisson(
        n: usize,
        source: PoissonSource,
        smoothing_sweeps: usize,
        tolerance: f64,
        max_iterations: usize,
    ) -> Self {
        assert!(
            (n + 1).is_power_of_two() && n >= 1,
            "grid size must be 2^k - 1 (got {n})"
        );
        let fine = PoissonJacobi::new(n, source, 0.8, tolerance, max_iterations);
        let h = fine.spacing();
        let b: Vec<f64> = fine.rhs_values().iter().map(|&f| h * h * f).collect();

        let mut levels = Vec::new();
        let mut size = n;
        loop {
            let a = CsrMatrix::poisson5(size, size);
            if size == 1 {
                levels.push(MgLevel {
                    a,
                    restrict: None,
                    prolong: None,
                });
                break;
            }
            levels.push(MgLevel {
                a,
                restrict: Some(full_weighting(size)),
                prolong: Some(bilinear_prolongation(size)),
            });
            size = (size - 1) / 2;
        }
        Self::new(levels, b, smoothing_sweeps, 0.8, tolerance, max_iterations)
    }
}

/// Full-weighting restriction from an `n × n` interior grid to its
/// `(n−1)/2` coarsening, with the factor 4 relating the unscaled fine
/// and coarse stencils folded in: net stencil `¼·[1 2 1; 2 4 2; 1 2 1]`
/// (all weights exact binary fractions).
fn full_weighting(n: usize) -> CsrMatrix {
    let nc = (n - 1) / 2;
    let mut triplets = Vec::with_capacity(9 * nc * nc);
    for ci in 0..nc {
        for cj in 0..nc {
            let row = ci * nc + cj;
            let (fi, fj) = ((2 * ci + 1) as isize, (2 * cj + 1) as isize);
            for (di, dj, w) in [
                (0, 0, 1.0),
                (-1, 0, 0.5),
                (1, 0, 0.5),
                (0, -1, 0.5),
                (0, 1, 0.5),
                (-1, -1, 0.25),
                (-1, 1, 0.25),
                (1, -1, 0.25),
                (1, 1, 0.25),
            ] {
                let (i, j) = (fi + di, fj + dj);
                if i >= 0 && j >= 0 && i < n as isize && j < n as isize {
                    triplets.push((row, (i * n as isize + j) as usize, w));
                }
            }
        }
    }
    CsrMatrix::from_triplets(nc * nc, n * n, &triplets)
}

/// Bilinear prolongation from the `(n−1)/2` interior grid back to `n`:
/// coincident nodes copy, edge midpoints average two coarse neighbours,
/// cell centers average four (weights 1, ½, ¼ — exact binary).
fn bilinear_prolongation(n: usize) -> CsrMatrix {
    let nc = (n - 1) / 2;
    let mut triplets = Vec::with_capacity(4 * n * n);
    let push =
        |triplets: &mut Vec<(usize, usize, f64)>, row: usize, ci: isize, cj: isize, w: f64| {
            if ci >= 0 && cj >= 0 && ci < nc as isize && cj < nc as isize {
                triplets.push((row, (ci * nc as isize + cj) as usize, w));
            }
        };
    for fi in 0..n as isize {
        for fj in 0..n as isize {
            let row = (fi * n as isize + fj) as usize;
            match (fi % 2 == 1, fj % 2 == 1) {
                (true, true) => push(&mut triplets, row, (fi - 1) / 2, (fj - 1) / 2, 1.0),
                (true, false) => {
                    let ci = (fi - 1) / 2;
                    push(&mut triplets, row, ci, fj / 2 - 1, 0.5);
                    push(&mut triplets, row, ci, fj / 2, 0.5);
                }
                (false, true) => {
                    let cj = (fj - 1) / 2;
                    push(&mut triplets, row, fi / 2 - 1, cj, 0.5);
                    push(&mut triplets, row, fi / 2, cj, 0.5);
                }
                (false, false) => {
                    push(&mut triplets, row, fi / 2 - 1, fj / 2 - 1, 0.25);
                    push(&mut triplets, row, fi / 2, fj / 2 - 1, 0.25);
                    push(&mut triplets, row, fi / 2 - 1, fj / 2, 0.25);
                    push(&mut triplets, row, fi / 2, fj / 2, 0.25);
                }
            }
        }
    }
    CsrMatrix::from_triplets(n * n, nc * nc, &triplets)
}

impl<A: LinearOperator> IterativeMethod for OperatorMultigrid<A> {
    type State = Vec<f64>;

    fn name(&self) -> &str {
        "operator-multigrid"
    }

    fn initial_state(&self) -> Vec<f64> {
        vec![0.0; self.b.len()]
    }

    /// One V-cycle.
    fn step(&self, u: &Vec<f64>, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let mut next = u.clone();
        self.v_cycle(0, &mut next, &self.b, ctx);
        next
    }

    /// Exact fine-level residual 2-norm `‖b − Ax‖₂`.
    fn objective(&self, u: &Vec<f64>) -> f64 {
        vector::norm2_exact(&self.exact_residual(u))
    }

    fn gradient(&self, u: &Vec<f64>) -> Option<Vec<f64>> {
        Some(self.exact_residual(u).iter().map(|r| -r).collect())
    }

    fn params(&self, u: &Vec<f64>) -> Vec<f64> {
        u.clone()
    }

    fn converged(&self, prev: &Vec<f64>, next: &Vec<f64>) -> bool {
        prev.iter()
            .zip(next)
            .all(|(&a, &b)| (a - b).abs() < self.tolerance)
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{EnergyProfile, ExactContext};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    #[test]
    fn v_cycles_converge_to_the_analytic_solution() {
        let mg =
            OperatorMultigrid::poisson(15, PoissonSource::Sine { amplitude: 8.0 }, 2, 1e-8, 60);
        assert_eq!(mg.depth(), 4); // 15 → 7 → 3 → 1
        let mut ctx = ExactContext::with_profile(profile());
        let mut u = mg.initial_state();
        for _ in 0..25 {
            u = mg.step(&u, &mut ctx);
        }
        let fine = PoissonJacobi::new(15, PoissonSource::Sine { amplitude: 8.0 }, 0.8, 1e-8, 60);
        let truth = fine.sine_solution(8.0);
        let err = u
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 0.15, "max error {err}");
    }

    #[test]
    fn residual_contracts_per_cycle() {
        let mg = OperatorMultigrid::poisson(
            15,
            PoissonSource::Point {
                x: 0.5,
                y: 0.5,
                strength: 4.0,
            },
            2,
            1e-10,
            40,
        );
        let mut ctx = ExactContext::with_profile(profile());
        let mut u = mg.initial_state();
        let mut prev = mg.objective(&u);
        for _ in 0..6 {
            u = mg.step(&u, &mut ctx);
            let cur = mg.objective(&u);
            assert!(cur < 0.5 * prev, "residual {cur} vs previous {prev}");
            prev = cur;
        }
    }

    #[test]
    fn transfer_shapes_chain_through_the_hierarchy() {
        let mg = OperatorMultigrid::poisson(7, PoissonSource::Sine { amplitude: 1.0 }, 1, 1e-6, 10);
        assert_eq!(mg.depth(), 3);
        assert_eq!(mg.operator().order(), 49);
    }

    #[test]
    #[should_panic(expected = "grid size must be")]
    fn non_power_of_two_grid_panics() {
        let _ = OperatorMultigrid::poisson(10, PoissonSource::Sine { amplitude: 1.0 }, 1, 1e-6, 10);
    }

    #[test]
    #[should_panic(expected = "needs a restriction")]
    fn missing_transfer_panics() {
        let fine = MgLevel {
            a: CsrMatrix::poisson5(3, 3),
            restrict: None,
            prolong: None,
        };
        let coarse = MgLevel {
            a: CsrMatrix::poisson5(1, 1),
            restrict: None,
            prolong: None,
        };
        let _ = OperatorMultigrid::new(vec![fine, coarse], vec![0.1; 9], 1, 0.8, 1e-6, 10);
    }
}
