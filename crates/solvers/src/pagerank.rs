//! Personalized PageRank by local residual push over a [`CsrMatrix`]
//! adjacency structure.
//!
//! The Andersen–Chung–Lang push method maintains an estimate `x` and a
//! residual `r` with the invariant `x + αR(r) = π` (the personalized
//! PageRank vector for the seed). A *push* at node `u` moves `α·r[u]`
//! into `x[u]` and spreads `(1−α)·r[u]/deg(u)` to the out-neighbours of
//! `u`; pushing only nodes whose residual exceeds `ε·deg(u)` touches a
//! small neighbourhood of the seed instead of the whole graph.
//!
//! Here one [`IterativeMethod::step`] is one sweep over the residual
//! queue captured at sweep start, with every push running on the
//! arithmetic context — the pushes are the error-resilient bulk of the
//! work, exactly the part ApproxIt degrades. The quality metric is the
//! **residual mass** `‖r‖₁`, where `r` is *recomputed exactly from the
//! estimate* via the push invariant `r = (α·e_s − (I − (1−α)Mᵀ)x)/α`:
//! it bounds the personalized PageRank error (`‖π − x‖∞ ≤ ε·maxdeg` at
//! convergence, and more generally the unpushed mass) and decreases
//! monotonically under exact arithmetic — precisely the shape of
//! objective the runner's acceptance test wants. Recomputing rather
//! than trusting the stored residual matters under approximation: a
//! truncating datapath can silently *destroy* stored residual mass
//! (a push whose spread quantizes to zero), which would make quality
//! look perfect while the estimate is garbage. When that happens the
//! sweep re-anchors the stored residual from the exact invariant, so
//! approximate runs cannot terminate with phantom convergence.

use approx_arith::{endorse, ArithContext};
use approx_linalg::{CsrMatrix, LinearOperator};

use crate::method::IterativeMethod;

/// Iterate of the push method: the estimate, the residual, and the
/// queue of nodes whose residual exceeded the push threshold at the end
/// of the previous sweep.
#[derive(Debug, Clone)]
pub struct PprState {
    /// PageRank estimate `x` (one entry per node).
    pub x: Vec<f64>,
    /// Residual vector `r` (one entry per node).
    pub r: Vec<f64>,
    /// Nodes scheduled for the next sweep.
    pub active: Vec<usize>,
}

/// Personalized PageRank on an unweighted directed graph, as an
/// [`IterativeMethod`] driven by local residual pushes.
///
/// The graph is given as a [`CsrMatrix`] whose *structure* is the
/// adjacency: row `u` lists the out-neighbours of `u`. Stored values
/// are ignored — only the column pattern matters — and every node must
/// have at least one out-neighbour (no dangling nodes).
///
/// # Example
///
/// ```
/// use approx_arith::ExactContext;
/// use approx_linalg::CsrMatrix;
/// use iter_solvers::{IterativeMethod, PersonalizedPageRank};
///
/// // Directed 3-cycle: 0 → 1 → 2 → 0.
/// let adj = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
/// let ppr = PersonalizedPageRank::new(adj, 0, 0.15, 1e-8, 200);
/// let mut ctx = ExactContext::new();
/// let mut state = ppr.initial_state();
/// while !state.active.is_empty() {
///     state = ppr.step(&state, &mut ctx);
/// }
/// // All residual mass has been pushed into the estimate.
/// assert!(ppr.objective(&state) < 3.0 * 1e-8);
/// let total: f64 = state.x.iter().sum();
/// assert!((total - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct PersonalizedPageRank {
    adj: CsrMatrix,
    /// Out-degrees, captured from the adjacency structure.
    deg: Vec<f64>,
    seed: usize,
    alpha: f64,
    eps: f64,
    max_iterations: usize,
}

impl PersonalizedPageRank {
    /// Create a push solver for the seed node.
    ///
    /// `alpha` is the teleport probability in `(0, 1)`; `eps` is the
    /// push threshold (a node is pushed while `r[u] ≥ ε·deg(u)`).
    ///
    /// # Panics
    /// Panics if the adjacency is not square, the seed is out of range,
    /// any node has no out-neighbour, `alpha` is outside `(0, 1)`,
    /// `eps` is not positive, or `max_iterations` is 0.
    #[must_use]
    pub fn new(adj: CsrMatrix, seed: usize, alpha: f64, eps: f64, max_iterations: usize) -> Self {
        let n = adj.order();
        assert!(seed < n, "seed {seed} out of range for {n} nodes");
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "teleport probability must be in (0, 1) (got {alpha})"
        );
        assert!(eps > 0.0, "push threshold must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        let deg: Vec<f64> = adj
            .row_pointers()
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .collect();
        assert!(
            deg.iter().all(|&d| d > 0.0),
            "every node needs at least one out-neighbour"
        );
        Self {
            adj,
            deg,
            seed,
            alpha,
            eps,
            max_iterations,
        }
    }

    /// The adjacency structure.
    #[must_use]
    pub fn graph(&self) -> &CsrMatrix {
        &self.adj
    }

    /// The seed node.
    #[must_use]
    pub fn seed(&self) -> usize {
        self.seed
    }

    /// The push threshold `ε`.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Exact residual implied by the estimate via the push invariant
    /// `r = (α·e_s − (I − (1−α)Mᵀ)x)/α`, where `M` is the column
    /// -stochastic walk matrix (monitoring; plain `f64`, independent of
    /// the possibly-corrupted stored residual).
    #[must_use]
    pub fn exact_residual(&self, x: &[f64]) -> Vec<f64> {
        let n = self.adj.order();
        let rp = self.adj.row_pointers();
        let cols = self.adj.col_indices();
        let mut r = vec![0.0; n];
        r[self.seed] = 1.0;
        let scale = (1.0 - self.alpha) / self.alpha;
        for u in 0..n {
            r[u] -= x[u] / self.alpha;
            let share = scale * x[u] / self.deg[u];
            for &v in &cols[rp[u]..rp[u + 1]] {
                r[v] += share;
            }
        }
        r
    }

    /// Residual mass `‖r‖₁` of the exact recomputed residual
    /// (monitoring/quality).
    #[must_use]
    pub fn residual_mass(&self, state: &PprState) -> f64 {
        self.exact_residual(&state.x).iter().map(|&v| v.abs()).sum()
    }

    /// Whether node `u` is due for a push under the threshold rule.
    ///
    /// The residual read is [`endorse`]d: the threshold comparison is a
    /// deliberate exact read of approximate state — it steers *which*
    /// pushes happen, never the pushed values themselves.
    fn due(&self, r: &[f64], u: usize) -> bool {
        endorse(r[u]) >= self.eps * self.deg[u]
    }
}

impl IterativeMethod for PersonalizedPageRank {
    type State = PprState;

    fn name(&self) -> &str {
        "pagerank-push"
    }

    fn initial_state(&self) -> PprState {
        let n = self.adj.order();
        let mut r = vec![0.0; n];
        r[self.seed] = 1.0;
        let active = if self.due(&r, self.seed) {
            vec![self.seed]
        } else {
            Vec::new()
        };
        PprState {
            x: vec![0.0; n],
            r,
            active,
        }
    }

    /// One sweep: push every node queued at sweep start (re-checking
    /// the threshold at pop time), then rebuild the queue.
    fn step(&self, state: &PprState, ctx: &mut dyn ArithContext) -> PprState {
        let mut next = state.clone();
        let queue = std::mem::take(&mut next.active);
        let one_minus_alpha = 1.0 - self.alpha;
        for &u in &queue {
            if !self.due(&next.r, u) {
                continue;
            }
            let ru = next.r[u];
            next.r[u] = 0.0;
            // x[u] ← x[u] + α·r[u]
            let gain = ctx.mul(self.alpha, ru);
            next.x[u] = ctx.add(next.x[u], gain);
            // Spread (1−α)·r[u]/deg(u) to the out-neighbours.
            let mass = ctx.mul(one_minus_alpha, ru);
            let spread = ctx.div(mass, self.deg[u]);
            let (lo, hi) = {
                let rp = self.adj.row_pointers();
                (rp[u], rp[u + 1])
            };
            for &v in &self.adj.col_indices()[lo..hi] {
                next.r[v] = ctx.add(next.r[v], spread);
            }
        }
        next.active = (0..self.adj.order())
            .filter(|&u| self.due(&next.r, u))
            .collect();
        // audit:allow(taint-branch, the local-push work queue is by design rebuilt from fabric residuals; due() endorses each read and the empty-queue branch re-anchors against the exact invariant before convergence is accepted)
        if next.active.is_empty() {
            // The stored residual says we are done. Under approximation
            // that can be phantom convergence (truncated pushes destroy
            // stored mass), so re-anchor the residual from the exact
            // invariant before accepting an empty queue.
            next.r = self.exact_residual(&next.x);
            next.active = (0..self.adj.order())
                .filter(|&u| self.due(&next.r, u))
                .collect();
        }
        next
    }

    /// Residual mass `‖r‖₁` of the exact recomputed residual — monotone
    /// decreasing under exact arithmetic.
    fn objective(&self, state: &PprState) -> f64 {
        self.residual_mass(state)
    }

    fn params(&self, state: &PprState) -> Vec<f64> {
        state.x.clone()
    }

    fn converged(&self, _prev: &PprState, next: &PprState) -> bool {
        next.active.is_empty()
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use approx_arith::{
        AccuracyLevel, EnergyProfile, ExactContext, LowPartPolicy, QFormat, QcsAdder, QcsContext,
    };

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn run(ppr: &PersonalizedPageRank, ctx: &mut dyn ArithContext) -> PprState {
        let mut state = ppr.initial_state();
        for _ in 0..ppr.max_iterations() {
            let next = ppr.step(&state, ctx);
            let done = ppr.converged(&state, &next);
            state = next;
            if done {
                break;
            }
        }
        state
    }

    #[test]
    fn residual_mass_decreases_and_estimate_sums_to_one() {
        let adj = datasets::ring_with_chords(64, 3, 7);
        let ppr = PersonalizedPageRank::new(adj, 5, 0.15, 1e-7, 500);
        let mut ctx = ExactContext::with_profile(profile());
        let mut state = ppr.initial_state();
        let mut prev_mass = ppr.objective(&state);
        while !state.active.is_empty() {
            state = ppr.step(&state, &mut ctx);
            let mass = ppr.objective(&state);
            assert!(mass < prev_mass, "residual mass must strictly decrease");
            prev_mass = mass;
        }
        let total: f64 = state.x.iter().sum::<f64>() + prev_mass;
        assert!((total - 1.0).abs() < 1e-9, "mass conservation: {total}");
    }

    #[test]
    fn push_matches_power_iteration_within_residual_bound() {
        let adj = datasets::ring_with_chords(40, 2, 11);
        let alpha = 0.2;
        let eps = 1e-9;
        let ppr = PersonalizedPageRank::new(adj.clone(), 0, alpha, eps, 2000);
        let mut ctx = ExactContext::with_profile(profile());
        let state = run(&ppr, &mut ctx);

        // Dense power iteration on the same chain as reference.
        let n = adj.order();
        let mut pi = vec![0.0; n];
        pi[0] = 1.0;
        for _ in 0..4000 {
            let mut nextpi = vec![0.0; n];
            nextpi[0] = alpha;
            for u in 0..n {
                let rp = adj.row_pointers();
                let share = (1.0 - alpha) * pi[u] / (rp[u + 1] - rp[u]) as f64;
                for &v in &adj.col_indices()[rp[u]..rp[u + 1]] {
                    nextpi[v] += share;
                }
            }
            pi = nextpi;
        }
        let maxdeg = adj
            .row_pointers()
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap() as f64;
        for (a, b) in state.x.iter().zip(&pi) {
            assert!((a - b).abs() <= eps * maxdeg + 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn approximate_push_still_drains_the_queue() {
        let adj = datasets::ring_with_chords(48, 2, 3);
        let ppr = PersonalizedPageRank::new(adj, 10, 0.15, 1e-5, 1000);
        // Level4 keeps the truncation quantum (2^(6-32)) below the push
        // threshold so the queue can drain; coarser levels stall — the
        // situation the online controller exists to escalate out of.
        let adder = QcsAdder::with_policy(
            QFormat::Q31_32.width(),
            [36, 24, 12, 6],
            LowPartPolicy::Zero,
        );
        let mut ctx = QcsContext::new(adder, QFormat::Q31_32, profile());
        ctx.set_level(AccuracyLevel::Level4);
        let state = run(&ppr, &mut ctx);
        assert!(state.active.is_empty(), "queue must drain");
        let mass = ppr.residual_mass(&state);
        assert!(mass < 0.05, "approximate residual mass {mass}");
    }

    #[test]
    #[should_panic(expected = "out-neighbour")]
    fn dangling_node_panics() {
        // Node 1 has no outgoing edge.
        let adj = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        let _ = PersonalizedPageRank::new(adj, 0, 0.15, 1e-6, 10);
    }
}
