//! ℓ2-regularized logistic regression fitted by IRLS.
//!
//! Iteratively reweighted least squares is Newton's method applied to
//! the logistic log-likelihood — the second-order iterative method the
//! paper names alongside gradient descent (§3.2). Each iteration solves
//! a weighted normal-equation system (error-sensitive, exact) and
//! applies the Newton update on the approximate datapath, so the
//! framework's update-error machinery is exercised by a genuinely
//! different iteration structure than the gradient methods.

use approx_arith::ArithContext;
use approx_linalg::{decomp, vector, Matrix};

use crate::method::IterativeMethod;

/// Logistic regression (labels ±1) trained by damped IRLS/Newton, as an
/// [`IterativeMethod`].
///
/// # Example
///
/// ```
/// use approx_arith::{EnergyProfile, ExactContext};
/// use iter_solvers::rng::Pcg32;
/// use iter_solvers::{IterativeMethod, LogisticIrls};
///
/// // Two separable 1-D classes.
/// let mut rng = Pcg32::seeded(3, 0);
/// let mut features = Vec::new();
/// let mut labels = Vec::new();
/// for sign in [-1.0f64, 1.0] {
///     for _ in 0..40 {
///         features.push(vec![rng.gaussian(2.0 * sign, 0.8), 1.0]);
///         labels.push(sign);
///     }
/// }
/// let model = LogisticIrls::new(features, labels, 1e-2, 1e-9, 50);
/// let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
/// let mut ctx = ExactContext::with_profile(profile);
/// let mut w = model.initial_state();
/// for _ in 0..10 {
///     w = model.step(&w, &mut ctx);
/// }
/// assert!(model.accuracy(&w) > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct LogisticIrls {
    features: Vec<Vec<f64>>,
    labels: Vec<f64>,
    ridge: f64,
    tolerance: f64,
    max_iterations: usize,
}

impl LogisticIrls {
    /// Create a model over feature rows and ±1 labels.
    ///
    /// # Panics
    /// Panics if the data is empty or ragged, a label is not ±1, the
    /// ridge or tolerance is not positive, or `max_iterations` is 0.
    #[must_use]
    pub fn new(
        features: Vec<Vec<f64>>,
        labels: Vec<f64>,
        ridge: f64,
        tolerance: f64,
        max_iterations: usize,
    ) -> Self {
        assert!(!features.is_empty(), "at least one sample is required");
        let d = features[0].len();
        assert!(d > 0, "at least one feature is required");
        assert!(features.iter().all(|r| r.len() == d), "ragged features");
        assert_eq!(features.len(), labels.len(), "one label per sample");
        assert!(
            labels.iter().all(|&y| y == 1.0 || y == -1.0),
            "labels must be +1 or -1"
        );
        assert!(ridge > 0.0, "ridge must be positive");
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        Self {
            features,
            labels,
            ridge,
            tolerance,
            max_iterations,
        }
    }

    /// Feature dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.features[0].len()
    }

    /// Training accuracy of a weight vector.
    #[must_use]
    pub fn accuracy(&self, w: &[f64]) -> f64 {
        let correct = self
            .features
            .iter()
            .zip(&self.labels)
            .filter(|(x, &y)| vector::dot_exact(x, w) * y > 0.0)
            .count();
        correct as f64 / self.labels.len() as f64
    }

    fn sigmoid(z: f64) -> f64 {
        1.0 / (1.0 + (-z).exp())
    }
}

impl IterativeMethod for LogisticIrls {
    type State = Vec<f64>;

    fn name(&self) -> &str {
        "logistic-irls"
    }

    fn initial_state(&self) -> Vec<f64> {
        vec![0.0; self.dim()]
    }

    fn step(&self, w: &Vec<f64>, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let d = self.dim();
        let n = self.labels.len() as f64;
        // Gradient accumulation on the approximate datapath.
        let mut grad = vec![0.0; d];
        // Hessian (XᵀWX) built exactly — it feeds a pivoted solve.
        let mut hess = Matrix::zeros(d, d);
        for (x, &y) in self.features.iter().zip(&self.labels) {
            let margin = ctx.dot(x, w);
            let prob = Self::sigmoid(y * margin); // exact transcendental
            let coeff = -y * (1.0 - prob) / n;
            vector::axpy_assign(ctx, &mut grad, coeff, x);
            let weight = prob * (1.0 - prob) / n;
            for i in 0..d {
                for j in 0..d {
                    hess[(i, j)] += weight * x[i] * x[j];
                }
            }
        }
        vector::axpy_assign(ctx, &mut grad, self.ridge, w);
        for i in 0..d {
            hess[(i, i)] += self.ridge;
        }
        // Newton direction: exact solve (error-sensitive kernel), update
        // on the datapath.
        let direction = decomp::solve(&hess, &grad).unwrap_or_else(|_| grad.clone());
        vector::axpy(ctx, -1.0, &direction, w)
    }

    /// Mean regularized logistic loss (exact).
    fn objective(&self, w: &Vec<f64>) -> f64 {
        let n = self.labels.len() as f64;
        let loss: f64 = self
            .features
            .iter()
            .zip(&self.labels)
            .map(|(x, &y)| {
                let margin = vector::dot_exact(x, w);
                // ln(1 + e^{-ym}) computed stably.
                let z = -y * margin;
                if z > 30.0 {
                    z
                } else {
                    z.exp().ln_1p()
                }
            })
            .sum::<f64>()
            / n;
        loss + 0.5 * self.ridge * vector::dot_exact(w, w)
    }

    fn gradient(&self, w: &Vec<f64>) -> Option<Vec<f64>> {
        let d = self.dim();
        let n = self.labels.len() as f64;
        let mut g = vec![0.0; d];
        for (x, &y) in self.features.iter().zip(&self.labels) {
            let margin = vector::dot_exact(x, w);
            let coeff = -y * (1.0 - Self::sigmoid(y * margin)) / n;
            for (gi, &xi) in g.iter_mut().zip(x) {
                *gi += coeff * xi;
            }
        }
        for (gi, &wi) in g.iter_mut().zip(w) {
            *gi += self.ridge * wi;
        }
        Some(g)
    }

    fn params(&self, w: &Vec<f64>) -> Vec<f64> {
        w.clone()
    }

    fn converged(&self, prev: &Vec<f64>, next: &Vec<f64>) -> bool {
        prev.iter()
            .zip(next)
            .all(|(&a, &b)| (a - b).abs() < self.tolerance)
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;
    use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, ExactContext, QcsContext};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn two_blobs(n: usize, gap: f64, seed: u64) -> LogisticIrls {
        let mut rng = Pcg32::seeded(seed, 0);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for sign in [-1.0f64, 1.0] {
            for _ in 0..n {
                features.push(vec![
                    rng.gaussian(sign * gap, 1.0),
                    rng.gaussian(sign * gap * 0.6, 1.0),
                    1.0,
                ]);
                labels.push(sign);
            }
        }
        LogisticIrls::new(features, labels, 1e-2, 1e-9, 100)
    }

    fn run<M: IterativeMethod>(m: &M, ctx: &mut dyn ArithContext) -> (M::State, usize) {
        let mut state = m.initial_state();
        for i in 0..m.max_iterations() {
            let next = m.step(&state, ctx);
            let done = m.converged(&state, &next);
            state = next;
            if done {
                return (state, i + 1);
            }
        }
        (state, m.max_iterations())
    }

    #[test]
    fn irls_converges_in_few_iterations() {
        let model = two_blobs(80, 1.5, 7);
        let mut ctx = ExactContext::with_profile(profile());
        let (w, iters) = run(&model, &mut ctx);
        assert!(iters < 25, "IRLS took {iters} iterations");
        assert!(model.accuracy(&w) > 0.9, "accuracy {}", model.accuracy(&w));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let model = two_blobs(30, 1.0, 11);
        let w = vec![0.3, -0.2, 0.1];
        let g = model.gradient(&w).expect("gradient available");
        let h = 1e-6;
        for i in 0..3 {
            let mut wp = w.clone();
            wp[i] += h;
            let mut wm = w.clone();
            wm[i] -= h;
            let fd = (model.objective(&wp) - model.objective(&wm)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-5, "dim {i}: {fd} vs {}", g[i]);
        }
    }

    #[test]
    fn gradient_vanishes_at_convergence() {
        let model = two_blobs(60, 1.2, 13);
        let mut ctx = ExactContext::with_profile(profile());
        let (w, _) = run(&model, &mut ctx);
        let g = model.gradient(&w).expect("gradient available");
        assert!(vector::norm2_exact(&g) < 1e-7);
    }

    #[test]
    fn objective_decreases_under_exact_irls() {
        let model = two_blobs(50, 1.0, 17);
        let mut ctx = ExactContext::with_profile(profile());
        let mut w = model.initial_state();
        let mut prev = model.objective(&w);
        for _ in 0..8 {
            w = model.step(&w, &mut ctx);
            let f = model.objective(&w);
            assert!(f <= prev + 1e-9, "loss rose {prev} -> {f}");
            prev = f;
        }
    }

    #[test]
    fn approximate_irls_preserves_classification_quality() {
        // Quantized Newton steps drift the coefficient *scale* (the
        // near-converged gradients fall below the approximation grid),
        // but the decision boundary — the quantity that matters — stays
        // put: accuracy tracks the exact fit.
        let model = two_blobs(60, 1.2, 19);
        let mut exact_ctx = ExactContext::with_profile(profile());
        let (w_exact, _) = run(&model, &mut exact_ctx);
        let exact_acc = model.accuracy(&w_exact);
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(AccuracyLevel::Level4);
        let (w4, iters) = run(&model, &mut ctx);
        assert!(iters < 100, "level4 IRLS never froze");
        let acc = model.accuracy(&w4);
        assert!(
            acc >= exact_acc - 0.03,
            "level4 accuracy {acc} vs exact {exact_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn non_binary_labels_panic() {
        let _ = LogisticIrls::new(vec![vec![1.0]], vec![0.5], 1e-2, 1e-9, 10);
    }
}
