//! Geometric multigrid V-cycles for the Poisson problem.
//!
//! Multigrid is the canonical *fast* iterative method: a few damped
//! Jacobi sweeps smooth the high-frequency error on each grid, the
//! residual is restricted to a coarser grid, solved recursively, and the
//! correction prolongated back. Convergence takes O(10) cycles
//! regardless of grid size — which stresses the ApproxIt machinery in
//! the opposite way from the slow solvers: there are few iterations,
//! each heavy, and the smoothing sweeps are naturally error-tolerant
//! while the coarse-grid solve is not.

use approx_arith::ArithContext;

use crate::method::IterativeMethod;
use crate::poisson::{PoissonJacobi, PoissonSource};

/// Multigrid V-cycle iteration for `−Δu = f` on the unit square
/// (homogeneous Dirichlet boundaries), as an [`IterativeMethod`].
///
/// The interior grid must be `2^k − 1` points per side so that the
/// coarsening hierarchy terminates at a single point. The smoothing
/// sweeps run on the arithmetic context (the error-resilient part); the
/// inter-grid transfers use exact scalar constants but context-routed
/// accumulations.
///
/// # Example
///
/// ```
/// use approx_arith::{EnergyProfile, ExactContext};
/// use iter_solvers::{IterativeMethod, MultigridPoisson, PoissonSource};
///
/// let mg = MultigridPoisson::new(15, PoissonSource::Sine { amplitude: 8.0 }, 2, 1e-7, 50);
/// let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
/// let mut ctx = ExactContext::with_profile(profile);
/// let mut u = mg.initial_state();
/// for _ in 0..12 {
///     u = mg.step(&u, &mut ctx); // each step is one V-cycle
/// }
/// let center = u[(15 * 15) / 2];
/// assert!((center - 8.0).abs() < 0.5, "center {center}");
/// ```
#[derive(Debug, Clone)]
pub struct MultigridPoisson {
    /// The fine-grid problem (provides the rhs, residual and objective).
    fine: PoissonJacobi,
    n: usize,
    smoothing_sweeps: usize,
    tolerance: f64,
    max_iterations: usize,
}

/// Reusable length-`n` scratch rows for the row-wise stencil kernels:
/// a zero boundary row, the west/east shifted copies, and the neighbour
/// accumulator.
struct StencilScratch {
    zeros: Vec<f64>,
    left: Vec<f64>,
    right: Vec<f64>,
    acc: Vec<f64>,
}

impl StencilScratch {
    fn new(n: usize) -> Self {
        Self {
            zeros: vec![0.0; n],
            left: vec![0.0; n],
            right: vec![0.0; n],
            acc: vec![0.0; n],
        }
    }
}

impl MultigridPoisson {
    /// Create a V-cycle solver on an `n × n` interior grid.
    ///
    /// # Panics
    /// Panics if `n + 1` is not a power of two (the hierarchy must
    /// coarsen cleanly), `smoothing_sweeps` is 0, the tolerance is not
    /// positive, or `max_iterations` is 0.
    #[must_use]
    pub fn new(
        n: usize,
        source: PoissonSource,
        smoothing_sweeps: usize,
        tolerance: f64,
        max_iterations: usize,
    ) -> Self {
        assert!(
            (n + 1).is_power_of_two() && n >= 1,
            "grid size must be 2^k - 1 (got {n})"
        );
        assert!(smoothing_sweeps > 0, "at least one smoothing sweep");
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "iteration budget must be positive");
        let fine = PoissonJacobi::new(n, source, 0.8, tolerance, max_iterations);
        Self {
            fine,
            n,
            smoothing_sweeps,
            tolerance,
            max_iterations,
        }
    }

    /// The fine-grid problem (for residuals and analytic solutions).
    #[must_use]
    pub fn fine_problem(&self) -> &PoissonJacobi {
        &self.fine
    }

    /// Accumulate the four 5-point-stencil neighbours of every cell in
    /// row `i` into `scratch.acc`, at slice granularity: `acc = u_N +
    /// u_S + u_W + u_E` with homogeneous Dirichlet (zero) boundaries.
    fn neighbor_sums(
        u: &[f64],
        n: usize,
        i: usize,
        scratch: &mut StencilScratch,
        ctx: &mut dyn ArithContext,
    ) {
        let row = &u[i * n..(i + 1) * n];
        let up = if i == 0 {
            &scratch.zeros[..]
        } else {
            &u[(i - 1) * n..i * n]
        };
        let down = if i + 1 == n {
            &scratch.zeros[..]
        } else {
            &u[(i + 1) * n..(i + 2) * n]
        };
        scratch.left[0] = 0.0;
        scratch.left[1..].copy_from_slice(&row[..n - 1]);
        scratch.right[n - 1] = 0.0;
        scratch.right[..n - 1].copy_from_slice(&row[1..]);
        ctx.add_slice(up, down, &mut scratch.acc);
        ctx.add_assign_slice(&mut scratch.acc, &scratch.left);
        ctx.add_assign_slice(&mut scratch.acc, &scratch.right);
    }

    /// One damped-Jacobi smoothing sweep of `A u = b` (scaled 5-point
    /// stencil with grid constant folded into `b`), row-by-row on the
    /// context's slice kernels.
    fn smooth(u: &mut Vec<f64>, b: &[f64], n: usize, ctx: &mut dyn ArithContext) {
        let omega = 0.8;
        let mut next = vec![0.0; n * n];
        let mut scratch = StencilScratch::new(n);
        let mut relaxed = vec![0.0; n];
        let mut kept = vec![0.0; n];
        let mut push = vec![0.0; n];
        for i in 0..n {
            Self::neighbor_sums(u, n, i, &mut scratch, ctx);
            ctx.add_assign_slice(&mut scratch.acc, &b[i * n..(i + 1) * n]);
            for (r, &a) in relaxed.iter_mut().zip(&scratch.acc) {
                *r = ctx.div(a, 4.0);
            }
            ctx.scale_slice(1.0 - omega, &u[i * n..(i + 1) * n], &mut kept);
            ctx.scale_slice(omega, &relaxed, &mut push);
            ctx.add_slice(&kept, &push, &mut next[i * n..(i + 1) * n]);
        }
        *u = next;
    }

    /// Residual `b − A u` on an `n × n` grid (context-routed, row-wise).
    fn residual(u: &[f64], b: &[f64], n: usize, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let mut r = vec![0.0; n * n];
        let mut scratch = StencilScratch::new(n);
        let mut four_u = vec![0.0; n];
        let mut au = vec![0.0; n];
        for i in 0..n {
            Self::neighbor_sums(u, n, i, &mut scratch, ctx);
            ctx.scale_slice(4.0, &u[i * n..(i + 1) * n], &mut four_u);
            ctx.sub_slice(&four_u, &scratch.acc, &mut au);
            ctx.sub_slice(&b[i * n..(i + 1) * n], &au, &mut r[i * n..(i + 1) * n]);
        }
        r
    }

    /// Full-weighting restriction to the `(n−1)/2` grid.
    fn restrict(fine: &[f64], n: usize, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let nc = (n - 1) / 2;
        let at = |i: isize, j: isize| -> f64 {
            let n = n as isize;
            if i < 0 || j < 0 || i >= n || j >= n {
                0.0
            } else {
                fine[(i * n + j) as usize]
            }
        };
        let mut coarse = vec![0.0; nc * nc];
        for ci in 0..nc as isize {
            for cj in 0..nc as isize {
                let (fi, fj) = (2 * ci + 1, 2 * cj + 1);
                // 1/16 [1 2 1; 2 4 2; 1 2 1] stencil.
                let mut acc = ctx.mul(4.0, at(fi, fj));
                for (di, dj, w) in [
                    (-1, 0, 2.0),
                    (1, 0, 2.0),
                    (0, -1, 2.0),
                    (0, 1, 2.0),
                    (-1, -1, 1.0),
                    (-1, 1, 1.0),
                    (1, -1, 1.0),
                    (1, 1, 1.0),
                ] {
                    let term = ctx.mul(w, at(fi + di, fj + dj));
                    acc = ctx.add(acc, term);
                }
                coarse[(ci * nc as isize + cj) as usize] = ctx.div(acc, 16.0);
            }
        }
        coarse
    }

    /// Bilinear prolongation from the `(n−1)/2` grid back to `n`.
    fn prolongate(coarse: &[f64], n: usize, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let nc = (n - 1) / 2;
        let at = |i: isize, j: isize| -> f64 {
            let nc = nc as isize;
            if i < 0 || j < 0 || i >= nc || j >= nc {
                0.0
            } else {
                coarse[(i * nc + j) as usize]
            }
        };
        let mut fine = vec![0.0; n * n];
        for fi in 0..n as isize {
            for fj in 0..n as isize {
                let idx = (fi * n as isize + fj) as usize;
                fine[idx] = match (fi % 2 == 1, fj % 2 == 1) {
                    // Coincident with a coarse node.
                    (true, true) => at((fi - 1) / 2, (fj - 1) / 2),
                    // Midpoint of a horizontal coarse edge.
                    (true, false) => {
                        let ci = (fi - 1) / 2;
                        let s = ctx.add(at(ci, fj / 2 - 1), at(ci, fj / 2));
                        ctx.div(s, 2.0)
                    }
                    // Midpoint of a vertical coarse edge.
                    (false, true) => {
                        let cj = (fj - 1) / 2;
                        let s = ctx.add(at(fi / 2 - 1, cj), at(fi / 2, cj));
                        ctx.div(s, 2.0)
                    }
                    // Cell center: average of the four coarse corners.
                    (false, false) => {
                        let mut s = ctx.add(at(fi / 2 - 1, fj / 2 - 1), at(fi / 2, fj / 2 - 1));
                        s = ctx.add(s, at(fi / 2 - 1, fj / 2));
                        s = ctx.add(s, at(fi / 2, fj / 2));
                        ctx.div(s, 4.0)
                    }
                };
            }
        }
        fine
    }

    /// Recursive V-cycle on `A u = b` for an `n × n` grid.
    fn v_cycle(&self, u: &mut Vec<f64>, b: &[f64], n: usize, ctx: &mut dyn ArithContext) {
        if n == 1 {
            // Exact solve of the 1×1 system: 4u = b.
            u[0] = ctx.div(b[0], 4.0);
            return;
        }
        for _ in 0..self.smoothing_sweeps {
            Self::smooth(u, b, n, ctx);
        }
        let r = Self::residual(u, b, n, ctx);
        let rc = Self::restrict(&r, n, ctx);
        let nc = (n - 1) / 2;
        // The coarse operator uses the same scaled stencil; restricting
        // the scaled residual absorbs the h² factor up to the constant
        // 4 that full weighting preserves for this operator.
        let mut rc_scaled = vec![0.0; nc * nc];
        ctx.scale_slice(4.0, &rc, &mut rc_scaled);
        let mut correction = vec![0.0; nc * nc];
        self.v_cycle(&mut correction, &rc_scaled, nc, ctx);
        let fine_correction = Self::prolongate(&correction, n, ctx);
        ctx.add_assign_slice(u, &fine_correction);
        for _ in 0..self.smoothing_sweeps {
            Self::smooth(u, b, n, ctx);
        }
    }
}

impl IterativeMethod for MultigridPoisson {
    type State = Vec<f64>;

    fn name(&self) -> &str {
        "poisson-multigrid"
    }

    fn initial_state(&self) -> Vec<f64> {
        vec![0.0; self.n * self.n]
    }

    /// One V-cycle.
    fn step(&self, u: &Vec<f64>, ctx: &mut dyn ArithContext) -> Vec<f64> {
        let h = self.fine.spacing();
        // b = h²·f, context-routed once per cycle.
        let mut b = vec![0.0; self.n * self.n];
        ctx.scale_slice(h * h, self.fine.rhs_values(), &mut b);
        let mut next = u.clone();
        self.v_cycle(&mut next, &b, self.n, ctx);
        next
    }

    fn objective(&self, u: &Vec<f64>) -> f64 {
        self.fine.objective(u)
    }

    fn gradient(&self, u: &Vec<f64>) -> Option<Vec<f64>> {
        self.fine.gradient(u)
    }

    fn params(&self, u: &Vec<f64>) -> Vec<f64> {
        u.clone()
    }

    fn converged(&self, prev: &Vec<f64>, next: &Vec<f64>) -> bool {
        prev.iter()
            .zip(next)
            .all(|(&a, &b)| (a - b).abs() < self.tolerance)
    }

    fn max_iterations(&self) -> usize {
        self.max_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{EnergyProfile, ExactContext};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    #[test]
    fn v_cycles_converge_to_the_analytic_solution() {
        let mg = MultigridPoisson::new(15, PoissonSource::Sine { amplitude: 8.0 }, 2, 1e-8, 60);
        let mut ctx = ExactContext::with_profile(profile());
        let mut u = mg.initial_state();
        for _ in 0..25 {
            u = mg.step(&u, &mut ctx);
        }
        let truth = mg.fine_problem().sine_solution(8.0);
        let err = u
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 0.15, "max error {err}");
    }

    #[test]
    fn multigrid_needs_far_fewer_iterations_than_jacobi() {
        let run_iters = |which: &str| -> usize {
            let mut ctx = ExactContext::with_profile(profile());
            match which {
                "mg" => {
                    let mg = MultigridPoisson::new(
                        15,
                        PoissonSource::Sine { amplitude: 8.0 },
                        2,
                        1e-7,
                        500,
                    );
                    let mut state = mg.initial_state();
                    for i in 0..500 {
                        let next = mg.step(&state, &mut ctx);
                        let done = mg.converged(&state, &next);
                        state = next;
                        if done {
                            return i + 1;
                        }
                    }
                    500
                }
                _ => {
                    let jac = PoissonJacobi::new(
                        15,
                        PoissonSource::Sine { amplitude: 8.0 },
                        0.9,
                        1e-7,
                        5000,
                    );
                    let mut state = jac.initial_state();
                    for i in 0..5000 {
                        let next = jac.step(&state, &mut ctx);
                        let done = jac.converged(&state, &next);
                        state = next;
                        if done {
                            return i + 1;
                        }
                    }
                    5000
                }
            }
        };
        let mg_iters = run_iters("mg");
        let jacobi_iters = run_iters("jacobi");
        assert!(
            mg_iters * 5 < jacobi_iters,
            "multigrid {mg_iters} vs jacobi {jacobi_iters}"
        );
    }

    #[test]
    fn restriction_and_prolongation_round_trip_smooth_fields() {
        // Restricting then prolongating a smooth field must stay close
        // to the original (the pair is an approximate identity on the
        // low-frequency subspace).
        let n = 15;
        let mg = MultigridPoisson::new(n, PoissonSource::Sine { amplitude: 1.0 }, 1, 1e-6, 10);
        let smooth = mg.fine_problem().sine_solution(1.0);
        let mut ctx = ExactContext::with_profile(profile());
        let coarse = MultigridPoisson::restrict(&smooth, n, &mut ctx);
        let back = MultigridPoisson::prolongate(&coarse, n, &mut ctx);
        let err = smooth
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 0.25, "round-trip error {err}");
    }

    #[test]
    #[should_panic(expected = "grid size must be")]
    fn non_power_of_two_grid_panics() {
        let _ = MultigridPoisson::new(10, PoissonSource::Sine { amplitude: 1.0 }, 1, 1e-6, 10);
    }
}
