//! Property-based tests over datasets, metrics, and solver invariants.
//!
//! Seed-driven on the in-repo `Pcg32` so the suite is hermetic and
//! bit-reproducible across platforms.

use approx_arith::rng::Pcg32;
use approx_arith::{EnergyProfile, ExactContext};
use iter_solvers::datasets::{ar_series, gaussian_blobs};
use iter_solvers::functions::{Objective, Quadratic, Rosenbrock};
use iter_solvers::metrics::{clustering_accuracy, hamming_distance, l2_error};
use iter_solvers::{GaussianMixture, IterativeMethod, KMeans};

const CASES: usize = 48;

fn ctx() -> ExactContext {
    ExactContext::with_profile(EnergyProfile::from_constants(
        [1.0, 2.0, 3.0, 4.0, 5.0],
        50.0,
        100.0,
    ))
}

fn random_labels(rng: &mut Pcg32, len: usize, k: u64) -> Vec<usize> {
    (0..len).map(|_| rng.below(k) as usize).collect()
}

#[test]
fn hamming_is_a_permutation_invariant_metric() {
    const RELABELS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [1, 2, 0],
        [2, 0, 1],
        [0, 2, 1],
        [1, 0, 2],
        [2, 1, 0],
    ];
    let mut rng = Pcg32::seeded(0x4A1, 0);
    for _ in 0..CASES {
        let len = 3 + rng.below(57) as usize;
        let labels = random_labels(&mut rng, len, 3);
        let relabel = RELABELS[rng.below(6) as usize];
        // Identity of indiscernibles and symmetry under label renaming.
        assert_eq!(hamming_distance(&labels, &labels, 3), 0);
        let renamed: Vec<usize> = labels.iter().map(|&l| relabel[l]).collect();
        assert_eq!(hamming_distance(&renamed, &labels, 3), 0);
        assert_eq!(clustering_accuracy(&renamed, &labels, 3), 1.0);
    }
}

#[test]
fn hamming_is_symmetric() {
    let mut rng = Pcg32::seeded(0x4A2, 0);
    for _ in 0..CASES {
        let n = 10 + rng.below(30) as usize;
        let a = random_labels(&mut rng, n, 3);
        let b = random_labels(&mut rng, n, 3);
        assert_eq!(hamming_distance(&a, &b, 3), hamming_distance(&b, &a, 3));
    }
}

#[test]
fn l2_error_is_a_metric() {
    let mut rng = Pcg32::seeded(0x12E, 0);
    for _ in 0..CASES {
        let n = 1 + rng.below(9) as usize;
        let x: Vec<f64> = (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect();
        assert_eq!(l2_error(&x, &x), 0.0);
        assert_eq!(l2_error(&x, &y), l2_error(&y, &x));
        assert!(l2_error(&x, &y) >= 0.0);
    }
}

#[test]
fn blob_generator_is_seed_deterministic_and_label_consistent() {
    let mut rng = Pcg32::seeded(0xB10B, 0);
    for _ in 0..CASES {
        let seed = rng.below(1000);
        let n = 5 + rng.below(35) as usize;
        let d1 = gaussian_blobs("p", &[n, n], &[vec![0.0], vec![50.0]], &[1.0, 1.0], seed);
        let d2 = gaussian_blobs("p", &[n, n], &[vec![0.0], vec![50.0]], &[1.0, 1.0], seed);
        assert_eq!(&d1, &d2);
        // With 50-sigma separation, labels are perfectly recoverable
        // from the sign of the coordinate.
        for (p, &l) in d1.points.iter().zip(&d1.labels) {
            assert_eq!(l, usize::from(p[0] > 25.0));
        }
    }
}

#[test]
fn ar_series_is_standardized_for_any_seed() {
    let mut rng = Pcg32::seeded(0xA55, 0);
    for _ in 0..CASES {
        let seed = rng.below(500);
        let s = ar_series("p", 300, &[0.5, 0.2], 1.0, seed);
        let n = s.values.len() as f64;
        let mean = s.values.iter().sum::<f64>() / n;
        let var = s
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }
}

#[test]
fn quadratic_value_is_minimal_at_minimizer() {
    let mut rng = Pcg32::seeded(0x9A4, 0);
    for _ in 0..CASES {
        let d = rng.uniform(0.5, 5.0);
        let off = rng.uniform(-3.0, 3.0);
        let probe = vec![rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)];
        let a = approx_linalg::Matrix::from_rows(&[&[d, 0.1], &[0.1, d + 0.5]]);
        let q = Quadratic::new(a, vec![off, -off]);
        let xs = q.minimizer();
        assert!(q.value(&xs) <= q.value(&probe) + 1e-9);
    }
}

#[test]
fn rosenbrock_is_nonnegative() {
    let mut rng = Pcg32::seeded(0x905E, 0);
    for _ in 0..CASES {
        let n = 2 + rng.below(4) as usize;
        let x: Vec<f64> = (0..n).map(|_| rng.uniform(-3.0, 3.0)).collect();
        let r = Rosenbrock::new(x.len());
        assert!(r.value(&x) >= 0.0);
    }
}

#[test]
fn em_objective_is_monotone_for_many_seeds() {
    for seed in [1u64, 2, 3, 4] {
        let data = gaussian_blobs(
            "mono",
            &[30, 30],
            &[vec![0.0, 0.0], vec![5.0, 4.0]],
            &[1.0, 1.0],
            seed,
        );
        let gmm = GaussianMixture::from_dataset(&data, 1e-8, 50, seed);
        let mut c = ctx();
        let mut state = gmm.initial_state();
        let mut prev = gmm.objective(&state);
        for _ in 0..15 {
            state = gmm.step(&state, &mut c);
            let f = gmm.objective(&state);
            assert!(f <= prev + 1e-9, "seed {seed}: NLL rose {prev} -> {f}");
            prev = f;
        }
    }
}

#[test]
fn kmeans_objective_is_monotone_for_many_seeds() {
    for seed in [5u64, 6, 7] {
        let data = gaussian_blobs(
            "km-mono",
            &[40, 40],
            &[vec![0.0, 0.0], vec![7.0, 7.0]],
            &[1.0, 1.0],
            seed,
        );
        let km = KMeans::from_dataset(&data, 1e-9, 50, seed);
        let mut c = ctx();
        let mut state = km.initial_state();
        let mut prev = km.objective(&state);
        for _ in 0..10 {
            state = km.step(&state, &mut c);
            let f = km.objective(&state);
            assert!(f <= prev + 1e-12, "seed {seed}");
            prev = f;
        }
    }
}
