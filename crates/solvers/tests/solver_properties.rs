//! Property-based tests over datasets, metrics, and solver invariants.

use approx_arith::{EnergyProfile, ExactContext};
use iter_solvers::datasets::{ar_series, gaussian_blobs};
use iter_solvers::functions::{Objective, Quadratic, Rosenbrock};
use iter_solvers::metrics::{clustering_accuracy, hamming_distance, l2_error};
use iter_solvers::{GaussianMixture, IterativeMethod, KMeans};
use proptest::prelude::*;

fn ctx() -> ExactContext {
    ExactContext::with_profile(EnergyProfile::from_constants(
        [1.0, 2.0, 3.0, 4.0, 5.0],
        50.0,
        100.0,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hamming_is_a_permutation_invariant_metric(
        labels in proptest::collection::vec(0usize..3, 3..60),
        relabel in proptest::sample::select(vec![[0usize, 1, 2], [1, 2, 0], [2, 0, 1], [0, 2, 1], [1, 0, 2], [2, 1, 0]]),
    ) {
        // Identity of indiscernibles and symmetry under label renaming.
        prop_assert_eq!(hamming_distance(&labels, &labels, 3), 0);
        let renamed: Vec<usize> = labels.iter().map(|&l| relabel[l]).collect();
        prop_assert_eq!(hamming_distance(&renamed, &labels, 3), 0);
        prop_assert_eq!(clustering_accuracy(&renamed, &labels, 3), 1.0);
    }

    #[test]
    fn hamming_is_symmetric(
        a in proptest::collection::vec(0usize..3, 10..40),
        b in proptest::collection::vec(0usize..3, 10..40),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        prop_assert_eq!(hamming_distance(a, b, 3), hamming_distance(b, a, 3));
    }

    #[test]
    fn l2_error_is_a_metric(
        x in proptest::collection::vec(-100.0f64..100.0, 1..10),
        y in proptest::collection::vec(-100.0f64..100.0, 1..10),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        prop_assert_eq!(l2_error(x, x), 0.0);
        prop_assert_eq!(l2_error(x, y), l2_error(y, x));
        prop_assert!(l2_error(x, y) >= 0.0);
    }

    #[test]
    fn blob_generator_is_seed_deterministic_and_label_consistent(
        seed in 0u64..1000,
        n in 5usize..40,
    ) {
        let d1 = gaussian_blobs("p", &[n, n], &[vec![0.0], vec![50.0]], &[1.0, 1.0], seed);
        let d2 = gaussian_blobs("p", &[n, n], &[vec![0.0], vec![50.0]], &[1.0, 1.0], seed);
        prop_assert_eq!(&d1, &d2);
        // With 50-sigma separation, labels are perfectly recoverable
        // from the sign of the coordinate.
        for (p, &l) in d1.points.iter().zip(&d1.labels) {
            prop_assert_eq!(l, usize::from(p[0] > 25.0));
        }
    }

    #[test]
    fn ar_series_is_standardized_for_any_seed(seed in 0u64..500) {
        let s = ar_series("p", 300, &[0.5, 0.2], 1.0, seed);
        let n = s.values.len() as f64;
        let mean = s.values.iter().sum::<f64>() / n;
        let var = s.values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!(mean.abs() < 1e-9);
        prop_assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quadratic_value_is_minimal_at_minimizer(
        d in 0.5f64..5.0,
        off in -3.0f64..3.0,
        probe in proptest::collection::vec(-5.0f64..5.0, 2),
    ) {
        let a = approx_linalg::Matrix::from_rows(&[&[d, 0.1], &[0.1, d + 0.5]]);
        let q = Quadratic::new(a, vec![off, -off]);
        let xs = q.minimizer();
        prop_assert!(q.value(&xs) <= q.value(&probe) + 1e-9);
    }

    #[test]
    fn rosenbrock_is_nonnegative(
        x in proptest::collection::vec(-3.0f64..3.0, 2..6),
    ) {
        let r = Rosenbrock::new(x.len());
        prop_assert!(r.value(&x) >= 0.0);
    }
}

#[test]
fn em_objective_is_monotone_for_many_seeds() {
    for seed in [1u64, 2, 3, 4] {
        let data = gaussian_blobs(
            "mono",
            &[30, 30],
            &[vec![0.0, 0.0], vec![5.0, 4.0]],
            &[1.0, 1.0],
            seed,
        );
        let gmm = GaussianMixture::from_dataset(&data, 1e-8, 50, seed);
        let mut c = ctx();
        let mut state = gmm.initial_state();
        let mut prev = gmm.objective(&state);
        for _ in 0..15 {
            state = gmm.step(&state, &mut c);
            let f = gmm.objective(&state);
            assert!(f <= prev + 1e-9, "seed {seed}: NLL rose {prev} -> {f}");
            prev = f;
        }
    }
}

#[test]
fn kmeans_objective_is_monotone_for_many_seeds() {
    for seed in [5u64, 6, 7] {
        let data = gaussian_blobs(
            "km-mono",
            &[40, 40],
            &[vec![0.0, 0.0], vec![7.0, 7.0]],
            &[1.0, 1.0],
            seed,
        );
        let km = KMeans::from_dataset(&data, 1e-9, 50, seed);
        let mut c = ctx();
        let mut state = km.initial_state();
        let mut prev = km.objective(&state);
        for _ in 0..10 {
            state = km.step(&state, &mut c);
            let f = km.objective(&state);
            assert!(f <= prev + 1e-12, "seed {seed}");
            prev = f;
        }
    }
}
