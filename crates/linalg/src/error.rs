//! Error type for linear-algebra routines.

use std::error::Error;
use std::fmt;

/// Error raised by decompositions and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible.
    DimensionMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the shape found.
        found: String,
    },
    /// The matrix is singular (or numerically so) at the given pivot.
    Singular {
        /// Pivot index at which elimination broke down.
        pivot: usize,
    },
    /// The matrix is not symmetric positive definite.
    NotPositiveDefinite {
        /// Leading minor index at which the Cholesky factorization failed.
        minor: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { minor } => {
                write!(f, "matrix is not positive definite (leading minor {minor})")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::Singular { pivot: 2 };
        assert!(e.to_string().contains("pivot 2"));
        let e = LinalgError::NotPositiveDefinite { minor: 1 };
        assert!(e.to_string().contains("minor 1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
