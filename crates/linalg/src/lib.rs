//! Dense and sparse linear algebra for the ApproxIt reproduction.
//!
//! Matrices come in two storage formats — the dense row-major
//! [`Matrix`] and the compressed-sparse-row [`CsrMatrix`] — unified
//! behind the [`LinearOperator`] trait, which is the surface the
//! iterative solvers are written against.
//!
//! Two kinds of routines coexist, mirroring the paper's split between
//! error-resilient and error-sensitive computation:
//!
//! * **Context routines** take a `&mut dyn ArithContext` and run every
//!   scalar operation on the (possibly approximate) datapath —
//!   [`vector`] sums/dots/axpys, [`stats`] means. These are what the
//!   applications scale with accuracy levels.
//! * **Exact routines** (norms, [`decomp`] solvers, inverses) run in
//!   plain `f64`: they implement control flow, convergence checks, and
//!   numerically fragile kernels that the offline resilience analysis
//!   marks error-sensitive.
//!
//! # Example
//!
//! ```
//! use approx_arith::{ArithContext, ExactContext, EnergyProfile};
//! use approx_linalg::vector;
//!
//! let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
//! let mut ctx = ExactContext::with_profile(profile);
//! let y = vector::axpy(&mut ctx, 2.0, &[1.0, 2.0], &[10.0, 20.0]);
//! assert_eq!(y, vec![12.0, 24.0]);
//! assert!(ctx.approx_energy() > 0.0); // the adds were metered
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;
mod operator;
mod sparse;

pub mod decomp;
pub mod stats;
pub mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use operator::LinearOperator;
pub use sparse::CsrMatrix;
