//! Statistical kernels: means and covariances over point sets.
//!
//! The *mean* accumulations are context-routed — they are exactly the
//! "Mean Value" datapath the paper scales on approximate adders for the
//! GMM benchmark (its Table 2). Covariance estimation stays exact: it
//! feeds matrix inversions, which the resilience partitioning marks
//! error-sensitive.

use approx_arith::ArithContext;

use crate::matrix::Matrix;

/// Mean of a set of points (rows of equal dimension), fully on the
/// context's datapath — including the final division, so at approximate
/// levels the result is quantized to the datapath's fixed-point format
/// (exactly like hardware, where a sub-resolution update vanishes and
/// the iteration freezes).
///
/// # Panics
/// Panics if `points` is empty or the rows have unequal lengths.
///
/// # Example
///
/// ```
/// use approx_arith::{ExactContext, EnergyProfile};
/// use approx_linalg::stats;
///
/// let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
/// let mut ctx = ExactContext::with_profile(profile);
/// let pts = [vec![1.0, 0.0], vec![3.0, 4.0]];
/// assert_eq!(stats::mean(&mut ctx, &pts), vec![2.0, 2.0]);
/// ```
#[must_use]
pub fn mean(ctx: &mut dyn ArithContext, points: &[Vec<f64>]) -> Vec<f64> {
    assert!(
        !points.is_empty(),
        "mean of an empty point set is undefined"
    );
    let dim = points[0].len();
    let mut acc = vec![0.0; dim];
    for p in points {
        assert_eq!(p.len(), dim, "all points must have the same dimension");
        ctx.add_assign_slice(&mut acc, p);
    }
    let n = points.len() as f64;
    acc.iter().map(|&a| ctx.div(a, n)).collect()
}

/// Weighted mean `Σ wᵢ·xᵢ / Σ wᵢ`, entirely on the context's datapath
/// (accumulations *and* the final division) — the M-step mean update of
/// GMM-EM. At approximate levels the result is quantized to the
/// datapath's fixed-point format.
///
/// Returns `None` if the total weight is not strictly positive (an empty
/// soft cluster).
///
/// # Panics
/// Panics if the lengths differ, `points` is empty, or rows have unequal
/// dimensions.
#[must_use]
pub fn weighted_mean(
    ctx: &mut dyn ArithContext,
    points: &[Vec<f64>],
    weights: &[f64],
) -> Option<Vec<f64>> {
    assert!(
        !points.is_empty(),
        "weighted mean of an empty set is undefined"
    );
    assert_eq!(points.len(), weights.len(), "one weight per point required");
    let dim = points[0].len();
    let n = points.len();
    // One fused sum for the total weight, then the per-dimension
    // accumulations `acc[d] = Σₙ wₙ·xₙ[d]` as a single matvec over the
    // transposed point set. Each chain folds left-to-right in point
    // order exactly like the historical interleaved per-point axpy loop
    // (`mul` is commutative on every datapath), so values, op counts
    // and energy are bit-identical to that formulation.
    let total = ctx.sum_slice(weights);
    let mut pt = vec![0.0; dim * n];
    for (idx, p) in points.iter().enumerate() {
        assert_eq!(p.len(), dim, "all points must have the same dimension");
        for (d, &v) in p.iter().enumerate() {
            pt[d * n + idx] = v;
        }
    }
    let mut acc = vec![0.0; dim];
    ctx.matvec_slice(&pt, n, weights, &mut acc);
    if total <= 0.0 {
        return None;
    }
    Some(acc.iter().map(|&a| ctx.div(a, total)).collect())
}

/// Exact sample covariance of a point set around a given mean, with
/// optional weights (unnormalized responsibilities) and a diagonal
/// regularizer `ridge` added for numerical safety.
///
/// # Panics
/// Panics if `points` is empty, dimensions are inconsistent, or
/// `weights` (when given) has the wrong length.
#[must_use]
pub fn covariance_exact(
    points: &[Vec<f64>],
    mean: &[f64],
    weights: Option<&[f64]>,
    ridge: f64,
) -> Matrix {
    assert!(
        !points.is_empty(),
        "covariance of an empty set is undefined"
    );
    let dim = mean.len();
    if let Some(w) = weights {
        assert_eq!(w.len(), points.len(), "one weight per point required");
    }
    let mut cov = Matrix::zeros(dim, dim);
    let mut total = 0.0;
    for (idx, p) in points.iter().enumerate() {
        assert_eq!(p.len(), dim, "all points must have the same dimension");
        let w = weights.map_or(1.0, |ws| ws[idx]);
        total += w;
        for i in 0..dim {
            let di = p[i] - mean[i];
            for j in 0..dim {
                cov[(i, j)] += w * di * (p[j] - mean[j]);
            }
        }
    }
    let denom = if total > 0.0 { total } else { 1.0 };
    for i in 0..dim {
        for j in 0..dim {
            cov[(i, j)] /= denom;
        }
        cov[(i, i)] += ridge;
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{AccuracyLevel, EnergyProfile, ExactContext, QcsContext};

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    #[test]
    fn mean_of_grid() {
        let mut ctx = ExactContext::with_profile(profile());
        let pts = vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 2.0],
            vec![2.0, 2.0],
        ];
        assert_eq!(mean(&mut ctx, &pts), vec![1.0, 1.0]);
    }

    #[test]
    fn weighted_mean_matches_unweighted_for_unit_weights() {
        let mut ctx = ExactContext::with_profile(profile());
        let pts = vec![vec![1.0], vec![2.0], vec![6.0]];
        let w = vec![1.0, 1.0, 1.0];
        let wm = weighted_mean(&mut ctx, &pts, &w).unwrap();
        assert_eq!(wm, vec![3.0]);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let mut ctx = ExactContext::with_profile(profile());
        let pts = vec![vec![0.0], vec![10.0]];
        let wm = weighted_mean(&mut ctx, &pts, &[3.0, 1.0]).unwrap();
        assert_eq!(wm, vec![2.5]);
    }

    #[test]
    fn empty_soft_cluster_yields_none() {
        let mut ctx = ExactContext::with_profile(profile());
        let pts = vec![vec![1.0], vec![2.0]];
        assert!(weighted_mean(&mut ctx, &pts, &[0.0, 0.0]).is_none());
    }

    #[test]
    fn approximate_mean_is_biased_but_bounded() {
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(AccuracyLevel::Level4);
        let pts: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i) / 10.0]).collect();
        let approx = mean(&mut ctx, &pts);
        let exact = 4.95;
        // Level 4 corrupts the low 11 of 16 fraction bits: per-add error
        // ≤ 2^-5 · 2, accumulated over 100 adds, divided by 100 (with a
        // quantized division).
        assert!((approx[0] - exact).abs() < 0.1, "mean {}", approx[0]);
        assert_ne!(approx[0], exact); // but it *is* approximate
    }

    #[test]
    fn covariance_of_isotropic_cloud() {
        let pts = vec![
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
        ];
        let cov = covariance_exact(&pts, &[0.0, 0.0], None, 0.0);
        assert!((cov[(0, 0)] - 0.5).abs() < 1e-14);
        assert!((cov[(1, 1)] - 0.5).abs() < 1e-14);
        assert!(cov[(0, 1)].abs() < 1e-14);
    }

    #[test]
    fn ridge_keeps_covariance_invertible() {
        // All points identical: zero covariance without the ridge.
        let pts = vec![vec![2.0, 2.0]; 5];
        let cov = covariance_exact(&pts, &[2.0, 2.0], None, 1e-6);
        assert!(crate::decomp::cholesky(&cov).is_ok());
    }

    #[test]
    fn weighted_covariance_ignores_zero_weight_points() {
        let pts = vec![vec![0.0], vec![100.0]];
        let cov = covariance_exact(&pts, &[0.0], Some(&[1.0, 0.0]), 0.0);
        assert!(cov[(0, 0)].abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_of_empty_panics() {
        let mut ctx = ExactContext::with_profile(profile());
        let _ = mean(&mut ctx, &[]);
    }
}
