//! Exact decompositions and solvers (error-sensitive kernels).
//!
//! These run in plain `f64`: the offline resilience partitioning keeps
//! numerically fragile kernels — pivoted elimination, Cholesky, inverses —
//! on exact hardware, because an approximate pivot choice can derail an
//! entire solve rather than merely perturb it.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] if `A` is not square or `b`
/// has the wrong length, and [`LinalgError::Singular`] if a pivot
/// underflows `1e-12` times the largest row entry.
///
/// # Example
///
/// ```
/// use approx_linalg::{decomp, Matrix};
///
/// # fn main() -> Result<(), approx_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = decomp::solve(&a, &[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: format!("square system of order {n}"),
            found: format!("{}x{} with rhs of length {}", a.rows(), a.cols(), b.len()),
        });
    }
    // Augmented working copy.
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row = a.row(i).to_vec();
            row.push(b[i]);
            row
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("finite pivots")
            })
            .expect("non-empty range");
        m.swap(col, pivot_row);
        let pivot = m[col][col];
        let scale = m[col].iter().take(n).fold(0.0f64, |s, &v| s.max(v.abs()));
        if pivot.abs() <= 1e-12 * scale.max(1e-300) {
            return Err(LinalgError::Singular { pivot: col });
        }
        for row in (col + 1)..n {
            let factor = m[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // m[row] and m[col] alias the same table
            for k in col..=n {
                m[row][k] -= factor * m[col][k];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = m[i][n];
        for j in (i + 1)..n {
            acc -= m[i][j] * x[j];
        }
        x[i] = acc / m[i][i];
    }
    Ok(x)
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix; returns the lower-triangular factor.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] for non-square input and
/// [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is not
/// strictly positive.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: "square matrix".to_owned(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { minor: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Determinant via LU elimination (partial pivoting).
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] for non-square input.
pub fn determinant(a: &Matrix) -> Result<f64, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: "square matrix".to_owned(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    let mut m: Vec<Vec<f64>> = (0..n).map(|i| a.row(i).to_vec()).collect();
    let mut det = 1.0;
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("finite pivots")
            })
            .expect("non-empty range");
        if pivot_row != col {
            m.swap(col, pivot_row);
            det = -det;
        }
        let pivot = m[col][col];
        if pivot == 0.0 {
            return Ok(0.0);
        }
        det *= pivot;
        for row in (col + 1)..n {
            let factor = m[row][col] / pivot;
            #[allow(clippy::needless_range_loop)] // m[row] and m[col] alias the same table
            for k in col..n {
                m[row][k] -= factor * m[col][k];
            }
        }
    }
    Ok(det)
}

/// Matrix inverse via column-wise solves.
///
/// # Errors
/// Propagates [`LinalgError::Singular`] /
/// [`LinalgError::DimensionMismatch`] from [`solve`].
pub fn inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    let mut inv = Matrix::zeros(n, n.max(1));
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let col = solve(a, &e)?;
        for i in 0..n {
            inv[(i, j)] = col[i];
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn solve_3x3() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec_exact(&x_true);
        let x = solve(&a, &b).unwrap();
        assert_close(&x, &x_true, 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_close(&x, &[3.0, 2.0], 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        let recon = l.matmul_exact(&l.transpose());
        for i in 0..3 {
            assert_close(recon.row(i), a.row(i), 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { minor: 1 })
        ));
    }

    #[test]
    fn determinant_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((determinant(&a).unwrap() + 2.0).abs() < 1e-14);
        assert!((determinant(&Matrix::identity(4)).unwrap() - 1.0).abs() < 1e-14);
        let sing = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(determinant(&sing).unwrap().abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul_exact(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-12);
            }
        }
    }
}
