//! Vector kernels, both context-routed (approximate-capable) and exact.
//!
//! The context-routed functions are thin wrappers over the
//! [`ArithContext`] slice kernels, so a context that overrides them
//! (the fixed-point QCS context does) gets its batched fast path while
//! per-op contexts fall back to the scalar-loop defaults — with
//! bit-identical results and operation accounting either way.

use approx_arith::ArithContext;

/// Element-wise sum `x + y` on the context's datapath.
///
/// # Panics
/// Panics if the vectors have different lengths.
#[must_use]
pub fn add(ctx: &mut dyn ArithContext, x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    let mut out = vec![0.0; x.len()];
    ctx.add_slice(x, y, &mut out);
    out
}

/// Element-wise difference `x − y` on the context's datapath.
///
/// # Panics
/// Panics if the vectors have different lengths.
#[must_use]
pub fn sub(ctx: &mut dyn ArithContext, x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    let mut out = vec![0.0; x.len()];
    ctx.sub_slice(x, y, &mut out);
    out
}

/// Scale `alpha · x` on the context's datapath.
#[must_use]
pub fn scale(ctx: &mut dyn ArithContext, alpha: f64, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    ctx.scale_slice(alpha, x, &mut out);
    out
}

/// `alpha · x + y` on the context's datapath.
///
/// # Panics
/// Panics if the vectors have different lengths.
#[must_use]
pub fn axpy(ctx: &mut dyn ArithContext, alpha: f64, x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    let mut out = vec![0.0; x.len()];
    ctx.axpy_slice(alpha, x, y, &mut out);
    out
}

/// Dot product on the context's datapath (delegates to
/// [`ArithContext::dot_slice`] — the same single reduction path the
/// trait's `dot` uses, so counts cannot drift between the two).
///
/// # Panics
/// Panics if the vectors have different lengths.
#[must_use]
pub fn dot(ctx: &mut dyn ArithContext, x: &[f64], y: &[f64]) -> f64 {
    ctx.dot_slice(x, y)
}

/// Accumulate `y += x` in place on the context's datapath.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn add_assign(ctx: &mut dyn ArithContext, y: &mut [f64], x: &[f64]) {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    ctx.add_assign_slice(y, x);
}

/// Accumulate `y += alpha · x` in place on the context's datapath.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn axpy_assign(ctx: &mut dyn ArithContext, y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    ctx.axpy_assign_slice(y, alpha, x);
}

/// Exact Euclidean norm ‖x‖₂ (error-sensitive: used by convergence
/// checks and the reconfiguration criteria).
#[must_use]
pub fn norm2_exact(x: &[f64]) -> f64 {
    x.iter().map(|&a| a * a).sum::<f64>().sqrt()
}

/// Exact Euclidean distance ‖x − y‖₂.
///
/// # Panics
/// Panics if the vectors have different lengths.
#[must_use]
pub fn dist2_exact(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    x.iter()
        .zip(y)
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Exact dot product (error-sensitive path).
///
/// # Panics
/// Panics if the vectors have different lengths.
#[must_use]
pub fn dot_exact(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "vector lengths must match");
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Exact infinity norm max|xᵢ|.
#[must_use]
pub fn norm_inf_exact(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &a| m.max(a.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{EnergyProfile, ExactContext};

    fn ctx() -> ExactContext {
        ExactContext::with_profile(EnergyProfile::from_constants(
            [1.0, 2.0, 3.0, 4.0, 5.0],
            50.0,
            100.0,
        ))
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let mut c = ctx();
        let x = [1.0, -2.0, 3.5];
        let y = [0.5, 0.5, 0.5];
        let s = add(&mut c, &x, &y);
        let d = sub(&mut c, &s, &y);
        assert_eq!(d, x.to_vec());
        let twice = scale(&mut c, 2.0, &x);
        assert_eq!(twice, vec![2.0, -4.0, 7.0]);
    }

    #[test]
    fn axpy_matches_definition() {
        let mut c = ctx();
        let y = axpy(&mut c, 3.0, &[1.0, 2.0], &[10.0, 20.0]);
        assert_eq!(y, vec![13.0, 26.0]);
        let mut acc = vec![10.0, 20.0];
        axpy_assign(&mut c, &mut acc, 3.0, &[1.0, 2.0]);
        assert_eq!(acc, y);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut c = ctx();
        let mut acc = vec![0.0; 3];
        add_assign(&mut c, &mut acc, &[1.0, 2.0, 3.0]);
        add_assign(&mut c, &mut acc, &[1.0, 2.0, 3.0]);
        assert_eq!(acc, vec![2.0, 4.0, 6.0]);
        assert_eq!(c.counts().adds, 6);
    }

    #[test]
    fn exact_norms() {
        assert_eq!(norm2_exact(&[3.0, 4.0]), 5.0);
        assert_eq!(dist2_exact(&[1.0, 1.0], &[4.0, 5.0]), 5.0);
        assert_eq!(norm_inf_exact(&[-7.0, 3.0]), 7.0);
        assert_eq!(dot_exact(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2_exact(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_lengths_panic() {
        let mut c = ctx();
        let _ = add(&mut c, &[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn context_ops_are_metered() {
        let mut c = ctx();
        let _ = dot(&mut c, &[1.0; 10], &[2.0; 10]);
        assert_eq!(c.counts().adds, 10);
        assert_eq!(c.counts().muls, 10);
    }
}
