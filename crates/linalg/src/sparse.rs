//! Compressed sparse row matrices.
//!
//! [`CsrMatrix`] is the workspace's large-scale matrix format: only the
//! stored entries cost memory and datapath operations, so problems move
//! from the paper-scale dense systems (n ≈ 10²) to graph- and PDE-scale
//! ones (n ≥ 10⁵). The matvec is a single
//! [`ArithContext::spmv_slice`] call, whose per-row reduction order is
//! the stored (column-sorted) order — the same left-to-right-from-zero
//! contract every other kernel follows.

use approx_arith::ArithContext;

use crate::operator::LinearOperator;
use crate::Matrix;

/// A sparse matrix in compressed sparse row (CSR) form.
///
/// # Invariants
///
/// Every constructor establishes, and every accessor may rely on:
///
/// * `row_ptr` has `rows + 1` entries, starts at `0`, ends at
///   `values.len()`, and is monotonically non-decreasing;
/// * within each row the column indices are **strictly increasing**
///   (sorted, no duplicates) and `< cols`;
/// * `values.len() == col_idx.len()`.
///
/// Stored entries may be exactly `0.0` (e.g. duplicate triplets that
/// cancel): they are structural nonzeros and still cost datapath
/// operations, exactly like an explicit zero in a dense row.
///
/// # Example
///
/// ```
/// use approx_linalg::{CsrMatrix, LinearOperator};
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0), (1, 0, 1.0)]);
/// assert_eq!(a.nnz(), 3);
/// assert_eq!(a.matvec_exact(&[1.0, 1.0]), vec![2.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
    col_idx: Vec<usize>,
    row_ptr: Vec<usize>,
}

impl CsrMatrix {
    /// Build from `(row, col, value)` triplets in any order. Duplicate
    /// coordinates are summed; within each row the stored entries are
    /// sorted by column.
    ///
    /// # Panics
    /// Panics if a dimension is 0 or a triplet indexes out of bounds.
    #[must_use]
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(i, j, _) in &sorted {
            assert!(i < rows && j < cols, "triplet ({i}, {j}) out of bounds");
        }
        sorted.sort_by_key(|&(i, j, _)| (i, j));

        let mut values = Vec::with_capacity(sorted.len());
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        let mut current_row = 0usize;
        for &(i, j, v) in &sorted {
            while current_row < i {
                row_ptr.push(values.len());
                current_row += 1;
            }
            let row_start = *row_ptr.last().expect("row_ptr is non-empty");
            if values.len() > row_start && *col_idx.last().expect("entries exist") == j {
                // Duplicate coordinate (adjacent after the sort): fold
                // it in. The accumulation is exact — assembly happens at
                // construction time, not on the datapath.
                *values.last_mut().expect("entries exist") += v;
            } else {
                values.push(v);
                col_idx.push(j);
            }
        }
        while current_row < rows {
            row_ptr.push(values.len());
            current_row += 1;
        }
        let out = Self {
            rows,
            cols,
            values,
            col_idx,
            row_ptr,
        };
        debug_assert!(out.check_invariants());
        out
    }

    /// Build from a dense matrix, storing every entry that is not
    /// exactly `0.0`.
    #[must_use]
    pub fn from_dense(m: &Matrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut values = Vec::new();
        let mut col_idx = Vec::new();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    values.push(v);
                    col_idx.push(j);
                }
            }
            row_ptr.push(values.len());
        }
        let out = Self {
            rows,
            cols,
            values,
            col_idx,
            row_ptr,
        };
        debug_assert!(out.check_invariants());
        out
    }

    /// The standard 5-point Laplacian stencil on an `nx × ny` interior
    /// grid (homogeneous Dirichlet boundary), row-major unknown
    /// ordering: diagonal `4`, the four grid neighbours `−1`.
    ///
    /// This is the *unscaled* stencil `h²·(−Δ)`: a Poisson right-hand
    /// side `f` enters the system as `b = h²·f`, matching
    /// [`PoissonJacobi`]-style formulations where the grid constant is
    /// folded into `b` rather than the operator.
    ///
    /// [`PoissonJacobi`]: https://docs.rs/iter-solvers
    ///
    /// # Panics
    /// Panics if either grid dimension is 0.
    #[must_use]
    pub fn poisson5(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        let n = nx * ny;
        let mut values = Vec::with_capacity(5 * n);
        let mut col_idx = Vec::with_capacity(5 * n);
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0);
        for iy in 0..ny {
            for ix in 0..nx {
                let u = iy * nx + ix;
                // Columns in strictly increasing order: N, W, C, E, S.
                if iy > 0 {
                    values.push(-1.0);
                    col_idx.push(u - nx);
                }
                if ix > 0 {
                    values.push(-1.0);
                    col_idx.push(u - 1);
                }
                values.push(4.0);
                col_idx.push(u);
                if ix + 1 < nx {
                    values.push(-1.0);
                    col_idx.push(u + 1);
                }
                if iy + 1 < ny {
                    values.push(-1.0);
                    col_idx.push(u + nx);
                }
                row_ptr.push(values.len());
            }
        }
        let out = Self {
            rows: n,
            cols: n,
            values,
            col_idx,
            row_ptr,
        };
        debug_assert!(out.check_invariants());
        out
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored values, row-major and column-sorted within each row.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column index of each stored value.
    #[must_use]
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// Row pointers: row `i`'s entries are `row_ptr[i] .. row_ptr[i+1]`.
    #[must_use]
    pub fn row_pointers(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Entry `(i, j)`, `0.0` if not stored.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Expand to a dense [`Matrix`] (cross-checks and small systems
    /// only — this materializes all `rows × cols` entries).
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Validate the CSR invariants (used by `debug_assert!` in the
    /// constructors and by tests).
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        if self.values.len() != self.col_idx.len()
            || self.row_ptr.len() != self.rows + 1
            || self.row_ptr[0] != 0
            || *self.row_ptr.last().expect("non-empty row_ptr") != self.values.len()
        {
            return false;
        }
        for i in 0..self.rows {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            if lo > hi {
                return false;
            }
            let cols = &self.col_idx[lo..hi];
            if !cols.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            if cols.last().is_some_and(|&j| j >= self.cols) {
                return false;
            }
        }
        true
    }
}

impl LinearOperator for CsrMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn apply(&self, ctx: &mut dyn ArithContext, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "vector length must equal column count");
        assert_eq!(out.len(), self.rows, "output length must equal row count");
        ctx.spmv_slice(&self.values, &self.col_idx, &self.row_ptr, x, out);
    }

    fn apply_exact(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "vector length must equal column count");
        assert_eq!(out.len(), self.rows, "output length must equal row count");
        for (i, o) in out.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut acc = 0.0;
            for (&a, &j) in self.values[lo..hi].iter().zip(&self.col_idx[lo..hi]) {
                acc += a * x[j];
            }
            *o = acc;
        }
    }

    fn diagonal(&self) -> Vec<f64> {
        let n = self.order();
        (0..n).map(|i| self.get(i, i)).collect()
    }

    fn max_abs_entry(&self) -> f64 {
        self.values.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    fn max_row_terms(&self) -> usize {
        self.row_ptr
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    fn off_diagonal_abs_row_sums(&self) -> Vec<f64> {
        let n = self.order();
        (0..n)
            .map(|i| {
                let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
                self.values[lo..hi]
                    .iter()
                    .zip(&self.col_idx[lo..hi])
                    .filter(|&(_, &j)| j != i)
                    .map(|(v, _)| v.abs())
                    .sum()
            })
            .collect()
    }

    fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if j <= i {
                    continue;
                }
                if (self.values[k] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
            // Entries stored at (j, i) with no (i, j) counterpart are
            // caught when row j is scanned (get(i, j) returns 0.0).
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if j < i && (self.values[k] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::ExactContext;

    #[test]
    fn triplets_sort_and_sum_duplicates() {
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (2, 0, 5.0),
                (0, 2, 3.0),
                (0, 0, 1.0),
                (0, 2, -1.0), // duplicate of (0, 2): summed
                (1, 1, 2.0),
            ],
        );
        assert!(a.check_invariants());
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.col_indices(), &[0, 2, 1, 0]);
        assert_eq!(a.row_pointers(), &[0, 2, 3, 4]);
    }

    #[test]
    fn duplicates_cancelling_to_zero_stay_stored() {
        let a = CsrMatrix::from_triplets(1, 2, &[(0, 1, 4.0), (0, 1, -4.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn from_dense_skips_exact_zeros_and_round_trips() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, -2.0], &[0.0, 0.0, 0.0], &[4.0, 5.0, 0.0]]);
        let s = CsrMatrix::from_dense(&d);
        assert!(s.check_invariants());
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn empty_rows_are_representable() {
        let a = CsrMatrix::from_triplets(4, 4, &[(3, 3, 1.0)]);
        assert!(a.check_invariants());
        assert_eq!(a.matvec_exact(&[1.0; 4]), vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn poisson5_matches_the_dense_stencil() {
        let s = CsrMatrix::poisson5(3, 2);
        assert!(s.check_invariants());
        assert_eq!(s.order(), 6);
        assert_eq!(s.nnz(), 6 + 2 * (2 * 2 + 3)); // diag + 2 per interior edge
        assert!(s.is_symmetric(0.0));
        assert_eq!(s.diagonal(), vec![4.0; 6]);
        // Hand-check one interior row: unknown 1 = (ix=1, iy=0).
        assert_eq!(s.get(1, 0), -1.0);
        assert_eq!(s.get(1, 1), 4.0);
        assert_eq!(s.get(1, 2), -1.0);
        assert_eq!(s.get(1, 4), -1.0);
        assert_eq!(s.get(1, 3), 0.0);
    }

    #[test]
    fn exact_and_context_matvec_agree_on_exact_context() {
        let s = CsrMatrix::poisson5(4, 4);
        let x: Vec<f64> = (0..16).map(|i| (i as f64) * 0.25 - 2.0).collect();
        let mut ctx = ExactContext::new();
        assert_eq!(s.matvec(&mut ctx, &x), s.matvec_exact(&x));
        assert_eq!(ctx.counts().muls, s.nnz() as u64);
    }

    #[test]
    fn gershgorin_probes_match_dense() {
        let s = CsrMatrix::poisson5(3, 3);
        let d = s.to_dense();
        assert_eq!(s.diagonal(), LinearOperator::diagonal(&d));
        assert_eq!(
            s.off_diagonal_abs_row_sums(),
            LinearOperator::off_diagonal_abs_row_sums(&d)
        );
        assert_eq!(s.max_abs_entry(), 4.0);
    }

    #[test]
    fn asymmetry_is_detected_in_both_triangles() {
        let upper_only = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!upper_only.is_symmetric(1e-12));
        let lower_only = CsrMatrix::from_triplets(2, 2, &[(1, 0, 1.0)]);
        assert!(!lower_only.is_symmetric(1e-12));
        let both = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(both.is_symmetric(0.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_triplet_panics() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
