//! Dense row-major matrices.

use approx_arith::ArithContext;

use crate::operator::LinearOperator;

/// A dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use approx_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(0, 1)], 2.0);
/// assert_eq!(m.transpose()[(1, 0)], 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is 0.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    ///
    /// # Panics
    /// Panics if `n` is 0.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from row slices.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "at least one row is required");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or a dimension is 0.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Exact matrix–vector product (thin delegation to
    /// [`LinearOperator::matvec_exact`] — the trait is the one matvec
    /// code path).
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec_exact(&self, x: &[f64]) -> Vec<f64> {
        LinearOperator::matvec_exact(self, x)
    }

    /// Matrix–vector product on a context's datapath (thin delegation
    /// to [`LinearOperator::matvec`], which routes through a single
    /// [`ArithContext::matvec_slice`] call over the row-major storage).
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, ctx: &mut dyn ArithContext, x: &[f64]) -> Vec<f64> {
        LinearOperator::matvec(self, ctx, x)
    }

    /// Exact matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics if the inner dimensions differ.
    #[must_use]
    pub fn matmul_exact(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// `true` if the matrix is square and symmetric within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl LinearOperator for Matrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    /// A single [`ArithContext::matvec_slice`] call over the row-major
    /// storage, so contexts with batched kernels convert the shared
    /// vector once and run every row reduction at slice granularity.
    fn apply(&self, ctx: &mut dyn ArithContext, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "vector length must equal column count");
        assert_eq!(out.len(), self.rows, "output length must equal row count");
        ctx.matvec_slice(&self.data, self.cols, x, out);
    }

    fn apply_exact(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "vector length must equal column count");
        assert_eq!(out.len(), self.rows, "output length must equal row count");
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *o = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
    }

    fn diagonal(&self) -> Vec<f64> {
        let n = LinearOperator::order(self);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    fn max_abs_entry(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    fn off_diagonal_abs_row_sums(&self) -> Vec<f64> {
        let n = LinearOperator::order(self);
        (0..n)
            .map(|i| {
                self.row(i)
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, v)| v.abs())
                    .sum()
            })
            .collect()
    }

    fn is_symmetric(&self, tol: f64) -> bool {
        Matrix::is_symmetric(self, tol)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{EnergyProfile, ExactContext};

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matvec_is_id() {
        let id = Matrix::identity(3);
        let x = vec![7.0, -2.0, 0.5];
        assert_eq!(id.matvec_exact(&x), x);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(0, 2)], 5.0);
    }

    #[test]
    fn matmul_matches_hand_example() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul_exact(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn context_matvec_matches_exact_on_exact_ctx() {
        let m = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let mut ctx = ExactContext::with_profile(EnergyProfile::from_constants(
            [1.0, 2.0, 3.0, 4.0, 5.0],
            50.0,
            100.0,
        ));
        assert_eq!(m.matvec(&mut ctx, &[2.0, 4.0]), m.matvec_exact(&[2.0, 4.0]));
        assert_eq!(ctx.counts().muls, 4);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        assert!(!ns.is_symmetric(1e-12));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_index_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(m.to_string().contains("3.0000"));
    }
}
