//! The [`LinearOperator`] abstraction: what a solver needs from `A`.
//!
//! Iterative methods never look *inside* a matrix — they apply it to
//! vectors and read a handful of cheap structural probes (the diagonal
//! for Jacobi-style smoothing, entry bounds for range analysis,
//! Gershgorin data for contraction certificates). This trait captures
//! exactly that surface, so a solver written against it runs unchanged
//! on the dense [`Matrix`](crate::Matrix), the sparse
//! [`CsrMatrix`](crate::CsrMatrix), or any future format.
//!
//! The split mirrors the rest of the workspace:
//!
//! * [`apply`](LinearOperator::apply) routes every value multiply/add
//!   through an [`ArithContext`] slice kernel — this is the
//!   error-*resilient* datapath the accuracy levels degrade and meter;
//! * [`apply_exact`](LinearOperator::apply_exact) and the structural
//!   probes run in plain `f64` — they feed monitoring, range proofs and
//!   contraction certificates, which must stay error-*sensitive*.

use approx_arith::ArithContext;

/// A real linear operator `A : ℝⁿ → ℝᵐ` usable by the iterative
/// solvers.
///
/// # Contract
///
/// * `apply` and `apply_exact` compute the same mathematical product;
///   `apply` runs on the context's datapath (and is metered), while
///   `apply_exact` is the `f64` reference used for monitoring.
/// * Each output row must be reduced left-to-right from `0.0` in a
///   format-deterministic order, so that two operators representing the
///   same matrix *and the same storage order* produce bit-identical
///   results on the same context.
/// * The structural probes (`diagonal`, `max_abs_entry`,
///   `off_diagonal_abs_row_sums`, `is_symmetric`) are exact host
///   arithmetic over the stored entries.
///
/// # Example
///
/// ```
/// use approx_arith::ExactContext;
/// use approx_linalg::{CsrMatrix, LinearOperator, Matrix};
///
/// let dense = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
/// let sparse = CsrMatrix::from_dense(&dense);
/// let mut ctx = ExactContext::new();
/// assert_eq!(
///     dense.matvec(&mut ctx, &[1.0, 1.0]),
///     sparse.matvec(&mut ctx, &[1.0, 1.0]),
/// );
/// assert_eq!(sparse.diagonal(), vec![2.0, 3.0]);
/// ```
pub trait LinearOperator {
    /// Number of rows `m` (the output dimension).
    fn rows(&self) -> usize;

    /// Number of columns `n` (the input dimension).
    fn cols(&self) -> usize;

    /// The order of a square operator.
    ///
    /// # Panics
    /// Panics if the operator is not square.
    fn order(&self) -> usize {
        assert_eq!(
            self.rows(),
            self.cols(),
            "order() requires a square operator"
        );
        self.rows()
    }

    /// Apply the operator on the context's datapath: `out = A·x`, with
    /// every value multiply and add metered by `ctx`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    fn apply(&self, ctx: &mut dyn ArithContext, x: &[f64], out: &mut [f64]);

    /// Apply the operator in exact `f64` arithmetic (monitoring,
    /// residual checks), with the same per-row reduction order as
    /// [`apply`](Self::apply).
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    fn apply_exact(&self, x: &[f64], out: &mut [f64]);

    /// The main diagonal `a_ii` (exact), for Jacobi-style smoothing and
    /// preconditioning. Entries a format does not store are `0.0`.
    ///
    /// # Panics
    /// Panics if the operator is not square.
    fn diagonal(&self) -> Vec<f64>;

    /// The largest `|a_ij|` over all (stored) entries — the data bound
    /// the static range models are built from.
    fn max_abs_entry(&self) -> f64;

    /// The longest per-row reduction [`apply`](Self::apply) performs:
    /// `cols()` for a dense operator, the maximum stored entries per
    /// row for a sparse one. Range models bound the matvec
    /// accumulation with this length — for a 5-point stencil that is 5
    /// terms, not 10⁵.
    fn max_row_terms(&self) -> usize {
        self.cols()
    }

    /// Per-row off-diagonal absolute sums `Σ_{j≠i} |a_ij|` (exact) —
    /// together with [`diagonal`](Self::diagonal) these are the
    /// Gershgorin discs the contraction certificates need.
    ///
    /// # Panics
    /// Panics if the operator is not square.
    fn off_diagonal_abs_row_sums(&self) -> Vec<f64>;

    /// `true` if the operator is square and symmetric within `tol`.
    fn is_symmetric(&self, tol: f64) -> bool;

    /// Allocating convenience for [`apply`](Self::apply): `A·x` on the
    /// context's datapath.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    fn matvec(&self, ctx: &mut dyn ArithContext, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows()];
        self.apply(ctx, x, &mut out);
        out
    }

    /// Allocating convenience for [`apply_exact`](Self::apply_exact).
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    fn matvec_exact(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows()];
        self.apply_exact(x, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn order_of_square_operator() {
        let m = Matrix::identity(3);
        assert_eq!(LinearOperator::order(&m), 3);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn order_of_rectangular_operator_panics() {
        let m = Matrix::zeros(2, 3);
        let _ = LinearOperator::order(&m);
    }
}
