//! Property-based tests over the linear-algebra kernels.
//!
//! Seed-driven on the in-repo `Pcg32` so the suite is hermetic and
//! bit-reproducible across platforms.

use approx_arith::rng::Pcg32;
use approx_arith::{EnergyProfile, ExactContext};
use approx_linalg::{decomp, stats, vector, Matrix};

const CASES: usize = 64;

fn ctx() -> ExactContext {
    ExactContext::with_profile(EnergyProfile::from_constants(
        [1.0, 2.0, 3.0, 4.0, 5.0],
        50.0,
        100.0,
    ))
}

/// Random well-conditioned SPD matrix A = B·Bᵀ + n·I.
fn spd(rng: &mut Pcg32, n: usize) -> Matrix {
    let data: Vec<f64> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let b = Matrix::from_vec(n, n, data);
    let mut a = b.matmul_exact(&b.transpose());
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

fn random_vec(rng: &mut Pcg32, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

#[test]
fn solve_inverts_matvec() {
    let mut rng = Pcg32::seeded(0x501E, 0);
    for _ in 0..CASES {
        let a = spd(&mut rng, 3);
        let x = random_vec(&mut rng, 3, -10.0, 10.0);
        let b = a.matvec_exact(&x);
        let got = decomp::solve(&a, &b).expect("SPD system");
        assert!(vector::dist2_exact(&got, &x) < 1e-8);
    }
}

#[test]
fn cholesky_squares_back() {
    let mut rng = Pcg32::seeded(0xC01E, 0);
    for _ in 0..CASES {
        let a = spd(&mut rng, 4);
        let l = decomp::cholesky(&a).expect("SPD input");
        let recon = l.matmul_exact(&l.transpose());
        for i in 0..4 {
            for j in 0..4 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn determinant_matches_cholesky_product() {
    let mut rng = Pcg32::seeded(0xDE7, 0);
    for _ in 0..CASES {
        let a = spd(&mut rng, 3);
        let det = decomp::determinant(&a).expect("square");
        let l = decomp::cholesky(&a).expect("SPD");
        let det_l: f64 = (0..3).map(|i| l[(i, i)]).product();
        assert!((det - det_l * det_l).abs() < 1e-6 * det.abs().max(1.0));
    }
}

#[test]
fn inverse_solves_identity() {
    let mut rng = Pcg32::seeded(0x14, 0);
    for _ in 0..CASES {
        let a = spd(&mut rng, 3);
        let inv = decomp::inverse(&a).expect("SPD");
        let prod = a.matmul_exact(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = f64::from(u8::from(i == j));
                assert!((prod[(i, j)] - want).abs() < 1e-8);
            }
        }
    }
}

#[test]
fn axpy_matches_manual() {
    let mut rng = Pcg32::seeded(0xA9, 0);
    for _ in 0..CASES {
        let alpha = rng.uniform(-10.0, 10.0);
        let n = 1 + rng.below(11) as usize;
        let x = random_vec(&mut rng, n, -10.0, 10.0);
        let y = random_vec(&mut rng, n, -10.0, 10.0);
        let mut c = ctx();
        let got = vector::axpy(&mut c, alpha, &x, &y);
        for ((g, &xi), &yi) in got.iter().zip(&x).zip(&y) {
            assert!((g - (alpha * xi + yi)).abs() < 1e-12);
        }
    }
}

#[test]
fn mean_is_translation_equivariant() {
    let mut rng = Pcg32::seeded(0x3EA, 0);
    for _ in 0..CASES {
        let n = 1 + rng.below(19) as usize;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| random_vec(&mut rng, 2, -50.0, 50.0))
            .collect();
        let shift = rng.uniform(-20.0, 20.0);
        let mut c = ctx();
        let m = stats::mean(&mut c, &pts);
        let shifted: Vec<Vec<f64>> = pts
            .iter()
            .map(|p| p.iter().map(|v| v + shift).collect())
            .collect();
        let ms = stats::mean(&mut c, &shifted);
        for (a, b) in m.iter().zip(&ms) {
            assert!((b - (a + shift)).abs() < 1e-9);
        }
    }
}

#[test]
fn covariance_is_psd() {
    let mut rng = Pcg32::seeded(0xC0F, 0);
    for _ in 0..CASES {
        let n = 3 + rng.below(22) as usize;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| random_vec(&mut rng, 2, -10.0, 10.0))
            .collect();
        let mut c = ctx();
        let m = stats::mean(&mut c, &pts);
        let cov = stats::covariance_exact(&pts, &m, None, 1e-9);
        // PSD check via Cholesky with the tiny ridge.
        assert!(decomp::cholesky(&cov).is_ok(), "covariance not PSD: {cov}");
    }
}

#[test]
fn norms_satisfy_triangle_inequality() {
    let mut rng = Pcg32::seeded(0x7121, 0);
    for _ in 0..CASES {
        let n = 1 + rng.below(9) as usize;
        let x = random_vec(&mut rng, n, -10.0, 10.0);
        let y = random_vec(&mut rng, n, -10.0, 10.0);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        assert!(
            vector::norm2_exact(&sum) <= vector::norm2_exact(&x) + vector::norm2_exact(&y) + 1e-9
        );
    }
}
