//! Property-based tests over the linear-algebra kernels.

use approx_arith::{EnergyProfile, ExactContext};
use approx_linalg::{decomp, stats, vector, Matrix};
use proptest::prelude::*;

fn ctx() -> ExactContext {
    ExactContext::with_profile(EnergyProfile::from_constants(
        [1.0, 2.0, 3.0, 4.0, 5.0],
        50.0,
        100.0,
    ))
}

/// Random well-conditioned SPD matrix A = B·Bᵀ + n·I.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data);
        let mut a = b.matmul_exact(&b.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solve_inverts_matvec(a in spd(3), x in proptest::collection::vec(-10.0f64..10.0, 3)) {
        let b = a.matvec_exact(&x);
        let got = decomp::solve(&a, &b).expect("SPD system");
        prop_assert!(vector::dist2_exact(&got, &x) < 1e-8);
    }

    #[test]
    fn cholesky_squares_back(a in spd(4)) {
        let l = decomp::cholesky(&a).expect("SPD input");
        let recon = l.matmul_exact(&l.transpose());
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn determinant_matches_cholesky_product(a in spd(3)) {
        let det = decomp::determinant(&a).expect("square");
        let l = decomp::cholesky(&a).expect("SPD");
        let det_l: f64 = (0..3).map(|i| l[(i, i)]).product();
        prop_assert!((det - det_l * det_l).abs() < 1e-6 * det.abs().max(1.0));
    }

    #[test]
    fn inverse_solves_identity(a in spd(3)) {
        let inv = decomp::inverse(&a).expect("SPD");
        let prod = a.matmul_exact(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = f64::from(u8::from(i == j));
                prop_assert!((prod[(i, j)] - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn axpy_matches_manual(
        alpha in -10.0f64..10.0,
        x in proptest::collection::vec(-10.0f64..10.0, 1..12),
        y in proptest::collection::vec(-10.0f64..10.0, 1..12),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let mut c = ctx();
        let got = vector::axpy(&mut c, alpha, x, y);
        for ((g, &xi), &yi) in got.iter().zip(x).zip(y) {
            prop_assert!((g - (alpha * xi + yi)).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_is_translation_equivariant(
        pts in proptest::collection::vec(
            proptest::collection::vec(-50.0f64..50.0, 2), 1..20),
        shift in -20.0f64..20.0,
    ) {
        let mut c = ctx();
        let m = stats::mean(&mut c, &pts);
        let shifted: Vec<Vec<f64>> =
            pts.iter().map(|p| p.iter().map(|v| v + shift).collect()).collect();
        let ms = stats::mean(&mut c, &shifted);
        for (a, b) in m.iter().zip(&ms) {
            prop_assert!((b - (a + shift)).abs() < 1e-9);
        }
    }

    #[test]
    fn covariance_is_psd(
        pts in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 2), 3..25),
    ) {
        let mut c = ctx();
        let m = stats::mean(&mut c, &pts);
        let cov = stats::covariance_exact(&pts, &m, None, 1e-9);
        // PSD check via Cholesky with the tiny ridge.
        prop_assert!(decomp::cholesky(&cov).is_ok(), "covariance not PSD: {cov}");
    }

    #[test]
    fn norms_satisfy_triangle_inequality(
        x in proptest::collection::vec(-10.0f64..10.0, 1..10),
        y in proptest::collection::vec(-10.0f64..10.0, 1..10),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let sum: Vec<f64> = x.iter().zip(y).map(|(&a, &b)| a + b).collect();
        prop_assert!(
            vector::norm2_exact(&sum)
                <= vector::norm2_exact(x) + vector::norm2_exact(y) + 1e-9
        );
    }
}
