//! Dependency-free deterministic parallel execution on scoped threads.
//!
//! Every heavy sweep in this workspace — exhaustive equivalence checks,
//! fault campaigns, adder energy characterization, offline
//! characterization across accuracy levels, and the online solver hot
//! paths (row-partitioned matvec/spmv, chunked reductions) — is an
//! embarrassingly parallel map over an index space followed by an
//! order-dependent reduction. This crate provides exactly that shape on
//! [`std::thread::scope`], keeping the workspace hermetic (no rayon, no
//! crossbeam) while still saturating every core. It is the *only*
//! sanctioned home for thread spawns and synchronization primitives;
//! the workspace auditor's `raw-parallel` and `par-reduce` rules flag
//! parallelism anywhere else.
//!
//! # Determinism rules
//!
//! Parallel results must be **bit-identical** to a serial run, for any
//! thread count. Three conventions make that hold everywhere:
//!
//! 1. **Work is indexed, not streamed.** Tasks are identified by a dense
//!    index (task number or chunk start); workers pull indices from a
//!    shared atomic counter, so scheduling varies, but the *work*
//!    attached to an index never does.
//! 2. **Per-index RNG seeding.** A task that samples randomness derives
//!    its stream from [`chunk_seed`]`(base_seed, index)` instead of
//!    sharing a sequential stream, so the values drawn by task `i` do
//!    not depend on which thread ran task `i − 1`.
//! 3. **Reduction in index order.** [`Executor::run_indexed`] and
//!    [`Executor::map_chunks`] return results sorted by index; callers
//!    fold them left-to-right, so floating-point accumulation order is
//!    fixed no matter how the tasks were scheduled.
//!
//! [`Executor::for_each_chunk`] extends the contract to in-place
//! mutation: the input slice is split into disjoint contiguous chunks,
//! each chunk is owned by exactly one task, and a task's output depends
//! only on its chunk index and input — so the final slice contents are
//! the same for any thread count by construction.
//!
//! # Example
//!
//! ```
//! use parx::Executor;
//!
//! let exec = Executor::new();
//! let squares = exec.run_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Same results on one thread, by construction.
//! assert_eq!(Executor::with_threads(1).run_indexed(8, |i| i * i), squares);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count (useful for
/// CI determinism experiments and for pinning benchmarks).
pub const THREADS_ENV: &str = "APPROXIT_THREADS";

/// Deprecated spelling of [`THREADS_ENV`] from when the executor lived
/// inside `gatesim`. Still honored (with a one-time warning on stderr)
/// so existing CI configurations keep working; [`THREADS_ENV`] wins
/// when both are set.
pub const LEGACY_THREADS_ENV: &str = "GATESIM_THREADS";

/// Parse one thread-count override variable, naming `var` in errors:
/// `Ok(None)` when unset, the worker count when set to a positive
/// integer, and a descriptive error for anything else. A silent
/// fallback here would let a typo (`APPROXIT_THREADS=axll`) or a zero
/// quietly change the parallel schedule under a benchmark, so invalid
/// values are rejected rather than ignored.
///
/// # Errors
///
/// Empty strings, non-numeric values, and `0` are all rejected.
pub fn parse_threads_var(var: &str, value: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = value else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(format!(
            "{var} is set but empty; unset it or use a positive integer"
        ));
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err(format!(
            "{var}=0 is invalid: at least one worker is required"
        )),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "{var}={trimmed:?} is not a positive integer worker count"
        )),
    }
}

/// Parse a [`THREADS_ENV`] override (the primary variable). Kept as the
/// hardened single-variable entry point; see [`resolve_threads_env`]
/// for the two-variable precedence used by [`Executor::new`].
///
/// # Errors
///
/// Empty strings, non-numeric values, and `0` are all rejected.
pub fn parse_threads_env(value: Option<&str>) -> Result<Option<usize>, String> {
    parse_threads_var(THREADS_ENV, value)
}

/// Resolve the worker-count override from both environment variables.
///
/// Precedence: [`THREADS_ENV`] wins whenever it is set — including when
/// it is set to an *invalid* value (a broken primary override must fail
/// loudly, not fall back to the legacy variable). [`LEGACY_THREADS_ENV`]
/// is consulted only when the primary is unset; using it still works
/// but is reported via the second tuple element so callers can warn.
///
/// Returns `(worker_count_override, used_legacy_variable)`.
///
/// # Errors
///
/// Whichever variable ends up consulted is validated with the same
/// hardened rules as [`parse_threads_env`]; errors name that variable.
pub fn resolve_threads_env(
    primary: Option<&str>,
    legacy: Option<&str>,
) -> Result<(Option<usize>, bool), String> {
    if primary.is_some() {
        return Ok((parse_threads_var(THREADS_ENV, primary)?, false));
    }
    let choice = parse_threads_var(LEGACY_THREADS_ENV, legacy)?;
    Ok((choice, choice.is_some()))
}

/// A fixed-width thread pool policy for scoped parallel sweeps.
///
/// `Executor` is a value, not a pool: threads are spawned per call with
/// [`std::thread::scope`] and joined before the call returns, so borrows
/// of the caller's data (netlists, operand traces, matrices) flow into
/// workers without `Arc` or cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// An executor sized to the machine: [`std::thread::available_parallelism`],
    /// overridable via the [`THREADS_ENV`] environment variable (or the
    /// deprecated [`LEGACY_THREADS_ENV`], which warns once on stderr).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when the consulted variable is
    /// set to something other than a positive integer — a misconfigured
    /// environment must fail loudly, not silently change the schedule.
    #[must_use]
    pub fn new() -> Self {
        let default = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let primary = std::env::var(THREADS_ENV).ok();
        let legacy = std::env::var(LEGACY_THREADS_ENV).ok();
        let threads = match resolve_threads_env(primary.as_deref(), legacy.as_deref()) {
            Ok((choice, used_legacy)) => {
                if used_legacy {
                    warn_legacy_env_once();
                }
                choice.unwrap_or(default)
            }
            Err(message) => panic!("{message}"),
        };
        Self { threads }
    }

    /// An executor with an explicit worker count (clamped to at least 1).
    /// `with_threads(1)` is the *serial path*: it runs every task inline
    /// on the calling thread, which determinism tests compare against.
    #[must_use]
    pub const fn with_threads(threads: usize) -> Self {
        Self {
            threads: if threads == 0 { 1 } else { threads },
        }
    }

    /// Number of worker threads this executor uses.
    #[must_use]
    pub const fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `work(i)` for every `i in 0..tasks` and return the
    /// results **in index order**, regardless of scheduling.
    ///
    /// Workers pull task indices from a shared atomic counter, so load
    /// imbalance between tasks is absorbed automatically. With one
    /// thread (or one task) everything runs inline on the caller.
    pub fn run_indexed<T, F>(&self, tasks: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads <= 1 || tasks <= 1 {
            return (0..tasks).map(work).collect();
        }
        let next = AtomicU64::new(0);
        let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(tasks));
        let workers = self.threads.min(tasks);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= tasks {
                            break;
                        }
                        local.push((i, work(i)));
                    }
                    collected
                        .lock()
                        .expect("worker panicked while holding results lock")
                        .append(&mut local);
                });
            }
        });
        let mut results = collected.into_inner().expect("scope joined all workers");
        results.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(results.len(), tasks);
        results.into_iter().map(|(_, v)| v).collect()
    }

    /// Split `0..total` into contiguous chunks of `chunk_size` (the last
    /// chunk may be shorter), evaluate `work(start, end)` for each, and
    /// return the chunk results **in chunk order**.
    ///
    /// # Panics
    /// Panics if `chunk_size` is 0.
    pub fn map_chunks<T, F>(&self, total: u64, chunk_size: u64, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, u64) -> T + Sync,
    {
        assert!(chunk_size > 0, "chunk size must be positive");
        let chunks = usize::try_from(total.div_ceil(chunk_size)).expect("chunk count fits usize");
        self.run_indexed(chunks, |i| {
            let start = i as u64 * chunk_size;
            let end = (start + chunk_size).min(total);
            work(start, end)
        })
    }

    /// Split `data` into disjoint contiguous chunks of `chunk_size` (the
    /// last chunk may be shorter) and run `work(chunk_index, chunk)` on
    /// each, in parallel across a static partition of the chunk list.
    ///
    /// Chunk `i` covers `data[i * chunk_size ..]`, so `work` can recover
    /// its global offset as `chunk_index * chunk_size`. Because every
    /// element belongs to exactly one chunk and a chunk's output depends
    /// only on its index and input, the final slice contents are
    /// identical for any thread count — no reduction step is involved.
    ///
    /// # Panics
    /// Panics if `chunk_size` is 0.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk_size: usize, work: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_size > 0, "chunk size must be positive");
        let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_size).enumerate().collect();
        let tasks = chunks.len();
        if self.threads <= 1 || tasks <= 1 {
            for (i, chunk) in chunks {
                work(i, chunk);
            }
            return;
        }
        // Static contiguous partition: worker w takes an equal share of
        // the chunk list. No counter is needed — ownership of each
        // `&mut` chunk moves into exactly one worker.
        let workers = self.threads.min(tasks);
        let mut remaining = chunks;
        let mut groups: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let take = remaining.len().div_ceil(workers - w);
            let rest = remaining.split_off(take);
            groups.push(std::mem::replace(&mut remaining, rest));
        }
        let work = &work;
        std::thread::scope(|scope| {
            for group in groups {
                scope.spawn(move || {
                    for (i, chunk) in group {
                        work(i, chunk);
                    }
                });
            }
        });
    }
}

fn warn_legacy_env_once() {
    static WARN: std::sync::Once = std::sync::Once::new();
    WARN.call_once(|| {
        eprintln!(
            "warning: {LEGACY_THREADS_ENV} is deprecated; use {THREADS_ENV} instead \
             (the old name is still honored, but {THREADS_ENV} wins when both are set)"
        );
    });
}

/// Derive a statistically independent seed for `attempt` of `request`
/// in a multi-request campaign seeded with `base` — the two-level
/// analogue of [`chunk_seed`] used by the solver service.
///
/// Seeding per *(request, attempt)* pair, never per worker or per
/// round, is what makes a retried request replay a fresh-but-fixed
/// fault stream regardless of which thread runs it, which round it
/// lands in, or how many other requests retried before it — the service
/// determinism contract reduces to the executor's.
#[must_use]
pub fn request_seed(base: u64, request: u64, attempt: u64) -> u64 {
    chunk_seed(chunk_seed(base, request), attempt)
}

/// Derive a statistically independent seed for chunk `index` of a sweep
/// seeded with `base` (SplitMix64 finalizer over the pair).
///
/// Campaigns that draw randomness inside parallel tasks must seed each
/// task from its *index*, never from a shared sequential stream — see
/// the crate docs' determinism rules.
#[must_use]
pub fn chunk_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order() {
        let exec = Executor::with_threads(4);
        let out = exec.run_indexed(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_matches_serial_path() {
        let serial = Executor::with_threads(1).run_indexed(37, |i| i as u64 * 7 + 1);
        for threads in [2, 3, 8] {
            let parallel = Executor::with_threads(threads).run_indexed(37, |i| i as u64 * 7 + 1);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_covers_the_range_exactly_once() {
        let exec = Executor::with_threads(3);
        let spans = exec.map_chunks(1000, 64, |s, e| (s, e));
        let mut expected_start = 0;
        for (s, e) in spans {
            assert_eq!(s, expected_start);
            assert!(e > s && e <= 1000);
            expected_start = e;
        }
        assert_eq!(expected_start, 1000);
    }

    #[test]
    fn map_chunks_handles_empty_and_partial_ranges() {
        let exec = Executor::with_threads(2);
        assert!(exec.map_chunks(0, 64, |s, e| (s, e)).is_empty());
        assert_eq!(exec.map_chunks(10, 64, |s, e| (s, e)), vec![(0, 10)]);
    }

    #[test]
    fn for_each_chunk_touches_every_element_exactly_once() {
        for threads in [1, 2, 3, 7] {
            let exec = Executor::with_threads(threads);
            let mut data = vec![0u64; 1003];
            exec.for_each_chunk(&mut data, 64, |ci, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v += (ci * 64 + j) as u64 + 1;
                }
            });
            let expected: Vec<u64> = (1..=1003).collect();
            assert_eq!(data, expected, "threads={threads}");
        }
    }

    #[test]
    fn for_each_chunk_handles_empty_and_short_slices() {
        let exec = Executor::with_threads(4);
        let mut empty: Vec<u32> = Vec::new();
        exec.for_each_chunk(&mut empty, 8, |_, _| panic!("no chunks expected"));
        let mut short = vec![1u32; 3];
        exec.for_each_chunk(&mut short, 8, |ci, chunk| {
            assert_eq!(ci, 0);
            assert_eq!(chunk.len(), 3);
            chunk.fill(9);
        });
        assert_eq!(short, vec![9, 9, 9]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::with_threads(0).threads(), 1);
    }

    #[test]
    fn request_seeds_differ_across_requests_and_attempts() {
        let a = request_seed(7, 0, 1);
        let b = request_seed(7, 0, 2);
        let c = request_seed(7, 1, 1);
        let d = request_seed(8, 0, 1);
        assert_ne!(a, b, "attempts must draw distinct streams");
        assert_ne!(a, c, "requests must draw distinct streams");
        assert_ne!(a, d, "base seeds must matter");
        assert_eq!(a, request_seed(7, 0, 1), "and be reproducible");
    }

    #[test]
    fn chunk_seeds_differ_across_indices() {
        let a = chunk_seed(42, 0);
        let b = chunk_seed(42, 1);
        let c = chunk_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And are reproducible.
        assert_eq!(a, chunk_seed(42, 0));
    }

    #[test]
    fn threads_env_accepts_positive_integers() {
        assert_eq!(parse_threads_env(None), Ok(None));
        assert_eq!(parse_threads_env(Some("1")), Ok(Some(1)));
        assert_eq!(parse_threads_env(Some("16")), Ok(Some(16)));
        assert_eq!(
            parse_threads_env(Some(" 8 ")),
            Ok(Some(8)),
            "whitespace is tolerated"
        );
    }

    #[test]
    fn threads_env_rejects_zero_empty_and_garbage() {
        for bad in ["0", "", "  ", "four", "-2", "1.5", "0x10"] {
            let err = parse_threads_env(Some(bad))
                .expect_err("invalid override must not silently fall back");
            assert!(err.contains(THREADS_ENV), "error names the variable: {err}");
        }
        assert!(parse_threads_env(Some("0"))
            .unwrap_err()
            .contains("at least one worker"));
    }

    #[test]
    fn resolve_prefers_primary_over_legacy() {
        // Primary alone.
        assert_eq!(resolve_threads_env(Some("4"), None), Ok((Some(4), false)));
        // Legacy alone: honored, but flagged for the deprecation warning.
        assert_eq!(resolve_threads_env(None, Some("3")), Ok((Some(3), true)));
        // Both set: primary wins and the legacy value is ignored entirely.
        assert_eq!(
            resolve_threads_env(Some("4"), Some("9")),
            Ok((Some(4), false))
        );
        // Neither set.
        assert_eq!(resolve_threads_env(None, None), Ok((None, false)));
    }

    #[test]
    fn resolve_fails_loudly_on_the_variable_it_consulted() {
        // An invalid primary must error even when a valid legacy value is
        // available — falling back would mask the typo.
        let err = resolve_threads_env(Some("zero"), Some("2")).unwrap_err();
        assert!(err.contains(THREADS_ENV), "{err}");
        // An invalid legacy (with no primary) errors under its own name.
        let err = resolve_threads_env(None, Some("0")).unwrap_err();
        assert!(err.contains(LEGACY_THREADS_ENV), "{err}");
        // A valid primary shadows a *broken* legacy value: the legacy
        // variable is never consulted, so its garbage cannot bite.
        assert_eq!(
            resolve_threads_env(Some("2"), Some("junk")),
            Ok((Some(2), false))
        );
    }
}
