//! Logic gate primitives.

/// The kind of a netlist node.
///
/// The gate set is intentionally small: two-input standard cells plus a
/// 2:1 multiplexer and a three-input majority gate (the carry function of a
/// full adder, commonly available as a single complex cell). Everything the
/// approximate-arithmetic crates need is expressible with these.
///
/// # Example
///
/// ```
/// use gatesim::GateKind;
///
/// assert_eq!(GateKind::Xor2.arity(), 2);
/// assert!(GateKind::Xor2.transistor_count() > GateKind::Nand2.transistor_count());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input (value supplied by the testbench).
    Input,
    /// Constant `false`.
    Const0,
    /// Constant `true`.
    Const1,
    /// Buffer: `y = a`.
    Buf,
    /// Inverter: `y = !a`.
    Not,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input XOR.
    Xor2,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input XNOR.
    Xnor2,
    /// 2:1 multiplexer: `y = if sel { b } else { a }` with input order
    /// `(sel, a, b)`.
    Mux2,
    /// Three-input majority: `y = ab + bc + ca` — the carry function.
    Maj3,
}

impl GateKind {
    /// Number of fan-in connections this gate kind requires.
    #[must_use]
    pub const fn arity(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Buf | GateKind::Not => 1,
            GateKind::And2
            | GateKind::Or2
            | GateKind::Xor2
            | GateKind::Nand2
            | GateKind::Nor2
            | GateKind::Xnor2 => 2,
            GateKind::Mux2 | GateKind::Maj3 => 3,
        }
    }

    /// Static-CMOS transistor count of a standard-cell implementation.
    ///
    /// These counts drive the default [`EnergyModel`](crate::EnergyModel):
    /// the switched capacitance of a cell is taken proportional to its
    /// transistor count, the usual first-order approximation in
    /// architectural energy models.
    #[must_use]
    pub const fn transistor_count(self) -> u32 {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Not => 2,
            GateKind::Buf => 4,
            GateKind::Nand2 | GateKind::Nor2 => 4,
            GateKind::And2 | GateKind::Or2 => 6,
            GateKind::Xor2 | GateKind::Xnor2 => 10,
            GateKind::Mux2 => 12,
            // AOI222 + inverter style majority cell.
            GateKind::Maj3 => 14,
        }
    }

    /// Evaluate the gate function on its (already arity-checked) inputs.
    #[must_use]
    pub(crate) fn eval(self, ins: [bool; 3]) -> bool {
        let [x, y, z] = ins;
        match self {
            GateKind::Input => unreachable!("inputs are set by the simulator"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => x,
            GateKind::Not => !x,
            GateKind::And2 => x & y,
            GateKind::Or2 => x | y,
            GateKind::Xor2 => x ^ y,
            GateKind::Nand2 => !(x & y),
            GateKind::Nor2 => !(x | y),
            GateKind::Xnor2 => !(x ^ y),
            GateKind::Mux2 => {
                if x {
                    z
                } else {
                    y
                }
            }
            GateKind::Maj3 => (x & y) | (y & z) | (x & z),
        }
    }

    /// All gate kinds, in declaration order. Useful for reporting.
    #[must_use]
    pub const fn all() -> [GateKind; 13] {
        [
            GateKind::Input,
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Xor2,
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::Xnor2,
            GateKind::Mux2,
            GateKind::Maj3,
        ]
    }

    /// Short lowercase mnemonic (used by the DOT exporter).
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Input => "in",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And2 => "and",
            GateKind::Or2 => "or",
            GateKind::Xor2 => "xor",
            GateKind::Nand2 => "nand",
            GateKind::Nor2 => "nor",
            GateKind::Xnor2 => "xnor",
            GateKind::Mux2 => "mux",
            GateKind::Maj3 => "maj",
        }
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_usage() {
        // Spot-check the truth tables.
        assert!(GateKind::And2.eval([true, true, false]));
        assert!(!GateKind::And2.eval([true, false, false]));
        assert!(GateKind::Or2.eval([false, true, false]));
        assert!(GateKind::Xor2.eval([true, false, false]));
        assert!(!GateKind::Xor2.eval([true, true, false]));
        assert!(GateKind::Nand2.eval([true, false, false]));
        assert!(!GateKind::Nand2.eval([true, true, false]));
        assert!(GateKind::Nor2.eval([false, false, false]));
        assert!(GateKind::Xnor2.eval([true, true, false]));
        assert!(GateKind::Not.eval([false, false, false]));
        assert!(GateKind::Buf.eval([true, false, false]));
    }

    #[test]
    fn mux_selects_second_operand_when_sel_high() {
        // (sel, a, b)
        assert!(!GateKind::Mux2.eval([false, false, true]));
        assert!(GateKind::Mux2.eval([true, false, true]));
        assert!(GateKind::Mux2.eval([false, true, false]));
    }

    #[test]
    fn maj3_is_carry_function() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let expected = (u8::from(a) + u8::from(b) + u8::from(c)) >= 2;
                    assert_eq!(GateKind::Maj3.eval([a, b, c]), expected);
                }
            }
        }
    }

    #[test]
    fn transistor_counts_are_monotone_with_complexity() {
        assert!(GateKind::Not.transistor_count() < GateKind::Nand2.transistor_count());
        assert!(GateKind::Nand2.transistor_count() < GateKind::And2.transistor_count());
        assert!(GateKind::And2.transistor_count() < GateKind::Xor2.transistor_count());
        assert_eq!(GateKind::Input.transistor_count(), 0);
    }

    #[test]
    fn all_lists_every_kind_once() {
        let all = GateKind::all();
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(GateKind::Xor2.to_string(), "xor");
        assert_eq!(GateKind::Maj3.to_string(), "maj");
    }
}
