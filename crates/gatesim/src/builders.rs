//! Structural generators for common arithmetic building blocks.
//!
//! Higher-level crates (notably `approx-arith`) compose these helpers into
//! complete exact and approximate adder netlists. All word-level builders
//! share one port convention, captured by [`AdderPorts`]:
//!
//! * primary inputs are declared in the order `a[0..n]` (LSB first), then
//!   `b[0..n]`, then optionally `cin`;
//! * primary outputs are `sum[0..n]` (LSB first), then optionally `cout`.

use crate::netlist::{Netlist, NodeId};

/// Port handles of a word-level adder netlist plus pack/unpack helpers.
///
/// # Example
///
/// ```
/// use gatesim::{builders, Simulator};
///
/// # fn main() -> Result<(), gatesim::SimulateError> {
/// let (nl, ports) = builders::ripple_carry_adder(16);
/// let mut sim = Simulator::new(&nl);
/// let out = sim.evaluate(&ports.pack_operands(1234, 4321, false))?;
/// let (sum, carry) = ports.unpack_result(&out);
/// assert_eq!(sum, 5555);
/// assert!(!carry);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdderPorts {
    a: Vec<NodeId>,
    b: Vec<NodeId>,
    cin: Option<NodeId>,
    has_cout: bool,
}

impl AdderPorts {
    /// Assemble a port description for a netlist that follows the module
    /// conventions (see the module docs).
    ///
    /// # Panics
    /// Panics if `a` and `b` have different widths or are empty.
    #[must_use]
    pub fn new(a: Vec<NodeId>, b: Vec<NodeId>, cin: Option<NodeId>, has_cout: bool) -> Self {
        assert_eq!(a.len(), b.len(), "operand widths must match");
        assert!(!a.is_empty(), "adders must be at least 1 bit wide");
        Self {
            a,
            b,
            cin,
            has_cout,
        }
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.a.len()
    }

    /// Node ids of operand `a`, LSB first.
    #[must_use]
    pub fn a_bits(&self) -> &[NodeId] {
        &self.a
    }

    /// Node ids of operand `b`, LSB first.
    #[must_use]
    pub fn b_bits(&self) -> &[NodeId] {
        &self.b
    }

    /// Node id of the carry-in input, if the adder has one.
    #[must_use]
    pub fn cin(&self) -> Option<NodeId> {
        self.cin
    }

    /// `true` if the netlist declares a carry-out output after the sum
    /// bits.
    #[must_use]
    pub fn has_cout(&self) -> bool {
        self.has_cout
    }

    /// Pack two operands (and the carry-in, if present) into the input
    /// vector expected by [`Simulator::evaluate`](crate::Simulator::evaluate).
    ///
    /// Operand bits above `width` are ignored.
    #[must_use]
    pub fn pack_operands(&self, a: u64, b: u64, cin: bool) -> Vec<bool> {
        let w = self.width();
        let mut v = Vec::with_capacity(2 * w + usize::from(self.cin.is_some()));
        v.extend((0..w).map(|i| (a >> i) & 1 == 1));
        v.extend((0..w).map(|i| (b >> i) & 1 == 1));
        if self.cin.is_some() {
            v.push(cin);
        }
        v
    }

    /// Unpack the simulator's output vector into `(sum, carry_out)`.
    ///
    /// For adders built without a carry-out, the returned carry is `false`.
    ///
    /// # Panics
    /// Panics if `outputs` does not have `width` (+1 with carry-out)
    /// entries.
    #[must_use]
    pub fn unpack_result(&self, outputs: &[bool]) -> (u64, bool) {
        let w = self.width();
        let expected = w + usize::from(self.has_cout);
        assert_eq!(outputs.len(), expected, "unexpected output vector length");
        let mut sum = 0u64;
        for (i, &bit) in outputs[..w].iter().enumerate() {
            if bit {
                sum |= 1 << i;
            }
        }
        let cout = self.has_cout && outputs[w];
        (sum, cout)
    }
}

/// Instantiate a full adder (`sum = a ⊕ b ⊕ cin`, `cout = maj(a, b, cin)`)
/// and return `(sum, cout)`.
///
/// The carry uses a single majority cell, matching a standard mirror-adder
/// implementation; the sum uses two cascaded XORs.
pub fn full_adder(nl: &mut Netlist, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let axb = nl.xor2(a, b);
    let sum = nl.xor2(axb, cin);
    let cout = nl.maj3(a, b, cin);
    (sum, cout)
}

/// Instantiate a half adder (`sum = a ⊕ b`, `cout = a ∧ b`).
pub fn half_adder(nl: &mut Netlist, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    let sum = nl.xor2(a, b);
    let cout = nl.and2(a, b);
    (sum, cout)
}

/// Declare the standard operand inputs (`a[0..width]`, `b[0..width]`,
/// `cin`) on a fresh netlist and return their ids.
pub fn declare_operands(nl: &mut Netlist, width: usize) -> (Vec<NodeId>, Vec<NodeId>, NodeId) {
    let (a, b) = declare_ab(nl, width);
    let cin = nl.input("cin");
    (a, b, cin)
}

/// Declare operand inputs `a[0..width]`, `b[0..width]` (no carry-in) on a
/// fresh netlist and return their ids.
pub fn declare_ab(nl: &mut Netlist, width: usize) -> (Vec<NodeId>, Vec<NodeId>) {
    let a: Vec<NodeId> = (0..width).map(|i| nl.input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..width).map(|i| nl.input(format!("b{i}"))).collect();
    (a, b)
}

/// Build a `width`-bit ripple-carry adder with carry-in and carry-out.
///
/// # Panics
/// Panics if `width` is 0 or greater than 64.
#[must_use]
pub fn ripple_carry_adder(width: usize) -> (Netlist, AdderPorts) {
    assert!((1..=64).contains(&width), "width must be in 1..=64");
    let mut nl = Netlist::new();
    let (a, b, cin) = declare_operands(&mut nl, width);
    let mut carry = cin;
    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        let (s, c) = full_adder(&mut nl, a[i], b[i], carry);
        sums.push(s);
        carry = c;
    }
    for (i, s) in sums.iter().enumerate() {
        nl.mark_output(*s, format!("sum{i}"));
    }
    nl.mark_output(carry, "cout");
    let ports = AdderPorts::new(a, b, Some(cin), true);
    (nl, ports)
}

/// Build a `width`-bit modular adder: `sum = (a + b) mod 2^width`, no
/// carry-in or carry-out.
///
/// This port shape (`a[0..w]`, `b[0..w]` in, `sum[0..w]` out) matches the
/// approximate adder families in `approx-arith`, making it the exact
/// reference of choice for [`crate::equiv::error_bound`].
///
/// # Panics
/// Panics if `width` is 0 or greater than 64.
#[must_use]
pub fn modular_adder(width: usize) -> (Netlist, AdderPorts) {
    assert!((1..=64).contains(&width), "width must be in 1..=64");
    let mut nl = Netlist::new();
    let (a, b) = declare_ab(&mut nl, width);
    // The top bit never needs its carry; skipping it keeps the netlist
    // free of dead gates.
    if width == 1 {
        let sum = nl.xor2(a[0], b[0]);
        nl.mark_output(sum, "sum0");
    } else {
        let (sum, mut carry) = half_adder(&mut nl, a[0], b[0]);
        nl.mark_output(sum, "sum0");
        for i in 1..width {
            let sum = if i + 1 == width {
                let axb = nl.xor2(a[i], b[i]);
                nl.xor2(axb, carry)
            } else {
                let (s, c) = full_adder(&mut nl, a[i], b[i], carry);
                carry = c;
                s
            };
            nl.mark_output(sum, format!("sum{i}"));
        }
    }
    let ports = AdderPorts::new(a, b, None, false);
    (nl, ports)
}

/// Build a word-level 2:1 multiplexer: `y = if sel { b } else { a }`.
///
/// Inputs are declared `a[0..w]`, `b[0..w]`, `sel`; outputs `y[0..w]`.
///
/// # Panics
/// Panics if `width` is 0.
#[must_use]
pub fn word_mux(width: usize) -> Netlist {
    assert!(width > 0, "width must be positive");
    let mut nl = Netlist::new();
    let a: Vec<NodeId> = (0..width).map(|i| nl.input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..width).map(|i| nl.input(format!("b{i}"))).collect();
    let sel = nl.input("sel");
    for i in 0..width {
        let y = nl.mux2(sel, a[i], b[i]);
        nl.mark_output(y, format!("y{i}"));
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn full_adder_truth_table() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let (s, co) = full_adder(&mut nl, a, b, c);
        nl.mark_output(s, "s");
        nl.mark_output(co, "co");
        let mut sim = Simulator::new(&nl);
        for bits in 0..8u8 {
            let a = bits & 1 == 1;
            let b = bits & 2 == 2;
            let c = bits & 4 == 4;
            let out = sim.evaluate(&[a, b, c]).unwrap();
            let total = u8::from(a) + u8::from(b) + u8::from(c);
            assert_eq!(out[0], total & 1 == 1);
            assert_eq!(out[1], total >= 2);
        }
    }

    #[test]
    fn half_adder_truth_table() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let (s, co) = half_adder(&mut nl, a, b);
        nl.mark_output(s, "s");
        nl.mark_output(co, "co");
        let mut sim = Simulator::new(&nl);
        for bits in 0..4u8 {
            let a = bits & 1 == 1;
            let b = bits & 2 == 2;
            let out = sim.evaluate(&[a, b]).unwrap();
            assert_eq!(out[0], a ^ b);
            assert_eq!(out[1], a & b);
        }
    }

    #[test]
    fn ripple_carry_exhaustive_4bit() {
        let (nl, ports) = ripple_carry_adder(4);
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    let out = sim.evaluate(&ports.pack_operands(a, b, cin)).unwrap();
                    let (sum, cout) = ports.unpack_result(&out);
                    let exact = a + b + u64::from(cin);
                    assert_eq!(sum, exact & 0xF);
                    assert_eq!(cout, exact > 0xF);
                }
            }
        }
    }

    #[test]
    fn ripple_carry_full_width_64() {
        let (nl, ports) = ripple_carry_adder(64);
        let mut sim = Simulator::new(&nl);
        let cases = [
            (0u64, 0u64),
            (u64::MAX, 1),
            (0x8000_0000_0000_0000, 0x8000_0000_0000_0000),
            (0xdead_beef_cafe_f00d, 0x0123_4567_89ab_cdef),
        ];
        for (a, b) in cases {
            let out = sim.evaluate(&ports.pack_operands(a, b, false)).unwrap();
            let (sum, cout) = ports.unpack_result(&out);
            let (exact, overflow) = a.overflowing_add(b);
            assert_eq!(sum, exact);
            assert_eq!(cout, overflow);
        }
    }

    #[test]
    fn word_mux_selects() {
        let nl = word_mux(4);
        let mut sim = Simulator::new(&nl);
        // a = 0b0101, b = 0b0011, sel = 0 -> a
        let mut inputs = vec![true, false, true, false, true, true, false, false];
        inputs.push(false);
        let out = sim.evaluate(&inputs).unwrap();
        assert_eq!(out, vec![true, false, true, false]);
        // sel = 1 -> b
        let mut inputs2 = inputs.clone();
        *inputs2.last_mut().unwrap() = true;
        let out = sim.evaluate(&inputs2).unwrap();
        assert_eq!(out, vec![true, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_adder_panics() {
        let _ = ripple_carry_adder(0);
    }

    #[test]
    fn modular_adder_wraps_exhaustive_4bit() {
        let (nl, ports) = modular_adder(4);
        nl.validate().unwrap();
        assert!(!ports.has_cout());
        assert_eq!(ports.cin(), None);
        let mut sim = Simulator::new(&nl);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let out = sim.evaluate(&ports.pack_operands(a, b, false)).unwrap();
                let (sum, cout) = ports.unpack_result(&out);
                assert_eq!(sum, (a + b) & 0xF);
                assert!(!cout);
            }
        }
    }

    #[test]
    fn modular_adder_width_one() {
        let (nl, ports) = modular_adder(1);
        let mut sim = Simulator::new(&nl);
        for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            let out = sim.evaluate(&ports.pack_operands(a, b, false)).unwrap();
            let (sum, _) = ports.unpack_result(&out);
            assert_eq!(sum, (a + b) & 1);
        }
    }
}
