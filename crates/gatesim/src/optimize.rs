//! Logic optimization: constant folding and dead-gate elimination.
//!
//! Approximate architectures frequently tie inputs to constants (a
//! truncation adder's low sum bits) or leave speculative logic without
//! observers. Synthesis would strip such gates before tape-out, so the
//! energy/delay of the *optimized* netlist is the honest hardware cost.
//! [`optimize`] performs the two classic cleanups:
//!
//! * **constant folding** — a gate whose controlling input is constant is
//!   replaced by a constant or a buffer-free alias of its surviving
//!   input;
//! * **dead-gate elimination** — nodes unreachable from any primary
//!   output are dropped (primary inputs are always kept, so the
//!   interface is unchanged).

use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId};

/// Result of [`optimize`]: the cleaned netlist plus statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeReport {
    /// The optimized netlist (same primary inputs, same output names and
    /// order).
    pub netlist: Netlist,
    /// Gates removed by constant folding.
    pub folded: usize,
    /// Gates removed as unreachable from the outputs.
    pub dead: usize,
}

/// What a node folds to, if anything.
#[derive(Clone, Copy)]
enum Folded {
    Const(bool),
    Alias(usize),
    Keep,
}

/// Constant-fold and dead-strip a netlist.
///
/// The optimized netlist evaluates identically on every input vector
/// (the crate's tests verify this exhaustively for small circuits and by
/// sampling for large ones).
///
/// # Example
///
/// ```
/// use gatesim::{optimize, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let zero = nl.constant(false);
/// let y = nl.and2(a, zero); // always false
/// nl.mark_output(y, "y");
///
/// let report = optimize::optimize(&nl);
/// // The AND gate folded away; only the input and a constant remain.
/// assert_eq!(report.folded, 1);
/// assert!(report.netlist.len() < nl.len());
/// ```
#[must_use]
pub fn optimize(netlist: &Netlist) -> OptimizeReport {
    let n = netlist.len();
    // Pass 1: forward constant/alias propagation.
    // value[i] = Some(const) if node i is known constant;
    // alias[i] = j if node i is equivalent to node j.
    let mut fold = vec![Folded::Keep; n];
    let resolve = |fold: &[Folded], mut idx: usize| -> Folded {
        loop {
            match fold[idx] {
                Folded::Alias(next) => idx = next,
                Folded::Const(c) => return Folded::Const(c),
                Folded::Keep => return Folded::Alias(idx),
            }
        }
    };
    for (idx, node) in netlist.nodes().iter().enumerate() {
        let ins: Vec<Folded> = node
            .inputs()
            .iter()
            .map(|dep| resolve(&fold, dep.index()))
            .collect();
        let const_of = |f: &Folded| match f {
            Folded::Const(c) => Some(*c),
            _ => None,
        };
        let target_of = |f: &Folded| match f {
            Folded::Alias(i) => Some(*i),
            _ => None,
        };
        fold[idx] = match node.kind() {
            GateKind::Input => Folded::Keep,
            GateKind::Const0 => Folded::Const(false),
            GateKind::Const1 => Folded::Const(true),
            GateKind::Buf => match ins[0] {
                Folded::Const(c) => Folded::Const(c),
                Folded::Alias(i) => Folded::Alias(i),
                Folded::Keep => unreachable!("resolve never returns Keep"),
            },
            GateKind::Not => match const_of(&ins[0]) {
                Some(c) => Folded::Const(!c),
                None => Folded::Keep,
            },
            GateKind::And2 => match (const_of(&ins[0]), const_of(&ins[1])) {
                (Some(false), _) | (_, Some(false)) => Folded::Const(false),
                (Some(true), Some(true)) => Folded::Const(true),
                (Some(true), None) => Folded::Alias(target_of(&ins[1]).expect("non-const")),
                (None, Some(true)) => Folded::Alias(target_of(&ins[0]).expect("non-const")),
                (None, None) => Folded::Keep,
            },
            GateKind::Or2 => match (const_of(&ins[0]), const_of(&ins[1])) {
                (Some(true), _) | (_, Some(true)) => Folded::Const(true),
                (Some(false), Some(false)) => Folded::Const(false),
                (Some(false), None) => Folded::Alias(target_of(&ins[1]).expect("non-const")),
                (None, Some(false)) => Folded::Alias(target_of(&ins[0]).expect("non-const")),
                (None, None) => Folded::Keep,
            },
            GateKind::Xor2 => match (const_of(&ins[0]), const_of(&ins[1])) {
                (Some(a), Some(b)) => Folded::Const(a ^ b),
                (Some(false), None) => Folded::Alias(target_of(&ins[1]).expect("non-const")),
                (None, Some(false)) => Folded::Alias(target_of(&ins[0]).expect("non-const")),
                // XOR with 1 is an inverter: keep the gate (it still
                // costs hardware) rather than materializing a new NOT.
                _ => Folded::Keep,
            },
            GateKind::Nand2 => match (const_of(&ins[0]), const_of(&ins[1])) {
                (Some(false), _) | (_, Some(false)) => Folded::Const(true),
                (Some(true), Some(true)) => Folded::Const(false),
                _ => Folded::Keep,
            },
            GateKind::Nor2 => match (const_of(&ins[0]), const_of(&ins[1])) {
                (Some(true), _) | (_, Some(true)) => Folded::Const(false),
                (Some(false), Some(false)) => Folded::Const(true),
                _ => Folded::Keep,
            },
            GateKind::Xnor2 => match (const_of(&ins[0]), const_of(&ins[1])) {
                (Some(a), Some(b)) => Folded::Const(a == b),
                (Some(true), None) => Folded::Alias(target_of(&ins[1]).expect("non-const")),
                (None, Some(true)) => Folded::Alias(target_of(&ins[0]).expect("non-const")),
                _ => Folded::Keep,
            },
            GateKind::Mux2 => match const_of(&ins[0]) {
                Some(sel) => {
                    let picked = if sel { ins[2] } else { ins[1] };
                    match picked {
                        Folded::Const(c) => Folded::Const(c),
                        Folded::Alias(i) => Folded::Alias(i),
                        Folded::Keep => unreachable!("resolve never returns Keep"),
                    }
                }
                None => match (const_of(&ins[1]), const_of(&ins[2])) {
                    (Some(a), Some(b)) if a == b => Folded::Const(a),
                    _ => Folded::Keep,
                },
            },
            GateKind::Maj3 => {
                let consts: Vec<Option<bool>> = ins.iter().map(const_of).collect();
                let ones = consts.iter().filter(|c| **c == Some(true)).count();
                let zeros = consts.iter().filter(|c| **c == Some(false)).count();
                if ones >= 2 {
                    Folded::Const(true)
                } else if zeros >= 2 {
                    Folded::Const(false)
                } else if ones == 1 && zeros == 1 {
                    // maj(x, 0, 1) = x
                    let free = ins
                        .iter()
                        .find(|f| matches!(f, Folded::Alias(_)))
                        .expect("one free input");
                    match free {
                        Folded::Alias(i) => Folded::Alias(*i),
                        _ => unreachable!("filtered to aliases"),
                    }
                } else {
                    Folded::Keep
                }
            }
        };
        // A node that folds onto itself is just Keep.
        if let Folded::Alias(t) = fold[idx] {
            if t == idx {
                fold[idx] = Folded::Keep;
            }
        }
    }

    // Pass 2: mark live nodes (reachable from outputs through the folded
    // view). Primary inputs are always kept to preserve the interface.
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for (id, _) in netlist.primary_outputs() {
        match resolve(&fold, id.index()) {
            Folded::Alias(i) => stack.push(i),
            Folded::Const(_) => {}
            Folded::Keep => unreachable!("resolve never returns Keep"),
        }
    }
    while let Some(idx) = stack.pop() {
        if live[idx] {
            continue;
        }
        live[idx] = true;
        for dep in netlist.nodes()[idx].inputs() {
            match resolve(&fold, dep.index()) {
                Folded::Alias(i) => stack.push(i),
                // Constants feeding a kept gate are re-created on demand
                // during the rebuild.
                Folded::Const(_) => {}
                Folded::Keep => unreachable!("resolve never returns Keep"),
            }
        }
    }

    // Pass 3: rebuild.
    let mut out = Netlist::new();
    let mut remap: Vec<Option<NodeId>> = vec![None; n];
    let mut const_false: Option<NodeId> = None;
    let mut const_true: Option<NodeId> = None;
    let mut folded_count = 0usize;
    let mut dead_count = 0usize;

    // A local helper can't borrow `out` twice, so constants are created
    // eagerly when first needed via this macro-like closure pattern.
    fn get_const(out: &mut Netlist, slot: &mut Option<NodeId>, value: bool) -> NodeId {
        *slot.get_or_insert_with(|| out.constant(value))
    }

    for (idx, node) in netlist.nodes().iter().enumerate() {
        if node.kind() == GateKind::Input {
            remap[idx] = Some(out.input(node.name().unwrap_or("in").to_owned()));
            continue;
        }
        let folded_view = resolve(&fold, idx);
        let is_self = matches!(folded_view, Folded::Alias(i) if i == idx);
        if !is_self {
            folded_count += usize::from(!matches!(
                node.kind(),
                GateKind::Const0 | GateKind::Const1 | GateKind::Buf
            ));
            continue; // replaced by a constant or another node
        }
        if !live[idx] {
            dead_count += 1;
            continue;
        }
        // Re-create the gate with remapped inputs.
        let mapped: Vec<NodeId> = node
            .inputs()
            .iter()
            .map(|dep| match resolve(&fold, dep.index()) {
                Folded::Const(c) => {
                    if c {
                        get_const(&mut out, &mut const_true, true)
                    } else {
                        get_const(&mut out, &mut const_false, false)
                    }
                }
                Folded::Alias(i) => remap[i].expect("topological order"),
                Folded::Keep => unreachable!("resolve never returns Keep"),
            })
            .collect();
        let new_id = match node.kind() {
            GateKind::Buf => out.buf(mapped[0]),
            GateKind::Not => out.not(mapped[0]),
            GateKind::And2 => out.and2(mapped[0], mapped[1]),
            GateKind::Or2 => out.or2(mapped[0], mapped[1]),
            GateKind::Xor2 => out.xor2(mapped[0], mapped[1]),
            GateKind::Nand2 => out.nand2(mapped[0], mapped[1]),
            GateKind::Nor2 => out.nor2(mapped[0], mapped[1]),
            GateKind::Xnor2 => out.xnor2(mapped[0], mapped[1]),
            GateKind::Mux2 => out.mux2(mapped[0], mapped[1], mapped[2]),
            GateKind::Maj3 => out.maj3(mapped[0], mapped[1], mapped[2]),
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
                unreachable!("handled above")
            }
        };
        remap[idx] = Some(new_id);
    }

    for (id, name) in netlist.primary_outputs() {
        let target = match resolve(&fold, id.index()) {
            Folded::Const(c) => {
                if c {
                    get_const(&mut out, &mut const_true, true)
                } else {
                    get_const(&mut out, &mut const_false, false)
                }
            }
            Folded::Alias(i) => remap[i].expect("live by construction"),
            Folded::Keep => unreachable!("resolve never returns Keep"),
        };
        out.mark_output(target, name.clone());
    }

    // Lint post-pass: optimization must never introduce structural
    // (error-severity) findings, and dead-gate elimination guarantees no
    // dead logic survives. Constant-output warnings are exempt — folding
    // can legitimately reveal a cone that was already stuck.
    let lint_before = netlist.lint();
    let lint_after = out.lint();
    assert!(
        lint_after.error_count() <= lint_before.error_count(),
        "optimize() introduced lint errors:\n{lint_after}"
    );
    assert_eq!(
        lint_after
            .counts_by_pass()
            .get(&crate::lint::LintPass::DeadGate)
            .copied()
            .unwrap_or(0),
        0,
        "optimize() left dead gates behind:\n{lint_after}"
    );

    OptimizeReport {
        netlist: out,
        folded: folded_count,
        dead: dead_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::sim::Simulator;

    /// The optimized netlist must agree with the original on the given
    /// number of exhaustive input vectors (inputs ≤ 16).
    fn assert_equivalent(original: &Netlist, optimized: &Netlist) {
        assert_eq!(original.num_inputs(), optimized.num_inputs());
        assert_eq!(original.num_outputs(), optimized.num_outputs());
        let n = original.num_inputs();
        assert!(n <= 16, "exhaustive check limited to 16 inputs");
        let mut sim_a = Simulator::new(original);
        let mut sim_b = Simulator::new(optimized);
        for pattern in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            let a = sim_a.evaluate(&inputs).expect("valid inputs");
            let b = sim_b.evaluate(&inputs).expect("valid inputs");
            assert_eq!(a, b, "mismatch on pattern {pattern:#b}");
        }
    }

    #[test]
    fn folds_and_with_zero() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let zero = nl.constant(false);
        let y = nl.and2(a, zero);
        nl.mark_output(y, "y");
        let report = optimize(&nl);
        assert_equivalent(&nl, &report.netlist);
        assert_eq!(report.netlist.count_kind(GateKind::And2), 0);
    }

    #[test]
    fn folds_identity_gates_to_aliases() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let one = nl.constant(true);
        let x = nl.and2(a, one); // = a
        let zero = nl.constant(false);
        let y = nl.or2(x, zero); // = a
        let z = nl.xor2(y, zero); // = a
        nl.mark_output(z, "y");
        let report = optimize(&nl);
        assert_equivalent(&nl, &report.netlist);
        // Everything collapses onto the input.
        assert_eq!(report.netlist.len(), 1);
    }

    #[test]
    fn strips_dead_logic() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let _dead = nl.xor2(a, b);
        let _deader = nl.maj3(a, b, a);
        let y = nl.and2(a, b);
        nl.mark_output(y, "y");
        let report = optimize(&nl);
        assert_equivalent(&nl, &report.netlist);
        assert_eq!(report.dead, 2);
        assert_eq!(report.netlist.len(), 3);
    }

    #[test]
    fn truncation_adder_shrinks_substantially() {
        // A truncation adder built naively carries constant-zero outputs;
        // after optimization only the live upper chain remains.
        use crate::timing::DelayModel;
        let (nl, ports) = builders::ripple_carry_adder(6);
        let _ = ports;
        let report = optimize(&nl);
        // The exact adder has nothing to fold (only the cin input is a
        // real input, not a constant).
        assert_equivalent(&nl, &report.netlist);
        assert!(report.netlist.len() <= nl.len());
        let _ = DelayModel::default();
    }

    #[test]
    fn mux_with_constant_select_folds() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let one = nl.constant(true);
        let y = nl.mux2(one, a, b); // = b
        nl.mark_output(y, "y");
        let report = optimize(&nl);
        assert_equivalent(&nl, &report.netlist);
        assert_eq!(report.netlist.count_kind(GateKind::Mux2), 0);
    }

    #[test]
    fn maj_with_mixed_constants_folds_to_wire() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let one = nl.constant(true);
        let zero = nl.constant(false);
        let y = nl.maj3(a, zero, one); // = a
        nl.mark_output(y, "y");
        let report = optimize(&nl);
        assert_equivalent(&nl, &report.netlist);
        assert_eq!(report.netlist.count_kind(GateKind::Maj3), 0);
    }

    #[test]
    fn constant_outputs_survive() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let na = nl.not(a);
        let y = nl.and2(a, na); // contradiction: always false... but not
                                // detected by local folding — stays.
        nl.mark_output(y, "y");
        let zero = nl.constant(false);
        nl.mark_output(zero, "z");
        let report = optimize(&nl);
        assert_equivalent(&nl, &report.netlist);
    }

    #[test]
    fn full_adder_with_zero_cin_loses_its_majority_chain_start() {
        // RCA with cin forced to 0: the first majority cell maj(a,b,0)
        // folds... maj with a single constant keeps the gate (it is
        // a·b + 0 = AND — local folding doesn't rewrite kinds), but a
        // trunc-style netlist with constant OUTPUT bits shrinks.
        let mut nl = Netlist::new();
        let a: Vec<_> = (0..4).map(|i| nl.input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..4).map(|i| nl.input(format!("b{i}"))).collect();
        let zero = nl.constant(false);
        // Two constant-zero low outputs, exact upper half.
        nl.mark_output(zero, "sum0");
        nl.mark_output(zero, "sum1");
        let mut carry = zero;
        for i in 2..4 {
            let (s, c) = builders::full_adder(&mut nl, a[i], b[i], carry);
            nl.mark_output(s, format!("sum{i}"));
            carry = c;
        }
        let before = nl.transistor_count();
        let report = optimize(&nl);
        assert_equivalent(&nl, &report.netlist);
        assert!(report.netlist.transistor_count() < before);
    }
}
