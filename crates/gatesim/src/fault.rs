//! Structural fault models and fault-injection simulation.
//!
//! Approximate hardware is routinely co-designed with fault tolerance:
//! voltage overscaling, particle strikes, and manufacturing defects all
//! manifest at the netlist level before they become numeric error. This
//! module models the three classic structural fault classes on top of the
//! existing [`Simulator`](crate::Simulator) infrastructure:
//!
//! * **Stuck-at faults** — a net is tied to a constant 0 or 1, modelling
//!   shorts and opens found by manufacturing test.
//! * **Transient faults** — a net flips with some per-evaluation
//!   probability, modelling single-event upsets (SEUs) from particle
//!   strikes or supply noise.
//! * **Timing-overscaling faults** — the clock period is set below a
//!   node's STA arrival time (see [`timing::DelayModel`]), so the node's
//!   register captures the *previous* evaluation's value. This is the
//!   fault mechanism that voltage/frequency overscaling trades against
//!   energy, and it reuses the crate's own static timing analysis to
//!   decide which nodes miss timing.
//!
//! [`FaultCampaign`] sweeps these fault models over an adder netlist and
//! reports numeric error-magnitude statistics, which is what the
//! ApproxIt runtime layer consumes to calibrate its watchdog thresholds.
//!
//! # Example
//!
//! ```
//! use gatesim::builders;
//! use gatesim::fault::{FaultCampaign, StructuralFault};
//!
//! let (nl, ports) = builders::ripple_carry_adder(8);
//! let campaign = FaultCampaign::new(&nl, &ports).vectors(64).seed(7);
//! // Stuck-at-1 on the carry-in of bit 4 corrupts roughly half of all sums.
//! let site = nl.primary_inputs()[3];
//! let stats = campaign.run(&[StructuralFault::stuck_at(site, true)]);
//! assert!(stats.error_rate() > 0.0);
//! ```

use crate::builders::AdderPorts;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId};
use crate::par::Executor;
use crate::sim::Simulator;
use crate::timing::DelayModel;

/// Minimal deterministic generator (SplitMix64) for fault sampling.
///
/// `gatesim` sits below the arithmetic crates and cannot borrow their
/// PCG stream, so it carries its own tiny generator; campaigns seeded
/// identically replay identical fault schedules.
#[derive(Debug, Clone)]
struct FaultRng(u64);

impl FaultRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One structural fault at the netlist level.
#[derive(Debug, Clone, PartialEq)]
pub enum StructuralFault {
    /// The node's output is tied to a constant.
    StuckAt {
        /// The faulty net.
        node: NodeId,
        /// The constant the net is tied to.
        value: bool,
    },
    /// The node's output flips with probability `rate` per evaluation.
    Transient {
        /// The faulty net.
        node: NodeId,
        /// Per-evaluation flip probability in `[0, 1]`.
        rate: f64,
    },
    /// Every node whose STA arrival time exceeds `clock_period` captures
    /// the previous evaluation's value instead of the new one.
    TimingOverscale {
        /// The overscaled clock period, in [`DelayModel`] units.
        clock_period: f64,
    },
}

impl StructuralFault {
    /// Convenience constructor for a stuck-at fault.
    #[must_use]
    pub fn stuck_at(node: NodeId, value: bool) -> Self {
        Self::StuckAt { node, value }
    }

    /// Convenience constructor for a transient (SEU) fault.
    ///
    /// # Panics
    /// Panics if `rate` is not a probability.
    #[must_use]
    pub fn transient(node: NodeId, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        Self::Transient { node, rate }
    }
}

/// A simulator that evaluates a netlist under a set of structural faults.
///
/// Fault application order per node: timing staleness first (the value the
/// register captured), then a possible transient flip, then stuck-at — a
/// hard short dominates everything upstream of it.
#[derive(Debug, Clone)]
pub struct FaultySimulator<'a> {
    netlist: &'a Netlist,
    stuck_at: Vec<Option<bool>>,
    transient_rate: Vec<f64>,
    /// Nodes that miss timing under the configured clock period.
    misses_timing: Vec<bool>,
    values: Vec<bool>,
    evaluations: u64,
    rng: FaultRng,
    faults_fired: u64,
}

impl<'a> FaultySimulator<'a> {
    /// Build a faulty simulator from a fault list. Timing faults are
    /// resolved against `delay_model` once, up front.
    ///
    /// # Panics
    /// Panics if a fault names a node outside the netlist or a transient
    /// rate is not a probability.
    #[must_use]
    pub fn new(
        netlist: &'a Netlist,
        faults: &[StructuralFault],
        delay_model: &DelayModel,
        seed: u64,
    ) -> Self {
        let n = netlist.len();
        let mut stuck_at = vec![None; n];
        let mut transient_rate = vec![0.0; n];
        let mut misses_timing = vec![false; n];
        for fault in faults {
            match *fault {
                StructuralFault::StuckAt { node, value } => {
                    assert!(node.index() < n, "stuck-at node outside netlist");
                    stuck_at[node.index()] = Some(value);
                }
                StructuralFault::Transient { node, rate } => {
                    assert!(node.index() < n, "transient node outside netlist");
                    assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
                    transient_rate[node.index()] = rate;
                }
                StructuralFault::TimingOverscale { clock_period } => {
                    let arrival = delay_model.arrival_times(netlist);
                    for (slot, t) in misses_timing.iter_mut().zip(&arrival) {
                        *slot = *slot || *t > clock_period;
                    }
                }
            }
        }
        Self {
            netlist,
            stuck_at,
            transient_rate,
            misses_timing,
            values: vec![false; n],
            evaluations: 0,
            rng: FaultRng(seed),
            faults_fired: 0,
        }
    }

    /// Evaluate under the configured faults and return the primary
    /// outputs in declaration order.
    ///
    /// # Errors
    /// Returns [`crate::SimulateError::InputLengthMismatch`] if `inputs`
    /// does not have exactly one value per primary input.
    pub fn evaluate(&mut self, inputs: &[bool]) -> Result<Vec<bool>, crate::SimulateError> {
        let expected = self.netlist.num_inputs();
        if inputs.len() != expected {
            return Err(crate::SimulateError::InputLengthMismatch {
                supplied: inputs.len(),
                expected,
            });
        }
        let mut input_iter = inputs.iter().copied();
        for (idx, node) in self.netlist.nodes().iter().enumerate() {
            let mut new = match node.kind() {
                GateKind::Input => input_iter.next().expect("length checked above"),
                kind => {
                    let mut ins = [false; 3];
                    for (slot, dep) in ins.iter_mut().zip(node.inputs()) {
                        *slot = self.values[dep.index()];
                    }
                    kind.eval(ins)
                }
            };
            // A node that misses timing latches the previous evaluation's
            // value (power-on state `false` before the first evaluation).
            if self.misses_timing[idx] {
                let stale = self.values[idx];
                if stale != new {
                    self.faults_fired += 1;
                }
                new = stale;
            }
            let rate = self.transient_rate[idx];
            if rate > 0.0 && self.rng.next_f64() < rate {
                new = !new;
                self.faults_fired += 1;
            }
            if let Some(forced) = self.stuck_at[idx] {
                if forced != new {
                    self.faults_fired += 1;
                }
                new = forced;
            }
            self.values[idx] = new;
        }
        self.evaluations += 1;
        Ok(self
            .netlist
            .primary_outputs()
            .iter()
            .map(|(id, _)| self.values[id.index()])
            .collect())
    }

    /// Number of `evaluate` calls so far.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// How many times a fault actually changed a node value (a stuck-at
    /// that agrees with the fault-free value does not count).
    #[must_use]
    pub fn faults_fired(&self) -> u64 {
        self.faults_fired
    }
}

/// Numeric error statistics from comparing faulty against fault-free
/// evaluations of the same adder.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Input vectors evaluated.
    pub evaluations: u64,
    /// Vectors whose faulty sum differed from the clean sum.
    pub mismatches: u64,
    /// Mean of `|faulty − clean|` over all vectors.
    pub mean_abs_error: f64,
    /// Largest `|faulty − clean|` observed.
    pub max_abs_error: f64,
    /// Structural fault events that fired inside the simulator.
    pub faults_fired: u64,
}

impl ErrorStats {
    /// Fraction of vectors with a wrong sum.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.mismatches as f64 / self.evaluations as f64
        }
    }
}

/// One row of a campaign sweep: a fault configuration and its measured
/// numeric impact.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Human-readable description of the injected fault set.
    pub label: String,
    /// Measured error statistics.
    pub stats: ErrorStats,
}

/// Sweeps structural faults over an adder netlist, comparing each faulty
/// configuration against the fault-free reference on a shared random
/// operand stream.
///
/// Sweep rows are independent by construction — every row re-derives its
/// operand and fault RNG streams from the campaign seed — so the
/// `sweep_*` methods fan rows out across an [`Executor`] and the results
/// are bit-identical for any thread count.
#[derive(Debug, Clone)]
pub struct FaultCampaign<'a> {
    netlist: &'a Netlist,
    ports: &'a AdderPorts,
    delay_model: DelayModel,
    vectors: usize,
    seed: u64,
    executor: Executor,
}

impl<'a> FaultCampaign<'a> {
    /// Create a campaign over `netlist` with the default delay model,
    /// 256 vectors per configuration, seed 0, and a machine-sized
    /// executor for the sweeps.
    #[must_use]
    pub fn new(netlist: &'a Netlist, ports: &'a AdderPorts) -> Self {
        Self {
            netlist,
            ports,
            delay_model: DelayModel::default(),
            vectors: 256,
            seed: 0,
            executor: Executor::new(),
        }
    }

    /// Set the executor used to parallelize the `sweep_*` methods.
    #[must_use]
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Set the number of operand vectors per fault configuration.
    #[must_use]
    pub fn vectors(mut self, vectors: usize) -> Self {
        self.vectors = vectors;
        self
    }

    /// Set the operand/fault sampling seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the delay model used to resolve timing-overscaling faults.
    #[must_use]
    pub fn delay_model(mut self, model: DelayModel) -> Self {
        self.delay_model = model;
        self
    }

    /// Measure one fault configuration against the fault-free reference.
    #[must_use]
    pub fn run(&self, faults: &[StructuralFault]) -> ErrorStats {
        let width = self.ports.width();
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut operands = FaultRng(self.seed ^ 0xA0_0F5E7);
        let mut clean = Simulator::new(self.netlist);
        let mut faulty = FaultySimulator::new(self.netlist, faults, &self.delay_model, self.seed);
        let mut stats = ErrorStats::default();
        let mut abs_sum = 0.0f64;
        for _ in 0..self.vectors {
            let a = operands.next_u64() & mask;
            let b = operands.next_u64() & mask;
            let inputs = self.ports.pack_operands(a, b, false);
            let clean_out = clean.evaluate(&inputs).expect("ports match netlist");
            let faulty_out = faulty.evaluate(&inputs).expect("ports match netlist");
            let (clean_sum, clean_cout) = self.ports.unpack_result(&clean_out);
            let (faulty_sum, faulty_cout) = self.ports.unpack_result(&faulty_out);
            let clean_full = u128::from(clean_sum) | (u128::from(clean_cout) << width);
            let faulty_full = u128::from(faulty_sum) | (u128::from(faulty_cout) << width);
            let abs_err = clean_full.abs_diff(faulty_full) as f64;
            stats.evaluations += 1;
            if abs_err > 0.0 {
                stats.mismatches += 1;
            }
            abs_sum += abs_err;
            stats.max_abs_error = stats.max_abs_error.max(abs_err);
        }
        if stats.evaluations > 0 {
            stats.mean_abs_error = abs_sum / stats.evaluations as f64;
        }
        stats.faults_fired = faulty.faults_fired();
        stats
    }

    /// Stuck-at sweep: one row per (site, polarity) over the given sites,
    /// rows measured in parallel.
    #[must_use]
    pub fn sweep_stuck_at(&self, sites: &[NodeId]) -> Vec<CampaignRow> {
        let configs: Vec<(NodeId, bool)> = sites
            .iter()
            .flat_map(|&site| [(site, false), (site, true)])
            .collect();
        self.executor.run_indexed(configs.len(), |i| {
            let (site, value) = configs[i];
            CampaignRow {
                label: format!("stuck-at-{}@n{}", u8::from(value), site.index()),
                stats: self.run(&[StructuralFault::stuck_at(site, value)]),
            }
        })
    }

    /// Transient sweep: every non-input node flips at each of the given
    /// rates.
    #[must_use]
    pub fn sweep_transient(&self, rates: &[f64]) -> Vec<CampaignRow> {
        let gate_nodes: Vec<NodeId> = self
            .netlist
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, node)| {
                !matches!(
                    node.kind(),
                    GateKind::Input | GateKind::Const0 | GateKind::Const1
                )
            })
            .map(|(idx, _)| NodeId(u32::try_from(idx).expect("netlist fits u32")))
            .collect();
        self.executor.run_indexed(rates.len(), |i| {
            let rate = rates[i];
            let faults: Vec<StructuralFault> = gate_nodes
                .iter()
                .map(|&node| StructuralFault::transient(node, rate))
                .collect();
            CampaignRow {
                label: format!("transient@rate={rate:.0e}"),
                stats: self.run(&faults),
            }
        })
    }

    /// Timing-overscaling sweep: clock period set to each fraction of the
    /// netlist's own STA critical path.
    #[must_use]
    pub fn sweep_timing(&self, period_fractions: &[f64]) -> Vec<CampaignRow> {
        let critical = self.delay_model.critical_path(self.netlist);
        self.executor.run_indexed(period_fractions.len(), |i| {
            let frac = period_fractions[i];
            let clock_period = critical * frac;
            CampaignRow {
                label: format!("clock@{:.0}%", frac * 100.0),
                stats: self.run(&[StructuralFault::TimingOverscale { clock_period }]),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn campaign_fixture() -> (Netlist, AdderPorts) {
        builders::ripple_carry_adder(16)
    }

    #[test]
    fn no_faults_means_no_error() {
        let (nl, ports) = campaign_fixture();
        let stats = FaultCampaign::new(&nl, &ports).vectors(64).run(&[]);
        assert_eq!(stats.mismatches, 0);
        assert_eq!(stats.faults_fired, 0);
        assert_eq!(stats.error_rate(), 0.0);
        assert_eq!(stats.max_abs_error, 0.0);
    }

    #[test]
    fn stuck_at_on_an_input_bit_bounds_error_by_bit_weight() {
        let (nl, ports) = campaign_fixture();
        let campaign = FaultCampaign::new(&nl, &ports).vectors(128);
        // Stuck-at on input bit k of operand a changes the sum by at most
        // 2^k (carry effects can only propagate the same magnitude).
        for (k, &site) in ports.a_bits().iter().enumerate().take(4) {
            for value in [false, true] {
                let stats = campaign.run(&[StructuralFault::stuck_at(site, value)]);
                assert!(
                    stats.max_abs_error <= (1u64 << k) as f64,
                    "bit {k} stuck-at-{value}: error {} exceeds weight",
                    stats.max_abs_error
                );
            }
        }
    }

    #[test]
    fn transient_rate_one_always_fires() {
        let (nl, ports) = campaign_fixture();
        let campaign = FaultCampaign::new(&nl, &ports).vectors(32);
        // Flip the LSB sum output on every evaluation: every vector is
        // off by exactly 1.
        let lsb = nl.primary_outputs()[0].0;
        let stats = campaign.run(&[StructuralFault::transient(lsb, 1.0)]);
        assert_eq!(stats.mismatches, stats.evaluations);
        assert_eq!(stats.max_abs_error, 1.0);
        assert_eq!(stats.faults_fired, stats.evaluations);
    }

    #[test]
    fn transient_error_rate_grows_with_rate() {
        let (nl, ports) = campaign_fixture();
        let campaign = FaultCampaign::new(&nl, &ports).vectors(256).seed(3);
        let rows = campaign.sweep_transient(&[1e-4, 1e-2, 1e-1]);
        assert!(rows[0].stats.error_rate() <= rows[2].stats.error_rate());
        assert!(rows[2].stats.error_rate() > 0.0);
    }

    #[test]
    fn generous_clock_produces_no_timing_faults() {
        let (nl, ports) = campaign_fixture();
        let campaign = FaultCampaign::new(&nl, &ports).vectors(64);
        let rows = campaign.sweep_timing(&[1.0, 0.25]);
        // At 100 % of the critical path every node meets timing.
        assert_eq!(rows[0].stats.mismatches, 0);
        // At 25 % the upper carry chain misses timing and errors appear.
        assert!(rows[1].stats.error_rate() > 0.0);
        assert!(rows[1].stats.faults_fired > 0);
    }

    #[test]
    fn identical_seeds_replay_identical_campaigns() {
        let (nl, ports) = campaign_fixture();
        let a = FaultCampaign::new(&nl, &ports).vectors(64).seed(9);
        let b = FaultCampaign::new(&nl, &ports).vectors(64).seed(9);
        let lsb = nl.primary_outputs()[0].0;
        let faults = [StructuralFault::transient(lsb, 0.3)];
        assert_eq!(a.run(&faults), b.run(&faults));
    }

    #[test]
    fn sweeps_are_thread_count_invariant() {
        let (nl, ports) = campaign_fixture();
        let serial = FaultCampaign::new(&nl, &ports)
            .vectors(48)
            .seed(11)
            .executor(Executor::with_threads(1));
        let parallel = FaultCampaign::new(&nl, &ports)
            .vectors(48)
            .seed(11)
            .executor(Executor::with_threads(8));
        let sites = &ports.a_bits()[..3];
        assert_eq!(serial.sweep_stuck_at(sites), parallel.sweep_stuck_at(sites));
        let rates = [1e-3, 1e-2, 1e-1];
        assert_eq!(
            serial.sweep_transient(&rates),
            parallel.sweep_transient(&rates)
        );
        let fracs = [1.0, 0.5, 0.25];
        assert_eq!(serial.sweep_timing(&fracs), parallel.sweep_timing(&fracs));
    }

    #[test]
    fn stuck_at_sweep_labels_sites() {
        let (nl, ports) = campaign_fixture();
        let campaign = FaultCampaign::new(&nl, &ports).vectors(16);
        let rows = campaign.sweep_stuck_at(&ports.a_bits()[..2]);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].label.starts_with("stuck-at-0@"));
        assert!(rows[1].label.starts_with("stuck-at-1@"));
    }
}
