//! Dependency-free parallel execution on scoped threads.
//!
//! Every heavy sweep in this workspace — exhaustive equivalence checks,
//! fault campaigns, adder energy characterization, offline
//! characterization across accuracy levels — is an embarrassingly
//! parallel map over an index space followed by an order-dependent
//! reduction. This module provides exactly that shape on
//! [`std::thread::scope`], keeping the workspace hermetic (no rayon, no
//! crossbeam) while still saturating every core.
//!
//! # Determinism rules
//!
//! Parallel results must be **bit-identical** to a serial run, for any
//! thread count. Three conventions make that hold everywhere:
//!
//! 1. **Work is indexed, not streamed.** Tasks are identified by a dense
//!    index (task number or chunk start); workers pull indices from a
//!    shared atomic counter, so scheduling varies, but the *work*
//!    attached to an index never does.
//! 2. **Per-index RNG seeding.** A task that samples randomness derives
//!    its stream from [`chunk_seed`]`(base_seed, index)` instead of
//!    sharing a sequential stream, so the values drawn by task `i` do
//!    not depend on which thread ran task `i − 1`.
//! 3. **Reduction in index order.** [`Executor::run_indexed`] and
//!    [`Executor::map_chunks`] return results sorted by index; callers
//!    fold them left-to-right, so floating-point accumulation order is
//!    fixed no matter how the tasks were scheduled.
//!
//! # Example
//!
//! ```
//! use gatesim::par::Executor;
//!
//! let exec = Executor::new();
//! let squares = exec.run_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Same results on one thread, by construction.
//! assert_eq!(Executor::with_threads(1).run_indexed(8, |i| i * i), squares);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count (useful for
/// CI determinism experiments and for pinning benchmarks).
pub const THREADS_ENV: &str = "GATESIM_THREADS";

/// A fixed-width thread pool policy for scoped parallel sweeps.
///
/// `Executor` is a value, not a pool: threads are spawned per call with
/// [`std::thread::scope`] and joined before the call returns, so borrows
/// of the caller's data (netlists, operand traces) flow into workers
/// without `Arc` or cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

/// Parse a [`THREADS_ENV`] override: `Ok(None)` when unset, the worker
/// count when set to a positive integer, and a descriptive error for
/// anything else. A silent fallback here would let a typo (`GATESIM_THREADS=axll`)
/// or a zero quietly change the parallel schedule under a benchmark, so
/// invalid values are rejected rather than ignored.
///
/// # Errors
///
/// Empty strings, non-numeric values, and `0` are all rejected.
pub fn parse_threads_env(value: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = value else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(format!(
            "{THREADS_ENV} is set but empty; unset it or use a positive integer"
        ));
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err(format!(
            "{THREADS_ENV}=0 is invalid: at least one worker is required"
        )),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "{THREADS_ENV}={trimmed:?} is not a positive integer worker count"
        )),
    }
}

impl Executor {
    /// An executor sized to the machine: [`std::thread::available_parallelism`],
    /// overridable via the [`THREADS_ENV`] environment variable.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when [`THREADS_ENV`] is set to
    /// something other than a positive integer — a misconfigured
    /// environment must fail loudly, not silently change the schedule.
    #[must_use]
    pub fn new() -> Self {
        let default = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let env = std::env::var(THREADS_ENV).ok();
        let threads = match parse_threads_env(env.as_deref()) {
            Ok(choice) => choice.unwrap_or(default),
            Err(message) => panic!("{message}"),
        };
        Self { threads }
    }

    /// An executor with an explicit worker count (clamped to at least 1).
    /// `with_threads(1)` is the *serial path*: it runs every task inline
    /// on the calling thread, which determinism tests compare against.
    #[must_use]
    pub const fn with_threads(threads: usize) -> Self {
        Self {
            threads: if threads == 0 { 1 } else { threads },
        }
    }

    /// Number of worker threads this executor uses.
    #[must_use]
    pub const fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `work(i)` for every `i in 0..tasks` and return the
    /// results **in index order**, regardless of scheduling.
    ///
    /// Workers pull task indices from a shared atomic counter, so load
    /// imbalance between tasks is absorbed automatically. With one
    /// thread (or one task) everything runs inline on the caller.
    pub fn run_indexed<T, F>(&self, tasks: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads <= 1 || tasks <= 1 {
            return (0..tasks).map(work).collect();
        }
        let next = AtomicU64::new(0);
        let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(tasks));
        let workers = self.threads.min(tasks);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= tasks {
                            break;
                        }
                        local.push((i, work(i)));
                    }
                    collected
                        .lock()
                        .expect("worker panicked while holding results lock")
                        .append(&mut local);
                });
            }
        });
        let mut results = collected.into_inner().expect("scope joined all workers");
        results.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(results.len(), tasks);
        results.into_iter().map(|(_, v)| v).collect()
    }

    /// Split `0..total` into contiguous chunks of `chunk_size` (the last
    /// chunk may be shorter), evaluate `work(start, end)` for each, and
    /// return the chunk results **in chunk order**.
    ///
    /// # Panics
    /// Panics if `chunk_size` is 0.
    pub fn map_chunks<T, F>(&self, total: u64, chunk_size: u64, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, u64) -> T + Sync,
    {
        assert!(chunk_size > 0, "chunk size must be positive");
        let chunks = usize::try_from(total.div_ceil(chunk_size)).expect("chunk count fits usize");
        self.run_indexed(chunks, |i| {
            let start = i as u64 * chunk_size;
            let end = (start + chunk_size).min(total);
            work(start, end)
        })
    }
}

/// Derive a statistically independent seed for `attempt` of `request`
/// in a multi-request campaign seeded with `base` — the two-level
/// analogue of [`chunk_seed`] used by the solver service.
///
/// Seeding per *(request, attempt)* pair, never per worker or per
/// round, is what makes a retried request replay a fresh-but-fixed
/// fault stream regardless of which thread runs it, which round it
/// lands in, or how many other requests retried before it — the service
/// determinism contract reduces to the executor's.
#[must_use]
pub fn request_seed(base: u64, request: u64, attempt: u64) -> u64 {
    chunk_seed(chunk_seed(base, request), attempt)
}

/// Derive a statistically independent seed for chunk `index` of a sweep
/// seeded with `base` (SplitMix64 finalizer over the pair).
///
/// Campaigns that draw randomness inside parallel tasks must seed each
/// task from its *index*, never from a shared sequential stream — see
/// the module docs' determinism rules.
#[must_use]
pub fn chunk_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order() {
        let exec = Executor::with_threads(4);
        let out = exec.run_indexed(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_matches_serial_path() {
        let serial = Executor::with_threads(1).run_indexed(37, |i| i as u64 * 7 + 1);
        for threads in [2, 3, 8] {
            let parallel = Executor::with_threads(threads).run_indexed(37, |i| i as u64 * 7 + 1);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_covers_the_range_exactly_once() {
        let exec = Executor::with_threads(3);
        let spans = exec.map_chunks(1000, 64, |s, e| (s, e));
        let mut expected_start = 0;
        for (s, e) in spans {
            assert_eq!(s, expected_start);
            assert!(e > s && e <= 1000);
            expected_start = e;
        }
        assert_eq!(expected_start, 1000);
    }

    #[test]
    fn map_chunks_handles_empty_and_partial_ranges() {
        let exec = Executor::with_threads(2);
        assert!(exec.map_chunks(0, 64, |s, e| (s, e)).is_empty());
        assert_eq!(exec.map_chunks(10, 64, |s, e| (s, e)), vec![(0, 10)]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::with_threads(0).threads(), 1);
    }

    #[test]
    fn request_seeds_differ_across_requests_and_attempts() {
        let a = request_seed(7, 0, 1);
        let b = request_seed(7, 0, 2);
        let c = request_seed(7, 1, 1);
        let d = request_seed(8, 0, 1);
        assert_ne!(a, b, "attempts must draw distinct streams");
        assert_ne!(a, c, "requests must draw distinct streams");
        assert_ne!(a, d, "base seeds must matter");
        assert_eq!(a, request_seed(7, 0, 1), "and be reproducible");
    }

    #[test]
    fn chunk_seeds_differ_across_indices() {
        let a = chunk_seed(42, 0);
        let b = chunk_seed(42, 1);
        let c = chunk_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And are reproducible.
        assert_eq!(a, chunk_seed(42, 0));
    }

    #[test]
    fn threads_env_accepts_positive_integers() {
        assert_eq!(parse_threads_env(None), Ok(None));
        assert_eq!(parse_threads_env(Some("1")), Ok(Some(1)));
        assert_eq!(parse_threads_env(Some("16")), Ok(Some(16)));
        assert_eq!(
            parse_threads_env(Some(" 8 ")),
            Ok(Some(8)),
            "whitespace is tolerated"
        );
    }

    #[test]
    fn threads_env_rejects_zero_empty_and_garbage() {
        for bad in ["0", "", "  ", "four", "-2", "1.5", "0x10"] {
            let err = parse_threads_env(Some(bad))
                .expect_err("invalid override must not silently fall back");
            assert!(err.contains(THREADS_ENV), "error names the variable: {err}");
        }
        assert!(parse_threads_env(Some("0"))
            .unwrap_err()
            .contains("at least one worker"));
    }
}
