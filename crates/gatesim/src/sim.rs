//! Forward-sweep simulation with toggle counting.

use crate::energy::EnergyModel;
use crate::error::SimulateError;
use crate::gate::GateKind;
use crate::netlist::Netlist;
use crate::stats::ActivityReport;

/// Zero-delay combinational simulator with switching-activity accounting.
///
/// The simulator owns per-node value and toggle-count arrays. The first
/// call to [`evaluate`](Simulator::evaluate) establishes the baseline state
/// and counts no toggles; every subsequent call counts, per node, whether
/// its output changed relative to the previous evaluation. This matches the
/// standard architectural-power convention of charging energy per *input
/// vector transition*.
///
/// # Example
///
/// ```
/// use gatesim::{Netlist, Simulator};
///
/// # fn main() -> Result<(), gatesim::SimulateError> {
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let y = nl.not(a);
/// nl.mark_output(y, "y");
///
/// let mut sim = Simulator::new(&nl);
/// assert_eq!(sim.evaluate(&[false])?, vec![true]);
/// assert_eq!(sim.evaluate(&[true])?, vec![false]);
/// assert_eq!(sim.total_toggles(), 2); // input + inverter each toggled once
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    values: Vec<bool>,
    toggles: Vec<u64>,
    evaluations: u64,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for the given netlist.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        Self {
            netlist,
            values: vec![false; netlist.len()],
            toggles: vec![0; netlist.len()],
            evaluations: 0,
        }
    }

    /// The netlist this simulator evaluates.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluate the netlist on one input vector and return the primary
    /// outputs in declaration order.
    ///
    /// # Errors
    /// Returns [`SimulateError::InputLengthMismatch`] if `inputs` does not
    /// have exactly one value per primary input.
    pub fn evaluate(&mut self, inputs: &[bool]) -> Result<Vec<bool>, SimulateError> {
        let expected = self.netlist.num_inputs();
        if inputs.len() != expected {
            return Err(SimulateError::InputLengthMismatch {
                supplied: inputs.len(),
                expected,
            });
        }
        let first = self.evaluations == 0;
        let mut input_iter = inputs.iter().copied();
        for (idx, node) in self.netlist.nodes().iter().enumerate() {
            let new = match node.kind() {
                GateKind::Input => input_iter.next().expect("length checked above"),
                kind => {
                    let mut ins = [false; 3];
                    for (slot, dep) in ins.iter_mut().zip(node.inputs()) {
                        *slot = self.values[dep.index()];
                    }
                    kind.eval(ins)
                }
            };
            if !first && new != self.values[idx] {
                self.toggles[idx] += 1;
            }
            self.values[idx] = new;
        }
        self.evaluations += 1;
        Ok(self
            .netlist
            .primary_outputs()
            .iter()
            .map(|(id, _)| self.values[id.index()])
            .collect())
    }

    /// Number of `evaluate` calls so far.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Total output toggles across all nodes since construction (the first
    /// evaluation is the baseline and contributes none).
    #[must_use]
    pub fn total_toggles(&self) -> u64 {
        self.toggles.iter().sum()
    }

    /// Per-node toggle counts, indexed by node id.
    #[must_use]
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Accumulated energy under `model` (dynamic switching + leakage).
    #[must_use]
    pub fn energy(&self, model: &EnergyModel) -> f64 {
        model.energy(self.netlist, &self.toggles, self.evaluations)
    }

    /// Structured switching-activity report for this simulation run.
    #[must_use]
    pub fn activity_report(&self, model: &EnergyModel) -> ActivityReport {
        ActivityReport::new(self.netlist, &self.toggles, self.evaluations, model)
    }

    /// Reset values, toggle counts, and the evaluation counter.
    pub fn reset(&mut self) {
        self.values.fill(false);
        self.toggles.fill(0);
        self.evaluations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn xor_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.xor2(a, b);
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn evaluates_truth_table() {
        let nl = xor_netlist();
        let mut sim = Simulator::new(&nl);
        assert_eq!(sim.evaluate(&[false, false]).unwrap(), vec![false]);
        assert_eq!(sim.evaluate(&[false, true]).unwrap(), vec![true]);
        assert_eq!(sim.evaluate(&[true, false]).unwrap(), vec![true]);
        assert_eq!(sim.evaluate(&[true, true]).unwrap(), vec![false]);
    }

    #[test]
    fn rejects_wrong_input_length() {
        let nl = xor_netlist();
        let mut sim = Simulator::new(&nl);
        let err = sim.evaluate(&[true]).unwrap_err();
        assert_eq!(
            err,
            SimulateError::InputLengthMismatch {
                supplied: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn first_evaluation_counts_no_toggles() {
        let nl = xor_netlist();
        let mut sim = Simulator::new(&nl);
        sim.evaluate(&[true, true]).unwrap();
        assert_eq!(sim.total_toggles(), 0);
        sim.evaluate(&[true, true]).unwrap();
        assert_eq!(sim.total_toggles(), 0);
        sim.evaluate(&[false, true]).unwrap();
        // input `a` toggled and the xor output toggled
        assert_eq!(sim.total_toggles(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let nl = xor_netlist();
        let mut sim = Simulator::new(&nl);
        sim.evaluate(&[true, false]).unwrap();
        sim.evaluate(&[false, false]).unwrap();
        assert!(sim.total_toggles() > 0);
        sim.reset();
        assert_eq!(sim.total_toggles(), 0);
        assert_eq!(sim.evaluations(), 0);
    }

    #[test]
    fn ripple_carry_matches_integer_addition() {
        let (nl, ports) = builders::ripple_carry_adder(8);
        let mut sim = Simulator::new(&nl);
        for (a, b) in [(0u64, 0u64), (1, 1), (200, 100), (255, 255), (123, 45)] {
            let inputs = ports.pack_operands(a, b, false);
            let out = sim.evaluate(&inputs).unwrap();
            let (sum, cout) = ports.unpack_result(&out);
            let exact = a + b;
            assert_eq!(sum, exact & 0xFF, "sum mismatch for {a}+{b}");
            assert_eq!(cout, exact > 0xFF, "carry mismatch for {a}+{b}");
        }
    }
}
