//! Append-only combinational netlists.

use crate::error::BuildNetlistError;
use crate::gate::GateKind;

/// Handle to a node inside a [`Netlist`].
///
/// Node ids are only meaningful for the netlist that created them; using a
/// node id with a different netlist panics in the builder methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of this node in the netlist's node array.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a node id from a raw index.
    ///
    /// Only meaningful together with [`Netlist::from_parts`] (e.g. when
    /// reconstructing a netlist from a serialized form or building lint
    /// fixtures); ids made this way bypass the builders' ownership
    /// checks.
    #[must_use]
    pub const fn from_raw(raw: u32) -> Self {
        Self(raw)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single gate instance in a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    kind: GateKind,
    /// Fan-in node ids; only the first `kind.arity()` entries are valid.
    inputs: [NodeId; 3],
    name: Option<String>,
}

impl Node {
    /// Construct a free-standing node for [`Netlist::from_parts`].
    ///
    /// # Panics
    /// Panics if `inputs` does not supply exactly `kind.arity()` ids.
    #[must_use]
    pub fn new(kind: GateKind, inputs: &[NodeId], name: Option<String>) -> Self {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "{kind} nodes take exactly {} inputs",
            kind.arity()
        );
        let mut padded = [NodeId(0); 3];
        padded[..inputs.len()].copy_from_slice(inputs);
        Self {
            kind,
            inputs: padded,
            name,
        }
    }

    /// The gate kind of this node.
    #[must_use]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Fan-in node ids in gate-input order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs[..self.kind.arity()]
    }

    /// Optional instance name (always set for primary inputs and outputs).
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// An append-only DAG of logic gates.
///
/// Gates may only reference nodes that already exist, so the insertion
/// order is automatically a topological order and simulation is a single
/// forward sweep — no event queue, levelization, or cycle check needed.
///
/// # Example
///
/// ```
/// use gatesim::Netlist;
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let y = nl.xor2(a, b);
/// nl.mark_output(y, "y");
/// assert_eq!(nl.num_inputs(), 2);
/// assert_eq!(nl.num_outputs(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Netlist {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<(NodeId, String)>,
}

impl Netlist {
    /// Create an empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: GateKind, inputs: [NodeId; 3], name: Option<String>) -> NodeId {
        for id in &inputs[..kind.arity()] {
            assert!(
                id.index() < self.nodes.len(),
                "node {id} does not belong to this netlist"
            );
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("netlist larger than u32 nodes"));
        self.nodes.push(Node { kind, inputs, name });
        id
    }

    const NIL: NodeId = NodeId(0);

    /// Add a named primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(GateKind::Input, [Self::NIL; 3], Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Add a constant node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        let kind = if value {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        self.push(kind, [Self::NIL; 3], None)
    }

    /// Add a buffer `y = a`.
    ///
    /// # Panics
    /// Panics if `a` was created by a different netlist.
    pub fn buf(&mut self, a: NodeId) -> NodeId {
        self.push(GateKind::Buf, [a, Self::NIL, Self::NIL], None)
    }

    /// Add an inverter `y = !a`.
    ///
    /// # Panics
    /// Panics if `a` was created by a different netlist.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(GateKind::Not, [a, Self::NIL, Self::NIL], None)
    }

    /// Add a two-input AND gate.
    ///
    /// # Panics
    /// Panics if an operand was created by a different netlist.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::And2, [a, b, Self::NIL], None)
    }

    /// Add a two-input OR gate.
    ///
    /// # Panics
    /// Panics if an operand was created by a different netlist.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Or2, [a, b, Self::NIL], None)
    }

    /// Add a two-input XOR gate.
    ///
    /// # Panics
    /// Panics if an operand was created by a different netlist.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Xor2, [a, b, Self::NIL], None)
    }

    /// Add a two-input NAND gate.
    ///
    /// # Panics
    /// Panics if an operand was created by a different netlist.
    pub fn nand2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Nand2, [a, b, Self::NIL], None)
    }

    /// Add a two-input NOR gate.
    ///
    /// # Panics
    /// Panics if an operand was created by a different netlist.
    pub fn nor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Nor2, [a, b, Self::NIL], None)
    }

    /// Add a two-input XNOR gate.
    ///
    /// # Panics
    /// Panics if an operand was created by a different netlist.
    pub fn xnor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Xnor2, [a, b, Self::NIL], None)
    }

    /// Add a 2:1 multiplexer `y = if sel { b } else { a }`.
    ///
    /// # Panics
    /// Panics if an operand was created by a different netlist.
    pub fn mux2(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Mux2, [sel, a, b], None)
    }

    /// Add a three-input majority gate (full-adder carry cell).
    ///
    /// # Panics
    /// Panics if an operand was created by a different netlist.
    pub fn maj3(&mut self, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        self.push(GateKind::Maj3, [a, b, c], None)
    }

    /// Mark `node` as a primary output with the given name.
    ///
    /// Output order follows the order of `mark_output` calls; the same node
    /// may back several outputs.
    ///
    /// # Panics
    /// Panics if `node` was created by a different netlist.
    pub fn mark_output(&mut self, node: NodeId, name: impl Into<String>) {
        assert!(
            node.index() < self.nodes.len(),
            "node {node} does not belong to this netlist"
        );
        self.outputs.push((node, name.into()));
    }

    /// All nodes in topological (= insertion) order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Primary-input node ids in declaration order.
    #[must_use]
    pub fn primary_inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs as `(node, name)` pairs in declaration order.
    #[must_use]
    pub fn primary_outputs(&self) -> &[(NodeId, String)] {
        &self.outputs
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Total number of nodes (including inputs and constants).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the netlist has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of gates of the given kind.
    #[must_use]
    pub fn count_kind(&self, kind: GateKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }

    /// Total transistor count of the netlist under the standard-cell
    /// mapping of [`GateKind::transistor_count`].
    #[must_use]
    pub fn transistor_count(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| u64::from(n.kind.transistor_count()))
            .sum()
    }

    /// Assemble a netlist directly from its parts, bypassing the
    /// builders' invariants.
    ///
    /// Intended for deserialization and for constructing deliberately
    /// malformed fixtures for the [linter](crate::lint); netlists made
    /// this way may contain forward references (even combinational
    /// cycles), dangling ids, or inconsistent input lists — run
    /// [`Netlist::validate`] and [`Netlist::lint`](crate::lint) before
    /// simulating.
    #[must_use]
    pub fn from_parts(
        nodes: Vec<Node>,
        inputs: Vec<NodeId>,
        outputs: Vec<(NodeId, String)>,
    ) -> Self {
        Self {
            nodes,
            inputs,
            outputs,
        }
    }

    /// Validate the structural invariants the builders normally enforce.
    ///
    /// This always holds for netlists built through the public API (the
    /// builders panic on foreign ids); it is exposed for netlists coming
    /// from deserialization or [`Netlist::from_parts`]. Checked:
    ///
    /// * every gate references only earlier nodes (no forward references,
    ///   hence no combinational cycles);
    /// * every primary output references an in-range node;
    /// * output names are unique;
    /// * the primary-input list and the `Input`-kind nodes agree.
    ///
    /// # Errors
    /// Returns [`BuildNetlistError::UnknownNode`] on a dangling gate
    /// reference, [`BuildNetlistError::InvalidOutput`] on an out-of-range
    /// output, [`BuildNetlistError::DuplicateOutputName`] on a repeated
    /// output name, and [`BuildNetlistError::MalformedInputList`] on an
    /// inconsistent input list.
    pub fn validate(&self) -> Result<(), BuildNetlistError> {
        for (idx, node) in self.nodes.iter().enumerate() {
            for input in node.inputs() {
                if input.index() >= idx {
                    return Err(BuildNetlistError::UnknownNode {
                        node: input.0,
                        len: idx,
                    });
                }
            }
        }
        for (node, name) in &self.outputs {
            if node.index() >= self.nodes.len() {
                return Err(BuildNetlistError::InvalidOutput {
                    name: name.clone(),
                    node: node.0,
                    len: self.nodes.len(),
                });
            }
        }
        let mut names: Vec<&str> = self.outputs.iter().map(|(_, n)| n.as_str()).collect();
        names.sort_unstable();
        for pair in names.windows(2) {
            if pair[0] == pair[1] {
                return Err(BuildNetlistError::DuplicateOutputName(pair[0].to_owned()));
            }
        }
        let mut listed = vec![false; self.nodes.len()];
        for id in &self.inputs {
            let in_range = id.index() < self.nodes.len();
            if !in_range || self.nodes[id.index()].kind != GateKind::Input {
                return Err(BuildNetlistError::MalformedInputList { node: id.0 });
            }
            listed[id.index()] = true;
        }
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.kind == GateKind::Input && !listed[idx] {
                return Err(BuildNetlistError::MalformedInputList {
                    node: u32::try_from(idx).expect("netlist larger than u32 nodes"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_is_topological() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.and2(a, b);
        let y = nl.or2(x, a);
        nl.mark_output(y, "y");
        nl.validate().expect("valid netlist");
        assert_eq!(nl.len(), 4);
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.nodes()[y.index()].inputs(), &[x, a]);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_node_id_panics() {
        let mut nl1 = Netlist::new();
        let a = nl1.input("a");
        let b = nl1.input("b");
        let _ = nl1.and2(a, b);

        let mut nl2 = Netlist::new();
        let c = nl2.input("c");
        // `a` has index 0 which exists in nl2 too, so craft an id past the end.
        let foreign = NodeId(10);
        let _ = nl2.and2(c, foreign);
    }

    #[test]
    fn validate_rejects_duplicate_output_names() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.mark_output(a, "y");
        nl.mark_output(a, "y");
        assert_eq!(
            nl.validate(),
            Err(BuildNetlistError::DuplicateOutputName("y".into()))
        );
    }

    #[test]
    fn count_kind_and_transistors() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor2(a, b);
        let _ = nl.xor2(x, a);
        assert_eq!(nl.count_kind(GateKind::Xor2), 2);
        assert_eq!(nl.transistor_count(), 20);
    }

    #[test]
    fn constants_have_no_fanin() {
        let mut nl = Netlist::new();
        let one = nl.constant(true);
        let zero = nl.constant(false);
        assert!(nl.nodes()[one.index()].inputs().is_empty());
        assert_eq!(nl.nodes()[zero.index()].kind(), GateKind::Const0);
    }

    #[test]
    fn validate_rejects_out_of_range_outputs() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.mark_output(a, "y");
        let broken = Netlist::from_parts(
            nl.nodes().to_vec(),
            nl.primary_inputs().to_vec(),
            vec![(NodeId::from_raw(7), "ghost".into())],
        );
        assert_eq!(
            broken.validate(),
            Err(BuildNetlistError::InvalidOutput {
                name: "ghost".into(),
                node: 7,
                len: 1,
            })
        );
    }

    #[test]
    fn validate_rejects_malformed_input_lists() {
        // An Input-kind node missing from the primary-input list.
        let nodes = vec![Node::new(GateKind::Input, &[], Some("a".into()))];
        let unlisted = Netlist::from_parts(nodes.clone(), vec![], vec![]);
        assert_eq!(
            unlisted.validate(),
            Err(BuildNetlistError::MalformedInputList { node: 0 })
        );
        // A listed id that is not an Input node.
        let nodes = vec![
            Node::new(GateKind::Input, &[], Some("a".into())),
            Node::new(GateKind::Not, &[NodeId::from_raw(0)], None),
        ];
        let wrong_kind = Netlist::from_parts(
            nodes,
            vec![NodeId::from_raw(0), NodeId::from_raw(1)],
            vec![],
        );
        assert_eq!(
            wrong_kind.validate(),
            Err(BuildNetlistError::MalformedInputList { node: 1 })
        );
    }

    #[test]
    fn from_parts_round_trips_valid_netlists() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.xor2(a, b);
        nl.mark_output(y, "y");
        let rebuilt = Netlist::from_parts(
            nl.nodes().to_vec(),
            nl.primary_inputs().to_vec(),
            nl.primary_outputs().to_vec(),
        );
        rebuilt.validate().expect("round trip is valid");
        assert_eq!(rebuilt, nl);
    }

    #[test]
    fn clone_round_trip_preserves_structure() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n = nl.not(a);
        nl.mark_output(n, "y");
        let copy = nl.clone();
        copy.validate().expect("clone of a valid netlist is valid");
        assert_eq!(copy, nl);
    }
}
