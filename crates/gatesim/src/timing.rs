//! Static timing analysis: per-gate delays and critical paths.
//!
//! Approximate adders don't just save energy — truncating or segmenting
//! the carry chain shortens the critical path, which is what lets
//! voltage/frequency scaling convert the slack into further savings.
//! This module measures that: a unit-delay-per-cell model (configurable
//! per gate kind) and a longest-path computation over the netlist DAG.

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Per-gate-kind propagation delays (arbitrary consistent units).
///
/// The default assigns delays proportional to a typical standard-cell
/// library's logical effort: inverters fastest, XOR/majority/mux cells
/// slowest.
///
/// # Example
///
/// ```
/// use gatesim::builders;
/// use gatesim::timing::DelayModel;
///
/// let model = DelayModel::default();
/// let (rca8, _) = builders::ripple_carry_adder(8);
/// let (rca16, _) = builders::ripple_carry_adder(16);
/// // The ripple carry chain dominates: delay grows with width.
/// assert!(model.critical_path(&rca16) > model.critical_path(&rca8));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    delays: [f64; 13],
}

impl Default for DelayModel {
    fn default() -> Self {
        let mut delays = [0.0; 13];
        for kind in GateKind::all() {
            delays[Self::slot(kind)] = match kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0.0,
                GateKind::Not => 1.0,
                GateKind::Buf => 1.2,
                GateKind::Nand2 | GateKind::Nor2 => 1.4,
                GateKind::And2 | GateKind::Or2 => 2.0,
                GateKind::Xor2 | GateKind::Xnor2 => 2.8,
                GateKind::Mux2 => 3.0,
                GateKind::Maj3 => 3.2,
            };
        }
        Self { delays }
    }
}

impl DelayModel {
    fn slot(kind: GateKind) -> usize {
        GateKind::all()
            .iter()
            .position(|&k| k == kind)
            .expect("all() covers every kind")
    }

    /// Create a model with an explicit delay per gate kind, in the order
    /// of [`GateKind::all`].
    ///
    /// # Panics
    /// Panics if any delay is negative or non-finite.
    #[must_use]
    pub fn new(delays: [f64; 13]) -> Self {
        assert!(
            delays.iter().all(|d| d.is_finite() && *d >= 0.0),
            "delays must be non-negative"
        );
        Self { delays }
    }

    /// Propagation delay of one gate kind.
    #[must_use]
    pub fn delay(&self, kind: GateKind) -> f64 {
        self.delays[Self::slot(kind)]
    }

    /// Arrival time of every node: the longest input-to-node path.
    #[must_use]
    pub fn arrival_times(&self, netlist: &Netlist) -> Vec<f64> {
        let mut arrival = vec![0.0f64; netlist.len()];
        for (idx, node) in netlist.nodes().iter().enumerate() {
            let input_arrival = node
                .inputs()
                .iter()
                .map(|dep| arrival[dep.index()])
                .fold(0.0f64, f64::max);
            arrival[idx] = input_arrival + self.delay(node.kind());
        }
        arrival
    }

    /// Critical-path delay: the latest arrival among primary outputs (or
    /// among all nodes if no outputs are marked).
    #[must_use]
    pub fn critical_path(&self, netlist: &Netlist) -> f64 {
        let arrival = self.arrival_times(netlist);
        let outputs = netlist.primary_outputs();
        if outputs.is_empty() {
            arrival.iter().copied().fold(0.0, f64::max)
        } else {
            outputs
                .iter()
                .map(|(id, _)| arrival[id.index()])
                .fold(0.0, f64::max)
        }
    }

    /// Logic depth (in gate levels, ignoring per-kind delays) of the
    /// netlist — the unit-delay critical path.
    #[must_use]
    pub fn logic_depth(netlist: &Netlist) -> usize {
        let mut depth = vec![0usize; netlist.len()];
        for (idx, node) in netlist.nodes().iter().enumerate() {
            let input_depth = node
                .inputs()
                .iter()
                .map(|dep| depth[dep.index()])
                .max()
                .unwrap_or(0);
            depth[idx] = match node.kind() {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
                _ => input_depth + 1,
            };
        }
        let outputs = netlist.primary_outputs();
        if outputs.is_empty() {
            depth.into_iter().max().unwrap_or(0)
        } else {
            outputs
                .iter()
                .map(|(id, _)| depth[id.index()])
                .max()
                .unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::netlist::Netlist;

    #[test]
    fn inputs_have_zero_arrival() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.mark_output(a, "y");
        let model = DelayModel::default();
        assert_eq!(model.critical_path(&nl), 0.0);
        assert_eq!(DelayModel::logic_depth(&nl), 0);
    }

    #[test]
    fn chain_delay_accumulates() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let n3 = nl.not(n2);
        nl.mark_output(n3, "y");
        let model = DelayModel::default();
        assert!((model.critical_path(&nl) - 3.0).abs() < 1e-12);
        assert_eq!(DelayModel::logic_depth(&nl), 3);
    }

    #[test]
    fn ripple_carry_delay_is_linear_in_width() {
        let model = DelayModel::default();
        let (w8, _) = builders::ripple_carry_adder(8);
        let (w16, _) = builders::ripple_carry_adder(16);
        let (w32, _) = builders::ripple_carry_adder(32);
        let d8 = model.critical_path(&w8);
        let d16 = model.critical_path(&w16);
        let d32 = model.critical_path(&w32);
        assert!(d8 < d16 && d16 < d32);
        // Each extra bit adds one majority cell to the carry chain.
        let per_bit = (d32 - d16) / 16.0;
        assert!((per_bit - model.delay(crate::GateKind::Maj3)).abs() < 1e-9);
    }

    #[test]
    fn critical_path_ignores_dead_logic_when_outputs_marked() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        // A deep dead chain...
        let mut dead = nl.xor2(a, b);
        for _ in 0..10 {
            dead = nl.xor2(dead, a);
        }
        // ...and a shallow observable path.
        let y = nl.and2(a, b);
        nl.mark_output(y, "y");
        let model = DelayModel::default();
        assert!((model.critical_path(&nl) - model.delay(crate::GateKind::And2)).abs() < 1e-12);
        let _ = dead;
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_panics() {
        let mut delays = [1.0; 13];
        delays[5] = -1.0;
        let _ = DelayModel::new(delays);
    }
}
