//! Bit-parallel (word-level) simulation: 64 input patterns per gate op.
//!
//! The scalar [`Simulator`](crate::Simulator) evaluates one `&[bool]`
//! pattern per call. [`PackedSimulator`] evaluates **64 patterns at
//! once** by storing one `u64` per node in which bit `ℓ` ("lane" `ℓ`)
//! carries the node's value under the `ℓ`-th input pattern. Two-input
//! gates become single word instructions (`&`, `|`, `^`, `!`), so an
//! exhaustive sweep over an n-input circuit costs `2^n / 64` forward
//! passes instead of `2^n`.
//!
//! # Toggle identity
//!
//! Packed simulation preserves the scalar simulator's switching-activity
//! accounting *exactly*, not just its outputs. Within a word, the
//! transition of node `v` between lane `ℓ-1` and lane `ℓ` is bit `ℓ` of
//! `w ^ (w << 1)`; the transition into lane 0 comes from the last lane of
//! the previous word, carried in a per-node `last` bit. The very first
//! pattern ever evaluated is the baseline and contributes no toggle
//! (`x &= !1` on the first word), matching the scalar convention that
//! the first `evaluate` call establishes state without charging energy.
//! Consequently, feeding the same pattern sequence to [`Simulator`] one
//! at a time and to [`PackedSimulator`] 64 at a time yields *identical
//! per-node toggle counts*, and therefore identical
//! [`EnergyModel`](crate::EnergyModel) readings — a property pinned by
//! the `packed_properties` integration tests.
//!
//! # Example
//!
//! ```
//! use gatesim::{Netlist, PackedSimulator, Simulator};
//! use gatesim::packed::exhaustive_input_word;
//!
//! let mut nl = Netlist::new();
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let y = nl.xor2(a, b);
//! nl.mark_output(y, "y");
//!
//! // All four patterns of the 2-input XOR in a single packed call.
//! let mut packed = PackedSimulator::new(&nl);
//! let words = vec![exhaustive_input_word(0, 0), exhaustive_input_word(1, 0)];
//! let out = packed.evaluate_packed(&words, 4).unwrap();
//! assert_eq!(out[0], 0b0110); // 0^0, 1^0, 0^1, 1^1
//!
//! // Identical toggles to the scalar sweep over the same four patterns.
//! let mut scalar = Simulator::new(&nl);
//! for p in 0u64..4 {
//!     scalar.evaluate(&[p & 1 == 1, p >> 1 & 1 == 1]).unwrap();
//! }
//! assert_eq!(packed.toggles(), scalar.toggles());
//! ```

use crate::energy::EnergyModel;
use crate::error::SimulateError;
use crate::gate::GateKind;
use crate::netlist::Netlist;
use crate::par::Executor;
use crate::stats::ActivityReport;

/// Number of patterns (lanes) carried per machine word.
pub const LANES: usize = 64;

/// Bit-parallel simulator: 64 input patterns per evaluation, with
/// per-gate toggle counts identical to the scalar [`Simulator`].
///
/// [`Simulator`]: crate::Simulator
#[derive(Debug, Clone)]
pub struct PackedSimulator<'a> {
    netlist: &'a Netlist,
    words: Vec<u64>,
    last: Vec<bool>,
    toggles: Vec<u64>,
    evaluations: u64,
}

impl<'a> PackedSimulator<'a> {
    /// Create a packed simulator for the given netlist.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        Self {
            netlist,
            words: vec![0; netlist.len()],
            last: vec![false; netlist.len()],
            toggles: vec![0; netlist.len()],
            evaluations: 0,
        }
    }

    /// The netlist this simulator evaluates.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluate `lanes` input patterns at once (1 ≤ `lanes` ≤ 64).
    ///
    /// `inputs[j]` carries, in bit `ℓ`, the value of primary input `j`
    /// under the `ℓ`-th pattern of this word. Returns one `u64` per
    /// primary output in declaration order, with bits above `lanes`
    /// cleared. Toggles are charged per lane-to-lane transition,
    /// continuing seamlessly from the previous call's final lane.
    ///
    /// # Errors
    /// Returns [`SimulateError::InputLengthMismatch`] if `inputs` does
    /// not hold exactly one word per primary input.
    ///
    /// # Panics
    /// Panics if `lanes` is 0 or exceeds [`LANES`].
    pub fn evaluate_packed(
        &mut self,
        inputs: &[u64],
        lanes: usize,
    ) -> Result<Vec<u64>, SimulateError> {
        assert!(
            (1..=LANES).contains(&lanes),
            "lanes must be in 1..=64, got {lanes}"
        );
        let expected = self.netlist.num_inputs();
        if inputs.len() != expected {
            return Err(SimulateError::InputLengthMismatch {
                supplied: inputs.len(),
                expected,
            });
        }
        let lane_mask = if lanes == LANES {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        let first = self.evaluations == 0;
        let mut input_iter = inputs.iter().copied();
        for (idx, node) in self.netlist.nodes().iter().enumerate() {
            let word = match node.kind() {
                GateKind::Input => input_iter.next().expect("length checked above"),
                GateKind::Const0 => 0,
                GateKind::Const1 => u64::MAX,
                kind => {
                    let mut ins = [0u64; 3];
                    for (slot, dep) in ins.iter_mut().zip(node.inputs()) {
                        *slot = self.words[dep.index()];
                    }
                    eval_word(kind, ins)
                }
            };
            // Bit ℓ of `x` is the transition into lane ℓ: from lane ℓ-1
            // within the word, or from the previous word's last lane.
            let mut x = word ^ ((word << 1) | u64::from(self.last[idx]));
            if first {
                x &= !1; // the first-ever pattern is the toggle-free baseline
            }
            self.toggles[idx] += u64::from((x & lane_mask).count_ones());
            self.last[idx] = (word >> (lanes - 1)) & 1 == 1;
            self.words[idx] = word;
        }
        self.evaluations += lanes as u64;
        Ok(self
            .netlist
            .primary_outputs()
            .iter()
            .map(|(id, _)| self.words[id.index()] & lane_mask)
            .collect())
    }

    /// Evaluate a full 64-lane word (shorthand for
    /// [`evaluate_packed`](Self::evaluate_packed) with `lanes = 64`).
    ///
    /// # Errors
    /// Returns [`SimulateError::InputLengthMismatch`] if `inputs` does
    /// not hold exactly one word per primary input.
    pub fn evaluate_word(&mut self, inputs: &[u64]) -> Result<Vec<u64>, SimulateError> {
        self.evaluate_packed(inputs, LANES)
    }

    /// Number of input *patterns* evaluated so far (64 per full word) —
    /// directly comparable to the scalar simulator's
    /// [`evaluations`](crate::Simulator::evaluations) count.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Total output toggles across all nodes since construction (the
    /// first pattern is the baseline and contributes none).
    #[must_use]
    pub fn total_toggles(&self) -> u64 {
        self.toggles.iter().sum()
    }

    /// Per-node toggle counts, indexed by node id.
    #[must_use]
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Accumulated energy under `model` (dynamic switching + leakage),
    /// identical to what the scalar simulator reports for the same
    /// pattern sequence.
    #[must_use]
    pub fn energy(&self, model: &EnergyModel) -> f64 {
        model.energy(self.netlist, &self.toggles, self.evaluations)
    }

    /// Structured switching-activity report for this simulation run.
    #[must_use]
    pub fn activity_report(&self, model: &EnergyModel) -> ActivityReport {
        ActivityReport::new(self.netlist, &self.toggles, self.evaluations, model)
    }

    /// Reset values, toggle counts, and the pattern counter.
    pub fn reset(&mut self) {
        self.words.fill(0);
        self.last.fill(false);
        self.toggles.fill(0);
        self.evaluations = 0;
    }
}

/// Word-level evaluation of one gate function (lane-independent).
fn eval_word(kind: GateKind, ins: [u64; 3]) -> u64 {
    let [x, y, z] = ins;
    match kind {
        GateKind::Input => unreachable!("inputs are set by the simulator"),
        GateKind::Const0 => 0,
        GateKind::Const1 => u64::MAX,
        GateKind::Buf => x,
        GateKind::Not => !x,
        GateKind::And2 => x & y,
        GateKind::Or2 => x | y,
        GateKind::Xor2 => x ^ y,
        GateKind::Nand2 => !(x & y),
        GateKind::Nor2 => !(x | y),
        GateKind::Xnor2 => !(x ^ y),
        // (sel, a, b): y = sel ? b : a, per lane.
        GateKind::Mux2 => (x & z) | (!x & y),
        GateKind::Maj3 => (x & y) | (y & z) | (x & z),
    }
}

/// The packed word for input bit `bit` over the 64 consecutive patterns
/// `base .. base + 64`, where pattern `p` assigns input `j` the value
/// `(p >> j) & 1` (the LSB-first convention of [`equiv::check`]).
///
/// For a 64-aligned `base` the low six input bits are the fixed periodic
/// masks (`0xAAAA…`, `0xCCCC…`, …) and higher bits broadcast a single
/// bit of `base`; unaligned bases fall back to a per-lane loop.
///
/// [`equiv::check`]: crate::equiv::check
#[must_use]
pub fn exhaustive_input_word(bit: u32, base: u64) -> u64 {
    const PERIODIC: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    if base.is_multiple_of(LANES as u64) {
        if bit < 6 {
            PERIODIC[bit as usize]
        } else {
            // Broadcast bit `bit` of `base`: constant across the word.
            0u64.wrapping_sub((base >> bit) & 1)
        }
    } else {
        let mut word = 0u64;
        for lane in 0..LANES as u64 {
            if (base.wrapping_add(lane) >> bit) & 1 == 1 {
                word |= 1 << lane;
            }
        }
        word
    }
}

/// Packed input words for all `num_inputs` primary inputs over the
/// patterns `base .. base + 64` (see [`exhaustive_input_word`]).
#[must_use]
pub fn exhaustive_input_words(num_inputs: usize, base: u64) -> Vec<u64> {
    (0..num_inputs as u32)
        .map(|bit| exhaustive_input_word(bit, base))
        .collect()
}

/// Transpose up to 64 Boolean input vectors into packed words: bit `ℓ`
/// of `result[j]` is `vectors[ℓ][j]`.
///
/// # Panics
/// Panics if `vectors` is empty or holds more than [`LANES`] entries;
/// vectors shorter than `num_inputs` simply leave the high bits clear
/// (length errors surface in [`PackedSimulator::evaluate_packed`]).
#[must_use]
pub fn pack_vectors<V: AsRef<[bool]>>(vectors: &[V], num_inputs: usize) -> Vec<u64> {
    assert!(
        !vectors.is_empty() && vectors.len() <= LANES,
        "pack_vectors takes 1..=64 vectors, got {}",
        vectors.len()
    );
    let mut words = vec![0u64; num_inputs];
    for (lane, vector) in vectors.iter().enumerate() {
        for (j, &bit) in vector.as_ref().iter().take(num_inputs).enumerate() {
            words[j] |= u64::from(bit) << lane;
        }
    }
    words
}

/// Per-node toggle counts for simulating `vectors` in order — exactly
/// what the scalar [`Simulator`](crate::Simulator) would accumulate —
/// computed packed and in parallel.
///
/// The trace is split into contiguous chunks; each chunk re-evaluates
/// the vector *preceding* it as a toggle-free baseline, so every
/// adjacent-vector transition is charged exactly once and the summed
/// counts are bit-identical to a serial scalar run, for any thread
/// count (see the determinism rules in [`par`](crate::par)).
///
/// # Errors
/// Returns [`SimulateError::InputLengthMismatch`] if any vector's
/// length differs from the netlist's primary-input count.
pub fn trace_toggles<V: AsRef<[bool]> + Sync>(
    netlist: &Netlist,
    vectors: &[V],
    exec: &Executor,
) -> Result<Vec<u64>, SimulateError> {
    let expected = netlist.num_inputs();
    for vector in vectors {
        let supplied = vector.as_ref().len();
        if supplied != expected {
            return Err(SimulateError::InputLengthMismatch { supplied, expected });
        }
    }
    if vectors.is_empty() {
        return Ok(vec![0; netlist.len()]);
    }
    // Big enough to amortize per-chunk setup, small enough to balance
    // load across workers; a multiple of 64 keeps full lanes.
    const CHUNK: u64 = 4096;
    let chunks = exec.map_chunks(vectors.len() as u64, CHUNK, |start, end| {
        let mut sim = PackedSimulator::new(netlist);
        // Chunks after the first replay their predecessor vector as the
        // baseline so the transition into `start` is charged here (and
        // nowhere else).
        let lo = (start as usize).saturating_sub(1);
        let mut pos = lo;
        while pos < end as usize {
            let lanes = (end as usize - pos).min(LANES);
            let words = pack_vectors(&vectors[pos..pos + lanes], expected);
            sim.evaluate_packed(&words, lanes)
                .expect("vector lengths checked above");
            pos += lanes;
        }
        sim.toggles().to_vec()
    });
    let mut total = vec![0u64; netlist.len()];
    for chunk in chunks {
        for (acc, t) in total.iter_mut().zip(chunk) {
            *acc += t;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::sim::Simulator;

    #[test]
    fn packed_xor_truth_table() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.xor2(a, b);
        nl.mark_output(y, "y");
        let mut sim = PackedSimulator::new(&nl);
        let out = sim
            .evaluate_packed(&exhaustive_input_words(2, 0), 4)
            .unwrap();
        assert_eq!(out, vec![0b0110]);
    }

    #[test]
    fn packed_matches_scalar_on_ripple_carry_exhaustive() {
        let (nl, ports) = builders::ripple_carry_adder(4);
        let n = nl.num_inputs();
        let total = 1u64 << n;

        let mut scalar = Simulator::new(&nl);
        let mut scalar_outs = Vec::new();
        for pattern in 0..total {
            let inputs: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            scalar_outs.push(scalar.evaluate(&inputs).unwrap());
        }

        let mut packed = PackedSimulator::new(&nl);
        let mut base = 0;
        while base < total {
            let lanes = (total - base).min(LANES as u64) as usize;
            let out = packed
                .evaluate_packed(&exhaustive_input_words(n, base), lanes)
                .unwrap();
            for lane in 0..lanes {
                let expected = &scalar_outs[(base + lane as u64) as usize];
                for (o, word) in out.iter().enumerate() {
                    assert_eq!(
                        (word >> lane) & 1 == 1,
                        expected[o],
                        "output {o}, pattern {}",
                        base + lane as u64
                    );
                }
            }
            base += lanes as u64;
        }

        assert_eq!(packed.toggles(), scalar.toggles());
        assert_eq!(packed.evaluations(), scalar.evaluations());
        let model = EnergyModel::default();
        assert_eq!(
            packed.energy(&model).to_bits(),
            scalar.energy(&model).to_bits()
        );
        // Sanity: the adder actually adds.
        let words = exhaustive_input_words(n, 0);
        let mut check = PackedSimulator::new(&nl);
        let out = check.evaluate_packed(&words, LANES).unwrap();
        for lane in 0..LANES {
            let pattern = lane as u64;
            let bits: Vec<bool> = (0..nl.num_outputs())
                .map(|o| (out[o] >> lane) & 1 == 1)
                .collect();
            let (sum, cout) = ports.unpack_result(&bits);
            let a = pattern & 0xF;
            let b = (pattern >> 4) & 0xF;
            let cin = (pattern >> 8) & 1;
            let exact = a + b + cin;
            assert_eq!(sum, exact & 0xF);
            assert_eq!(cout, exact > 0xF);
        }
    }

    #[test]
    fn partial_lanes_chain_toggles_across_words() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let y = nl.not(a);
        nl.mark_output(y, "y");

        // Alternate the input one pattern at a time across many small calls.
        let mut packed = PackedSimulator::new(&nl);
        let mut scalar = Simulator::new(&nl);
        let mut pattern = 0u64;
        for lanes in [1usize, 3, 2, 5, 64, 7] {
            let mut word = 0u64;
            for lane in 0..lanes {
                let bit = pattern % 2 == 1;
                if bit {
                    word |= 1 << lane;
                }
                scalar.evaluate(&[bit]).unwrap();
                pattern += 1;
            }
            packed.evaluate_packed(&[word], lanes).unwrap();
        }
        assert_eq!(packed.toggles(), scalar.toggles());
        assert_eq!(packed.evaluations(), scalar.evaluations());
    }

    #[test]
    fn rejects_wrong_input_count() {
        let (nl, _) = builders::ripple_carry_adder(2);
        let mut sim = PackedSimulator::new(&nl);
        let err = sim.evaluate_packed(&[0], LANES).unwrap_err();
        assert_eq!(
            err,
            SimulateError::InputLengthMismatch {
                supplied: 1,
                expected: nl.num_inputs(),
            }
        );
    }

    #[test]
    fn constants_never_toggle() {
        let mut nl = Netlist::new();
        let c1 = nl.constant(true);
        let c0 = nl.constant(false);
        let y = nl.or2(c0, c1);
        nl.mark_output(y, "y");
        let mut sim = PackedSimulator::new(&nl);
        for _ in 0..3 {
            let out = sim.evaluate_packed(&[], 64).unwrap();
            assert_eq!(out[0], u64::MAX);
        }
        assert_eq!(sim.total_toggles(), 0);
    }

    #[test]
    fn exhaustive_words_match_per_lane_definition() {
        for base in [0u64, 64, 128, 4096, 17] {
            for bit in 0..10u32 {
                let word = exhaustive_input_word(bit, base);
                for lane in 0..LANES as u64 {
                    let expected = ((base + lane) >> bit) & 1 == 1;
                    assert_eq!(
                        (word >> lane) & 1 == 1,
                        expected,
                        "bit {bit}, base {base}, lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn trace_toggles_matches_scalar_for_any_thread_count() {
        let (nl, ports) = builders::ripple_carry_adder(6);
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut vectors = Vec::new();
        for _ in 0..300 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = state >> 10 & 0x3F;
            let b = state >> 30 & 0x3F;
            vectors.push(ports.pack_operands(a, b, state >> 60 & 1 == 1));
        }

        let mut scalar = Simulator::new(&nl);
        for v in &vectors {
            scalar.evaluate(v).unwrap();
        }

        for threads in [1, 2, 8] {
            let toggles = trace_toggles(&nl, &vectors, &Executor::with_threads(threads)).unwrap();
            assert_eq!(toggles, scalar.toggles(), "threads={threads}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let y = nl.not(a);
        nl.mark_output(y, "y");
        let mut sim = PackedSimulator::new(&nl);
        sim.evaluate_packed(&[0xAAAA], 16).unwrap();
        assert!(sim.total_toggles() > 0);
        sim.reset();
        assert_eq!(sim.total_toggles(), 0);
        assert_eq!(sim.evaluations(), 0);
    }
}
