//! Switched-capacitance energy model.

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// First-order CMOS energy model: dynamic energy proportional to switched
/// capacitance, plus a per-cycle leakage term proportional to total device
/// width.
///
/// The capacitance of each cell is taken proportional to its transistor
/// count ([`GateKind::transistor_count`]), the usual architectural-level
/// approximation (cf. Weste & Harris, *CMOS VLSI Design*, 4th ed.). All
/// energies are in arbitrary consistent units; the ApproxIt harness only
/// ever reports energy *ratios* (normalized to the fully accurate mode),
/// exactly as the paper does.
///
/// # Example
///
/// ```
/// use gatesim::{EnergyModel, GateKind};
///
/// let model = EnergyModel::default();
/// // An XOR toggle costs more than a NAND toggle.
/// assert!(model.toggle_energy(GateKind::Xor2) > model.toggle_energy(GateKind::Nand2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy per unit of switched capacitance (per transistor-count unit).
    dynamic_per_cap: f64,
    /// Leakage energy per transistor per evaluation cycle.
    leakage_per_transistor_cycle: f64,
}

impl Default for EnergyModel {
    /// Dynamic-dominated default: leakage is 0.5% of the energy a
    /// transistor-unit toggle costs, per cycle.
    fn default() -> Self {
        Self {
            dynamic_per_cap: 1.0,
            leakage_per_transistor_cycle: 0.005,
        }
    }
}

impl EnergyModel {
    /// Create a model with explicit coefficients.
    ///
    /// `dynamic_per_cap` is the energy of one output toggle per unit of
    /// cell capacitance; `leakage_per_transistor_cycle` is the static
    /// energy each transistor leaks per evaluation.
    #[must_use]
    pub fn new(dynamic_per_cap: f64, leakage_per_transistor_cycle: f64) -> Self {
        Self {
            dynamic_per_cap,
            leakage_per_transistor_cycle,
        }
    }

    /// A purely dynamic model (no leakage), handy for unit tests.
    #[must_use]
    pub fn dynamic_only() -> Self {
        Self::new(1.0, 0.0)
    }

    /// Energy of a single output toggle of a gate of the given kind.
    #[must_use]
    pub fn toggle_energy(&self, kind: GateKind) -> f64 {
        f64::from(kind.transistor_count()) * self.dynamic_per_cap
    }

    /// Leakage energy of the whole netlist for one evaluation cycle.
    #[must_use]
    pub fn leakage_per_cycle(&self, netlist: &Netlist) -> f64 {
        netlist.transistor_count() as f64 * self.leakage_per_transistor_cycle
    }

    /// Total energy of a simulation run: per-node toggles weighted by cell
    /// capacitance, plus leakage over `cycles` evaluations.
    ///
    /// # Panics
    /// Panics if `toggles` does not have one entry per netlist node.
    #[must_use]
    pub fn energy(&self, netlist: &Netlist, toggles: &[u64], cycles: u64) -> f64 {
        assert_eq!(
            toggles.len(),
            netlist.len(),
            "toggle array length must match netlist size"
        );
        let dynamic: f64 = netlist
            .nodes()
            .iter()
            .zip(toggles)
            .map(|(node, &t)| t as f64 * self.toggle_energy(node.kind()))
            .sum();
        dynamic + cycles as f64 * self.leakage_per_cycle(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn dynamic_energy_scales_with_toggles() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let y = nl.not(a);
        nl.mark_output(y, "y");

        let model = EnergyModel::dynamic_only();
        let e1 = model.energy(&nl, &[1, 1], 2);
        let e2 = model.energy(&nl, &[2, 2], 2);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
    }

    #[test]
    fn leakage_scales_with_cycles_and_size() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let y = nl.not(a);
        nl.mark_output(y, "y");

        let model = EnergyModel::new(0.0, 1.0);
        // Not = 2 transistors, input = 0.
        assert!((model.energy(&nl, &[0, 0], 3) - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "toggle array length")]
    fn mismatched_toggle_array_panics() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.mark_output(a, "y");
        let _ = EnergyModel::default().energy(&nl, &[0, 0, 0], 1);
    }

    #[test]
    fn default_is_dynamic_dominated() {
        let model = EnergyModel::default();
        assert!(model.toggle_energy(GateKind::Nand2) > 100.0 * 0.005);
    }
}
