//! Combinational equivalence checking by simulation.
//!
//! A lightweight stand-in for a SAT-based miter: two netlists with the
//! same interface are compared on input vectors — exhaustively when the
//! input count permits, by seeded random sampling otherwise. Simulation
//! cannot *prove* equivalence for large circuits, but it is exactly the
//! right tool for this crate's uses: validating the logic optimizer and
//! cross-checking hand-built netlists against functional models.

use crate::netlist::Netlist;
use crate::sim::Simulator;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// All `2^n` input vectors agreed — the circuits are equivalent.
    Proven,
    /// `vectors` sampled vectors agreed; no counterexample found.
    Sampled {
        /// Number of vectors simulated.
        vectors: u64,
    },
    /// A differing input vector was found.
    Counterexample {
        /// The inputs (LSB-first per primary input order).
        inputs: Vec<bool>,
        /// Outputs of the first netlist.
        left: Vec<bool>,
        /// Outputs of the second netlist.
        right: Vec<bool>,
    },
    /// The interfaces differ (input or output counts), so the circuits
    /// cannot be compared.
    InterfaceMismatch,
}

impl Equivalence {
    /// `true` unless a counterexample or interface mismatch was found.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, Equivalence::Proven | Equivalence::Sampled { .. })
    }
}

/// Compare two netlists on input vectors: exhaustively if they have at
/// most `exhaustive_limit` inputs, otherwise on `samples` vectors from a
/// seeded xorshift stream.
///
/// # Panics
/// Panics if `exhaustive_limit > 24` (16M vectors is the practical
/// ceiling) or `samples` is 0.
///
/// # Example
///
/// ```
/// use gatesim::{equiv, optimize, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let one = nl.constant(true);
/// let y = nl.and2(a, one);
/// nl.mark_output(y, "y");
/// let optimized = optimize::optimize(&nl).netlist;
/// assert!(equiv::check(&nl, &optimized, 16, 1000).holds());
/// ```
#[must_use]
pub fn check(left: &Netlist, right: &Netlist, exhaustive_limit: u32, samples: u64) -> Equivalence {
    assert!(
        exhaustive_limit <= 24,
        "exhaustive limit capped at 24 inputs"
    );
    assert!(samples > 0, "samples must be positive");
    if left.num_inputs() != right.num_inputs() || left.num_outputs() != right.num_outputs() {
        return Equivalence::InterfaceMismatch;
    }
    let n = left.num_inputs();
    let mut sim_left = Simulator::new(left);
    let mut sim_right = Simulator::new(right);
    let mut try_vector = |inputs: &[bool]| -> Option<Equivalence> {
        let out_left = sim_left.evaluate(inputs).expect("interface checked");
        let out_right = sim_right.evaluate(inputs).expect("interface checked");
        if out_left == out_right {
            None
        } else {
            Some(Equivalence::Counterexample {
                inputs: inputs.to_vec(),
                left: out_left,
                right: out_right,
            })
        }
    };

    if (n as u32) <= exhaustive_limit {
        for pattern in 0..(1u64 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            if let Some(counterexample) = try_vector(&inputs) {
                return counterexample;
            }
        }
        return Equivalence::Proven;
    }

    // Seeded xorshift64* stream, bit-sliced into input vectors.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next_bit = {
        let mut buffer = 0u64;
        let mut remaining = 0u32;
        move || -> bool {
            if remaining == 0 {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                buffer = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                remaining = 64;
            }
            remaining -= 1;
            let bit = buffer & 1 == 1;
            buffer >>= 1;
            bit
        }
    };
    for _ in 0..samples {
        let inputs: Vec<bool> = (0..n).map(|_| next_bit()).collect();
        if let Some(counterexample) = try_vector(&inputs) {
            return counterexample;
        }
    }
    Equivalence::Sampled { vectors: samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::optimize::optimize;

    #[test]
    fn identical_netlists_are_proven_equivalent() {
        let (a, _) = builders::ripple_carry_adder(4);
        let (b, _) = builders::ripple_carry_adder(4);
        assert_eq!(check(&a, &b, 16, 100), Equivalence::Proven);
    }

    #[test]
    fn optimizer_output_is_equivalent() {
        let (nl, _) = builders::ripple_carry_adder(6);
        let optimized = optimize(&nl).netlist;
        assert!(check(&nl, &optimized, 16, 100).holds());
    }

    #[test]
    fn differing_circuits_yield_a_counterexample() {
        let mut left = Netlist::new();
        let a = left.input("a");
        let b = left.input("b");
        let y = left.and2(a, b);
        left.mark_output(y, "y");

        let mut right = Netlist::new();
        let a = right.input("a");
        let b = right.input("b");
        let y = right.or2(a, b);
        right.mark_output(y, "y");

        match check(&left, &right, 16, 100) {
            Equivalence::Counterexample {
                inputs,
                left,
                right,
            } => {
                // AND and OR differ exactly when inputs differ.
                assert_ne!(inputs[0], inputs[1]);
                assert_ne!(left, right);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_is_reported() {
        let (a, _) = builders::ripple_carry_adder(4);
        let (b, _) = builders::ripple_carry_adder(5);
        assert_eq!(check(&a, &b, 16, 100), Equivalence::InterfaceMismatch);
        assert!(!check(&a, &b, 16, 100).holds());
    }

    #[test]
    fn wide_circuits_fall_back_to_sampling() {
        let (a, _) = builders::ripple_carry_adder(32); // 65 inputs
        let (b, _) = builders::ripple_carry_adder(32);
        assert_eq!(check(&a, &b, 16, 50), Equivalence::Sampled { vectors: 50 });
    }

    #[test]
    fn sampling_finds_gross_differences() {
        let (exact, _) = builders::ripple_carry_adder(32);
        // A circuit that drops the carry chain entirely: same interface,
        // wildly different function.
        let mut broken = Netlist::new();
        let (a, b, _cin) = builders::declare_operands(&mut broken, 32);
        for i in 0..32 {
            let s = broken.xor2(a[i], b[i]);
            broken.mark_output(s, format!("sum{i}"));
        }
        let zero = broken.constant(false);
        broken.mark_output(zero, "cout");
        assert!(!check(&exact, &broken, 16, 200).holds());
    }
}
