//! Combinational equivalence checking: BDD proofs and simulation.
//!
//! [`prove`] is the primary entry point: it compiles both netlists into a
//! shared [ROBDD](crate::bdd) manager and compares the canonical output
//! diagrams — a real miter-style proof that returns
//! [`Equivalence::Proven`] or a concrete [`Equivalence::Counterexample`]
//! for arbitrary-width circuits (all the 16/32/64-bit adders in this
//! workspace stay polynomial under the structural variable order).
//!
//! [`check`] is the older simulation path — exhaustive for small input
//! counts, seeded random sampling otherwise. Sampling cannot prove
//! equivalence and survives mainly for cross-checking the BDD engine and
//! for circuits whose diagrams blow past the node budget; prefer
//! [`prove`] wherever BDDs fit (they do for everything this crate
//! builds). The exhaustive sweep runs on the bit-parallel
//! [`PackedSimulator`] split across cores by [`par::Executor`], yet
//! returns exactly what the old scalar loop returned (the *lowest*
//! differing pattern) regardless of thread count.
//!
//! For approximate circuits — which are deliberately *not* equivalent to
//! their exact references — [`error_bound`] characterizes the deviation
//! exactly: the fraction of input vectors with any output mismatch (via
//! BDD model counting) and the worst-case absolute word error (via
//! symbolic two's complement arithmetic), without a `2^n` sweep.
//! [`exhaustive_error_bound`] computes the same statistics by a packed
//! parallel sweep over all `2^n` vectors — an independent witness for
//! the symbolic result, and the workhorse behind the measured speedups
//! in EXPERIMENTS.md.
//!
//! [`par::Executor`]: crate::par::Executor
//! [`PackedSimulator`]: crate::PackedSimulator

use crate::bdd::{interleaved_order, Bdd, BddRef, NodeLimitExceeded};
use crate::netlist::Netlist;
use crate::packed::{exhaustive_input_words, PackedSimulator, LANES};
use crate::par::Executor;
use crate::sim::Simulator;
// audit:allow(par-reduce, import feeds the pruning hint in exhaustive_mismatch; the result reduction is the Executor's in-order fold)
use std::sync::atomic::{AtomicU64, Ordering};

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// Equivalence was established for *all* input vectors — by BDD proof
    /// ([`prove`]) or an exhaustive sweep ([`check`]).
    Proven,
    /// `vectors` sampled vectors agreed; no counterexample found. This is
    /// evidence, not proof.
    Sampled {
        /// Number of vectors simulated.
        vectors: u64,
    },
    /// A differing input vector was found.
    Counterexample {
        /// The inputs (LSB-first per primary input order).
        inputs: Vec<bool>,
        /// Outputs of the first netlist.
        left: Vec<bool>,
        /// Outputs of the second netlist.
        right: Vec<bool>,
    },
    /// The interfaces differ (input or output counts), so the circuits
    /// cannot be compared.
    InterfaceMismatch,
}

impl Equivalence {
    /// `true` unless a counterexample or interface mismatch was found.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, Equivalence::Proven | Equivalence::Sampled { .. })
    }

    /// `true` only for a full proof (not mere sampling evidence).
    #[must_use]
    pub fn is_proven(&self) -> bool {
        matches!(self, Equivalence::Proven)
    }
}

/// Largest input count for which [`check`] will sweep all `2^n` vectors;
/// larger requests are clamped here (16M vectors is the practical
/// ceiling).
pub const EXHAUSTIVE_CEILING: u32 = 24;

/// Samples used when [`prove`] has to fall back to simulation.
const FALLBACK_SAMPLES: u64 = 4096;

/// Prove or refute equivalence of two netlists with a BDD miter.
///
/// Both netlists are compiled into one BDD manager under a structural
/// variable order derived from `left` (see
/// [`interleaved_order`]); because ROBDDs are canonical, the circuits are
/// equivalent exactly when every output pair maps to the same node.
/// Inputs and outputs are matched positionally, as in [`check`].
///
/// Returns [`Equivalence::Proven`] or a concrete
/// [`Equivalence::Counterexample`]. In the unlikely event the diagrams
/// exceed the default node budget ([`Bdd::DEFAULT_NODE_LIMIT`]) the
/// check falls back to seeded random simulation and returns
/// [`Equivalence::Sampled`]; use [`prove_with_limit`] to observe the
/// budget overrun directly.
///
/// # Example
///
/// ```
/// use gatesim::{builders, equiv, Equivalence};
///
/// // 65 inputs: far beyond exhaustive simulation, trivial for BDDs.
/// let (a, _) = builders::ripple_carry_adder(32);
/// let (b, _) = builders::ripple_carry_adder(32);
/// assert_eq!(equiv::prove(&a, &b), Equivalence::Proven);
/// ```
#[must_use]
pub fn prove(left: &Netlist, right: &Netlist) -> Equivalence {
    match prove_with_limit(left, right, Bdd::DEFAULT_NODE_LIMIT) {
        Ok(verdict) => verdict,
        Err(_) => check(left, right, EXHAUSTIVE_CEILING, FALLBACK_SAMPLES),
    }
}

/// [`prove`] with an explicit BDD node budget and no simulation fallback.
///
/// # Errors
/// Returns [`NodeLimitExceeded`] if either circuit's diagrams outgrow
/// `node_limit` (e.g. under an adversarial structure the variable-order
/// heuristic cannot tame).
pub fn prove_with_limit(
    left: &Netlist,
    right: &Netlist,
    node_limit: usize,
) -> Result<Equivalence, NodeLimitExceeded> {
    if left.num_inputs() != right.num_inputs() || left.num_outputs() != right.num_outputs() {
        return Ok(Equivalence::InterfaceMismatch);
    }
    let n = left.num_inputs();
    let order = interleaved_order(left);
    let mut bdd = Bdd::with_node_limit(n as u32, node_limit);
    let left_outs = bdd.compile(left, &order)?;
    let right_outs = bdd.compile(right, &order)?;
    let mut miter = BddRef::FALSE;
    for (&l, &r) in left_outs.iter().zip(&right_outs) {
        let diff = bdd.xor(l, r)?;
        miter = bdd.or(miter, diff)?;
    }
    if miter == BddRef::FALSE {
        return Ok(Equivalence::Proven);
    }
    let assignment = bdd.any_sat(miter).expect("non-false miter is satisfiable");
    let inputs: Vec<bool> = (0..n).map(|i| assignment[order[i] as usize]).collect();
    let left_out = Simulator::new(left)
        .evaluate(&inputs)
        .expect("interface checked");
    let right_out = Simulator::new(right)
        .evaluate(&inputs)
        .expect("interface checked");
    debug_assert_ne!(left_out, right_out, "BDD counterexample must re-simulate");
    Ok(Equivalence::Counterexample {
        inputs,
        left: left_out,
        right: right_out,
    })
}

/// Exact error characterization of an approximate circuit against its
/// exact reference, computed symbolically (no vector sweep).
///
/// Produced by [`error_bound`]. Outputs are interpreted as unsigned words
/// (LSB first, matching the builder conventions); the error of a vector
/// is `approx_word − exact_word` as a signed integer, the same convention
/// as the simulation-based error statistics elsewhere in the workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBound {
    /// Exact fraction of input vectors on which any output bit differs.
    pub error_rate: f64,
    /// Worst-case absolute word error over *all* input vectors.
    pub max_abs_error: u64,
    /// Worst-case error as a distance on the `2^w` output ring:
    /// `min(d, 2^w − d)` where `d = (approx − exact) mod 2^w`. A modular
    /// adder that drops a carry wraps the plain difference to nearly
    /// `2^w`, but on the ring the damage is only the dropped carry's
    /// weight — this is the right metric for truncated/speculative
    /// adder families whose error bound is stated modulo the word width.
    pub max_ring_error: u64,
    /// An input vector attaining `max_abs_error` (LSB-first per primary
    /// input order). All-false when the circuits are equivalent.
    pub worst_case_inputs: Vec<bool>,
}

impl ErrorBound {
    /// `true` if the circuits agree on every input vector.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.max_abs_error == 0 && self.error_rate == 0.0
    }
}

/// Failure modes of [`error_bound`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorBoundError {
    /// The circuits have different input or output counts.
    InterfaceMismatch,
    /// The output word is too wide for exact `u64` error extraction.
    OutputTooWide {
        /// Number of primary outputs.
        bits: usize,
    },
    /// Too many primary inputs for an exhaustive sweep (only raised by
    /// [`exhaustive_error_bound`]; the symbolic [`error_bound`] has no
    /// such limit).
    InputTooWide {
        /// Number of primary inputs.
        inputs: usize,
    },
    /// A BDD outgrew the node budget.
    NodeLimit(NodeLimitExceeded),
}

impl std::fmt::Display for ErrorBoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorBoundError::InterfaceMismatch => {
                write!(f, "circuits have mismatched interfaces")
            }
            ErrorBoundError::OutputTooWide { bits } => {
                write!(f, "output word of {bits} bits exceeds the 63-bit limit")
            }
            ErrorBoundError::InputTooWide { inputs } => {
                write!(
                    f,
                    "{inputs} inputs exceed the exhaustive-sweep ceiling of \
                     {EXHAUSTIVE_ERROR_CEILING}; use the symbolic error_bound"
                )
            }
            ErrorBoundError::NodeLimit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ErrorBoundError {}

impl From<NodeLimitExceeded> for ErrorBoundError {
    fn from(e: NodeLimitExceeded) -> Self {
        ErrorBoundError::NodeLimit(e)
    }
}

/// Characterize the exact error of `approx` against `exact` by symbolic
/// analysis: error rate via BDD model counting, worst-case absolute word
/// error via two's complement BDD arithmetic and MSB-first maximization.
///
/// Both results are exact over all `2^n` input vectors — this supersedes
/// exhaustive simulation sweeps, which are infeasible beyond ~24 inputs.
///
/// # Errors
/// * [`ErrorBoundError::InterfaceMismatch`] if input/output counts differ;
/// * [`ErrorBoundError::OutputTooWide`] if the circuits have more than 63
///   outputs (the signed difference must fit in a `u64` word);
/// * [`ErrorBoundError::NodeLimit`] if a diagram outgrows the budget.
///
/// # Example
///
/// ```
/// use gatesim::{builders, equiv};
///
/// let (a, _) = builders::modular_adder(16);
/// let (b, _) = builders::modular_adder(16);
/// let bound = equiv::error_bound(&a, &b).unwrap();
/// assert!(bound.is_exact());
/// ```
pub fn error_bound(approx: &Netlist, exact: &Netlist) -> Result<ErrorBound, ErrorBoundError> {
    if approx.num_inputs() != exact.num_inputs() || approx.num_outputs() != exact.num_outputs() {
        return Err(ErrorBoundError::InterfaceMismatch);
    }
    let out_bits = approx.num_outputs();
    if out_bits > 63 {
        return Err(ErrorBoundError::OutputTooWide { bits: out_bits });
    }
    let n = approx.num_inputs();
    let order = interleaved_order(exact);
    let mut bdd = Bdd::new(n as u32);
    let approx_outs = bdd.compile(approx, &order)?;
    let exact_outs = bdd.compile(exact, &order)?;

    // Error rate: satisfying fraction of the miter.
    let mut miter = BddRef::FALSE;
    for (&a, &e) in approx_outs.iter().zip(&exact_outs) {
        let diff = bdd.xor(a, e)?;
        miter = bdd.or(miter, diff)?;
    }
    let error_rate = bdd.sat_fraction(miter);

    // Worst-case |approx − exact| via symbolic subtraction.
    let signed_diff = bdd.word_sub(&approx_outs, &exact_outs)?;
    let abs_diff = bdd.word_abs(&signed_diff)?;
    let (max_abs_error, witness) = bdd.max_unsigned(&abs_diff)?;
    let worst_case_inputs: Vec<bool> = (0..n).map(|i| witness[order[i] as usize]).collect();

    // Ring distance: keep only the low `out_bits` of the difference —
    // that is (approx − exact) mod 2^w as a w-bit two's complement
    // word, whose absolute value is min(d, 2^w − d).
    let ring_abs = bdd.word_abs(&signed_diff[..out_bits])?;
    let (max_ring_error, _) = bdd.max_unsigned(&ring_abs)?;
    Ok(ErrorBound {
        error_rate,
        max_abs_error,
        max_ring_error,
        worst_case_inputs,
    })
}

/// Compare two netlists by simulation: exhaustively if they have at most
/// `min(exhaustive_limit, EXHAUSTIVE_CEILING)` inputs, otherwise on
/// `samples` vectors from a seeded xorshift stream.
///
/// Limits above [`EXHAUSTIVE_CEILING`] are clamped (not an error): wider
/// circuits silently take the sampling path, so callers can pass the
/// input count directly. Prefer [`prove`] — it returns a real proof for
/// any width this workspace builds; sampling survives for cross-checking
/// the BDD engine and for circuits past the node budget.
///
/// # Panics
/// Panics if `samples` is 0.
///
/// # Example
///
/// ```
/// use gatesim::{equiv, optimize, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let one = nl.constant(true);
/// let y = nl.and2(a, one);
/// nl.mark_output(y, "y");
/// let optimized = optimize::optimize(&nl).netlist;
/// assert!(equiv::check(&nl, &optimized, 16, 1000).holds());
/// ```
#[must_use]
pub fn check(left: &Netlist, right: &Netlist, exhaustive_limit: u32, samples: u64) -> Equivalence {
    check_with(left, right, exhaustive_limit, samples, &Executor::new())
}

/// [`check`] with an explicit [`Executor`] for the exhaustive sweep.
///
/// The verdict is identical for every thread count: the parallel sweep
/// reduces to the *minimum* differing pattern, which is exactly the
/// vector the old serial loop would have reported first.
///
/// # Panics
/// Panics if `samples` is 0.
#[must_use]
pub fn check_with(
    left: &Netlist,
    right: &Netlist,
    exhaustive_limit: u32,
    samples: u64,
    exec: &Executor,
) -> Equivalence {
    let exhaustive_limit = exhaustive_limit.min(EXHAUSTIVE_CEILING);
    assert!(samples > 0, "samples must be positive");
    if left.num_inputs() != right.num_inputs() || left.num_outputs() != right.num_outputs() {
        return Equivalence::InterfaceMismatch;
    }
    let n = left.num_inputs();

    if (n as u32) <= exhaustive_limit {
        return match exhaustive_mismatch(left, right, exec) {
            Some(pattern) => {
                let inputs: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
                let out_left = Simulator::new(left)
                    .evaluate(&inputs)
                    .expect("interface checked");
                let out_right = Simulator::new(right)
                    .evaluate(&inputs)
                    .expect("interface checked");
                debug_assert_ne!(out_left, out_right);
                Equivalence::Counterexample {
                    inputs,
                    left: out_left,
                    right: out_right,
                }
            }
            None => Equivalence::Proven,
        };
    }

    let mut sim_left = Simulator::new(left);
    let mut sim_right = Simulator::new(right);
    let mut try_vector = |inputs: &[bool]| -> Option<Equivalence> {
        let out_left = sim_left.evaluate(inputs).expect("interface checked");
        let out_right = sim_right.evaluate(inputs).expect("interface checked");
        if out_left == out_right {
            None
        } else {
            Some(Equivalence::Counterexample {
                inputs: inputs.to_vec(),
                left: out_left,
                right: out_right,
            })
        }
    };

    // Seeded xorshift64* stream, bit-sliced into input vectors.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next_bit = {
        let mut buffer = 0u64;
        let mut remaining = 0u32;
        move || -> bool {
            if remaining == 0 {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                buffer = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                remaining = 64;
            }
            remaining -= 1;
            let bit = buffer & 1 == 1;
            buffer >>= 1;
            bit
        }
    };
    for _ in 0..samples {
        let inputs: Vec<bool> = (0..n).map(|_| next_bit()).collect();
        if let Some(counterexample) = try_vector(&inputs) {
            return counterexample;
        }
    }
    Equivalence::Sampled { vectors: samples }
}

/// Patterns per parallel work unit in exhaustive sweeps (multiple of 64
/// so every chunk keeps full lanes and 64-aligned bases).
const SWEEP_CHUNK: u64 = 1 << 16;

/// Lowest input pattern on which the two netlists disagree, or `None`
/// if they agree everywhere — computed packed and in parallel.
fn exhaustive_mismatch(left: &Netlist, right: &Netlist, exec: &Executor) -> Option<u64> {
    let n = left.num_inputs();
    let total = 1u64 << n;
    // Best (lowest) mismatch so far, shared so chunks that cannot beat
    // it are skipped; the reduction below stays a pure minimum, so this
    // is a pruning hint, never a determinism hazard.
    // audit:allow(par-reduce, pruning hint only: the returned value is the in-order min fold over chunk results, the atomic can only skip work)
    let best = AtomicU64::new(u64::MAX);
    let hits = exec.map_chunks(total, SWEEP_CHUNK, |start, end| -> Option<u64> {
        if start > best.load(Ordering::Relaxed) {
            return None;
        }
        let mut sim_left = PackedSimulator::new(left);
        let mut sim_right = PackedSimulator::new(right);
        let mut base = start;
        while base < end {
            let lanes = usize::try_from(end - base).map_or(LANES, |r| r.min(LANES));
            let words = exhaustive_input_words(n, base);
            let out_left = sim_left
                .evaluate_packed(&words, lanes)
                .expect("interface checked");
            let out_right = sim_right
                .evaluate_packed(&words, lanes)
                .expect("interface checked");
            let mut diff = 0u64;
            for (l, r) in out_left.iter().zip(&out_right) {
                diff |= l ^ r;
            }
            if diff != 0 {
                let pattern = base + u64::from(diff.trailing_zeros());
                // audit:allow(par-reduce, tightens the pruning hint; chunk results are still reduced in index order below)
                best.fetch_min(pattern, Ordering::Relaxed);
                return Some(pattern);
            }
            base += lanes as u64;
        }
        None
    });
    hits.into_iter().flatten().min()
}

/// Largest input count [`exhaustive_error_bound`] will sweep (`2^32`
/// patterns — minutes of packed parallel simulation, not hours).
pub const EXHAUSTIVE_ERROR_CEILING: u32 = 32;

/// [`error_bound`] computed by brute force instead of symbolically: a
/// bit-parallel sweep over all `2^n` input vectors, split across cores.
///
/// Returns the same exact statistics as the BDD-based [`error_bound`]
/// (error rate, worst-case absolute and ring error, and the lowest
/// input pattern attaining the worst absolute error), so the two
/// entirely independent engines can be cross-checked against each
/// other. Deterministic for any thread count.
///
/// # Errors
/// * [`ErrorBoundError::InterfaceMismatch`] if input/output counts differ;
/// * [`ErrorBoundError::OutputTooWide`] if the circuits have more than 63
///   outputs;
/// * [`ErrorBoundError::InputTooWide`] beyond [`EXHAUSTIVE_ERROR_CEILING`]
///   inputs (use the symbolic [`error_bound`] there).
pub fn exhaustive_error_bound(
    approx: &Netlist,
    exact: &Netlist,
) -> Result<ErrorBound, ErrorBoundError> {
    exhaustive_error_bound_with(approx, exact, &Executor::new())
}

/// Per-chunk partial result of the exhaustive error sweep.
struct ErrorSweepChunk {
    mismatches: u64,
    max_abs: u64,
    max_ring: u64,
    witness: u64,
}

/// [`exhaustive_error_bound`] with an explicit [`Executor`].
///
/// # Errors
/// Same conditions as [`exhaustive_error_bound`].
pub fn exhaustive_error_bound_with(
    approx: &Netlist,
    exact: &Netlist,
    exec: &Executor,
) -> Result<ErrorBound, ErrorBoundError> {
    if approx.num_inputs() != exact.num_inputs() || approx.num_outputs() != exact.num_outputs() {
        return Err(ErrorBoundError::InterfaceMismatch);
    }
    let out_bits = approx.num_outputs();
    if out_bits > 63 {
        return Err(ErrorBoundError::OutputTooWide { bits: out_bits });
    }
    let n = approx.num_inputs();
    if n as u32 > EXHAUSTIVE_ERROR_CEILING {
        return Err(ErrorBoundError::InputTooWide { inputs: n });
    }
    let total = 1u64 << n;
    let modulus = 1u64 << out_bits;
    let ring_mask = modulus - 1;

    let chunks = exec.map_chunks(total, SWEEP_CHUNK, |start, end| {
        let mut sim_approx = PackedSimulator::new(approx);
        let mut sim_exact = PackedSimulator::new(exact);
        let mut partial = ErrorSweepChunk {
            mismatches: 0,
            max_abs: 0,
            max_ring: 0,
            witness: 0,
        };
        let mut base = start;
        while base < end {
            let lanes = usize::try_from(end - base).map_or(LANES, |r| r.min(LANES));
            let words = exhaustive_input_words(n, base);
            let out_approx = sim_approx
                .evaluate_packed(&words, lanes)
                .expect("interface checked");
            let out_exact = sim_exact
                .evaluate_packed(&words, lanes)
                .expect("interface checked");
            let mut diff = 0u64;
            for (a, e) in out_approx.iter().zip(&out_exact) {
                diff |= a ^ e;
            }
            partial.mismatches += u64::from(diff.count_ones());
            // Gather word values only for mismatching lanes; matching
            // lanes contribute zero error by definition.
            let mut remaining = diff;
            while remaining != 0 {
                let lane = remaining.trailing_zeros();
                remaining &= remaining - 1;
                let mut approx_word = 0u64;
                let mut exact_word = 0u64;
                for (o, (aw, ew)) in out_approx.iter().zip(&out_exact).enumerate() {
                    approx_word |= ((aw >> lane) & 1) << o;
                    exact_word |= ((ew >> lane) & 1) << o;
                }
                let abs = approx_word.abs_diff(exact_word);
                if abs > partial.max_abs {
                    partial.max_abs = abs;
                    partial.witness = base + u64::from(lane);
                }
                let wrapped = approx_word.wrapping_sub(exact_word) & ring_mask;
                partial.max_ring = partial.max_ring.max(wrapped.min(modulus - wrapped));
            }
            base += lanes as u64;
        }
        partial
    });

    // In-order fold with a strict `>` update: the witness is the lowest
    // pattern attaining the global maximum, independent of thread count.
    let mut mismatches = 0u64;
    let mut max_abs = 0u64;
    let mut max_ring = 0u64;
    let mut witness = 0u64;
    for chunk in chunks {
        mismatches += chunk.mismatches;
        if chunk.max_abs > max_abs {
            max_abs = chunk.max_abs;
            witness = chunk.witness;
        }
        max_ring = max_ring.max(chunk.max_ring);
    }
    let worst_case_inputs: Vec<bool> = (0..n).map(|i| (witness >> i) & 1 == 1).collect();
    Ok(ErrorBound {
        error_rate: mismatches as f64 / total as f64,
        max_abs_error: max_abs,
        max_ring_error: max_ring,
        worst_case_inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::optimize::optimize;

    #[test]
    fn identical_netlists_are_proven_equivalent() {
        let (a, _) = builders::ripple_carry_adder(4);
        let (b, _) = builders::ripple_carry_adder(4);
        assert_eq!(check(&a, &b, 16, 100), Equivalence::Proven);
    }

    #[test]
    fn optimizer_output_is_equivalent() {
        let (nl, _) = builders::ripple_carry_adder(6);
        let optimized = optimize(&nl).netlist;
        assert!(check(&nl, &optimized, 16, 100).holds());
    }

    #[test]
    fn differing_circuits_yield_a_counterexample() {
        let mut left = Netlist::new();
        let a = left.input("a");
        let b = left.input("b");
        let y = left.and2(a, b);
        left.mark_output(y, "y");

        let mut right = Netlist::new();
        let a = right.input("a");
        let b = right.input("b");
        let y = right.or2(a, b);
        right.mark_output(y, "y");

        match check(&left, &right, 16, 100) {
            Equivalence::Counterexample {
                inputs,
                left,
                right,
            } => {
                // AND and OR differ exactly when inputs differ.
                assert_ne!(inputs[0], inputs[1]);
                assert_ne!(left, right);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_is_reported() {
        let (a, _) = builders::ripple_carry_adder(4);
        let (b, _) = builders::ripple_carry_adder(5);
        assert_eq!(check(&a, &b, 16, 100), Equivalence::InterfaceMismatch);
        assert!(!check(&a, &b, 16, 100).holds());
        assert_eq!(prove(&a, &b), Equivalence::InterfaceMismatch);
    }

    #[test]
    fn wide_circuits_fall_back_to_sampling() {
        let (a, _) = builders::ripple_carry_adder(32); // 65 inputs
        let (b, _) = builders::ripple_carry_adder(32);
        assert_eq!(check(&a, &b, 16, 50), Equivalence::Sampled { vectors: 50 });
    }

    #[test]
    fn oversized_exhaustive_limit_is_clamped_not_fatal() {
        // Previously panicked; now clamps to EXHAUSTIVE_CEILING and
        // samples, since 65 inputs > 24.
        let (a, _) = builders::ripple_carry_adder(32);
        let (b, _) = builders::ripple_carry_adder(32);
        assert_eq!(check(&a, &b, 999, 10), Equivalence::Sampled { vectors: 10 });
        // Small circuits under an oversized limit still get the full sweep.
        let (c, _) = builders::ripple_carry_adder(2);
        let (d, _) = builders::ripple_carry_adder(2);
        assert_eq!(check(&c, &d, u32::MAX, 10), Equivalence::Proven);
    }

    #[test]
    fn sampling_finds_gross_differences() {
        let (exact, _) = builders::ripple_carry_adder(32);
        // A circuit that drops the carry chain entirely: same interface,
        // wildly different function.
        let mut broken = Netlist::new();
        let (a, b, _cin) = builders::declare_operands(&mut broken, 32);
        for i in 0..32 {
            let s = broken.xor2(a[i], b[i]);
            broken.mark_output(s, format!("sum{i}"));
        }
        let zero = broken.constant(false);
        broken.mark_output(zero, "cout");
        assert!(!check(&exact, &broken, 16, 200).holds());
    }

    #[test]
    fn prove_upgrades_wide_adders_from_sampled_to_proven() {
        for width in [16usize, 32, 64] {
            let (a, _) = builders::ripple_carry_adder(width);
            let (b, _) = builders::ripple_carry_adder(width);
            assert_eq!(prove(&a, &b), Equivalence::Proven, "width {width}");
        }
    }

    #[test]
    fn prove_finds_counterexamples_on_wide_circuits() {
        let (exact, ports) = builders::ripple_carry_adder(32);
        let mut broken = Netlist::new();
        let (a, b, _cin) = builders::declare_operands(&mut broken, 32);
        for i in 0..32 {
            let s = broken.xor2(a[i], b[i]);
            broken.mark_output(s, format!("sum{i}"));
        }
        let zero = broken.constant(false);
        broken.mark_output(zero, "cout");
        match prove(&exact, &broken) {
            Equivalence::Counterexample {
                inputs,
                left,
                right,
            } => {
                assert_eq!(inputs.len(), 65);
                assert_ne!(left, right);
                // The counterexample must actually reproduce in simulation.
                let got = Simulator::new(&exact).evaluate(&inputs).unwrap();
                assert_eq!(got, left);
                let _ = ports;
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn prove_with_limit_reports_budget_overruns() {
        let (a, _) = builders::ripple_carry_adder(24);
        let (b, _) = builders::ripple_carry_adder(24);
        let err = prove_with_limit(&a, &b, 64).unwrap_err();
        assert_eq!(err.limit, 64);
        // prove() still answers by falling back to sampling-based check.
        assert!(prove(&a, &b).holds());
    }

    #[test]
    fn prove_agrees_with_exhaustive_check_on_mux() {
        let m1 = builders::word_mux(3);
        let m2 = builders::word_mux(3);
        assert_eq!(prove(&m1, &m2), check(&m1, &m2, 24, 10));
    }

    #[test]
    fn error_bound_is_zero_for_equivalent_circuits() {
        let (a, _) = builders::modular_adder(16);
        let (b, _) = builders::modular_adder(16);
        let bound = error_bound(&a, &b).unwrap();
        assert!(bound.is_exact());
        assert_eq!(bound.max_abs_error, 0);
        assert_eq!(bound.max_ring_error, 0);
        assert_eq!(bound.error_rate, 0.0);
    }

    #[test]
    fn error_bound_matches_brute_force_on_carry_free_adder() {
        // Approx: bitwise XOR (drops all carries). Exact: modular add.
        let width = 3usize;
        let (exact, ports) = builders::modular_adder(width);
        let mut approx = Netlist::new();
        let (a, b) = builders::declare_ab(&mut approx, width);
        for i in 0..width {
            let s = approx.xor2(a[i], b[i]);
            approx.mark_output(s, format!("sum{i}"));
        }

        let bound = error_bound(&approx, &exact).unwrap();

        // Brute-force reference sweep.
        let mask = (1u64 << width) - 1;
        let mut mismatches = 0u64;
        let mut worst = 0u64;
        let mut worst_ring = 0u64;
        let modulus = mask + 1;
        for x in 0..=mask {
            for y in 0..=mask {
                let approx_word = x ^ y;
                let exact_word = (x + y) & mask;
                if approx_word != exact_word {
                    mismatches += 1;
                }
                worst = worst.max(approx_word.abs_diff(exact_word));
                let d = approx_word.wrapping_sub(exact_word) & mask;
                worst_ring = worst_ring.max(d.min(modulus - d));
            }
        }
        let total = modulus * modulus;
        assert!((bound.error_rate - mismatches as f64 / total as f64).abs() < 1e-12);
        assert_eq!(bound.max_abs_error, worst);
        assert_eq!(bound.max_ring_error, worst_ring);

        // The worst-case witness must reproduce in simulation.
        let out = Simulator::new(&approx)
            .evaluate(&bound.worst_case_inputs)
            .unwrap();
        let (approx_word, _) = ports.unpack_result(&out);
        let ref_out = Simulator::new(&exact)
            .evaluate(&bound.worst_case_inputs)
            .unwrap();
        let (exact_word, _) = ports.unpack_result(&ref_out);
        assert_eq!(approx_word.abs_diff(exact_word), worst);
    }

    #[test]
    fn error_bound_rejects_mismatched_interfaces() {
        let (a, _) = builders::modular_adder(4);
        let (b, _) = builders::modular_adder(5);
        assert_eq!(error_bound(&a, &b), Err(ErrorBoundError::InterfaceMismatch));
    }

    /// Bitwise-XOR "adder" (drops every carry) with the same interface
    /// as `modular_adder(width)` — a maximally error-prone approximation.
    fn carry_free_adder(width: usize) -> Netlist {
        let mut approx = Netlist::new();
        let (a, b) = builders::declare_ab(&mut approx, width);
        for i in 0..width {
            let s = approx.xor2(a[i], b[i]);
            approx.mark_output(s, format!("sum{i}"));
        }
        approx
    }

    #[test]
    fn exhaustive_error_bound_agrees_with_symbolic_engine() {
        for width in [3usize, 5, 8] {
            let (exact, _) = builders::modular_adder(width);
            let approx = carry_free_adder(width);
            let symbolic = error_bound(&approx, &exact).unwrap();
            let swept = exhaustive_error_bound(&approx, &exact).unwrap();
            assert!(
                (swept.error_rate - symbolic.error_rate).abs() < 1e-12,
                "width {width}"
            );
            assert_eq!(swept.max_abs_error, symbolic.max_abs_error, "width {width}");
            assert_eq!(
                swept.max_ring_error, symbolic.max_ring_error,
                "width {width}"
            );
            // Both witnesses must attain the maximum in simulation.
            let check_witness = |inputs: &[bool]| {
                let a_out = Simulator::new(&approx).evaluate(inputs).unwrap();
                let e_out = Simulator::new(&exact).evaluate(inputs).unwrap();
                let to_word = |bits: &[bool]| {
                    bits.iter()
                        .enumerate()
                        .fold(0u64, |w, (i, &b)| w | (u64::from(b) << i))
                };
                to_word(&a_out).abs_diff(to_word(&e_out))
            };
            assert_eq!(check_witness(&swept.worst_case_inputs), swept.max_abs_error);
        }
    }

    #[test]
    fn exhaustive_error_bound_is_thread_count_invariant() {
        let (exact, _) = builders::modular_adder(6);
        let approx = carry_free_adder(6);
        let serial = exhaustive_error_bound_with(&approx, &exact, &Executor::with_threads(1));
        for threads in [2usize, 5, 16] {
            let parallel =
                exhaustive_error_bound_with(&approx, &exact, &Executor::with_threads(threads));
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn exhaustive_error_bound_rejects_wide_inputs() {
        let (a, _) = builders::modular_adder(17); // 34 inputs
        let (b, _) = builders::modular_adder(17);
        assert_eq!(
            exhaustive_error_bound(&a, &b),
            Err(ErrorBoundError::InputTooWide { inputs: 34 })
        );
    }

    #[test]
    fn packed_check_reports_lowest_counterexample_for_any_thread_count() {
        // AND vs OR differ on patterns 1 and 2; the lowest is 1
        // (a=1, b=0), which the serial loop reported first.
        let mut left = Netlist::new();
        let a = left.input("a");
        let b = left.input("b");
        let y = left.and2(a, b);
        left.mark_output(y, "y");
        let mut right = Netlist::new();
        let a = right.input("a");
        let b = right.input("b");
        let y = right.or2(a, b);
        right.mark_output(y, "y");

        for threads in [1usize, 2, 8] {
            let verdict = check_with(&left, &right, 16, 100, &Executor::with_threads(threads));
            match verdict {
                Equivalence::Counterexample { ref inputs, .. } => {
                    assert_eq!(inputs, &vec![true, false], "threads={threads}");
                }
                ref other => panic!("expected counterexample, got {other:?}"),
            }
        }
    }
}
